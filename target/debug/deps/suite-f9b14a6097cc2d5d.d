/root/repo/target/debug/deps/suite-f9b14a6097cc2d5d.d: crates/suite/src/lib.rs crates/suite/src/inputs.rs crates/suite/src/../programs/alvinn.c crates/suite/src/../programs/compress.c crates/suite/src/../programs/ear.c crates/suite/src/../programs/eqntott.c crates/suite/src/../programs/espresso.c crates/suite/src/../programs/cc.c crates/suite/src/../programs/sc.c crates/suite/src/../programs/xlisp.c crates/suite/src/../programs/awk.c crates/suite/src/../programs/bison.c crates/suite/src/../programs/cholesky.c crates/suite/src/../programs/gs.c crates/suite/src/../programs/mpeg.c crates/suite/src/../programs/water.c Cargo.toml

/root/repo/target/debug/deps/libsuite-f9b14a6097cc2d5d.rmeta: crates/suite/src/lib.rs crates/suite/src/inputs.rs crates/suite/src/../programs/alvinn.c crates/suite/src/../programs/compress.c crates/suite/src/../programs/ear.c crates/suite/src/../programs/eqntott.c crates/suite/src/../programs/espresso.c crates/suite/src/../programs/cc.c crates/suite/src/../programs/sc.c crates/suite/src/../programs/xlisp.c crates/suite/src/../programs/awk.c crates/suite/src/../programs/bison.c crates/suite/src/../programs/cholesky.c crates/suite/src/../programs/gs.c crates/suite/src/../programs/mpeg.c crates/suite/src/../programs/water.c Cargo.toml

crates/suite/src/lib.rs:
crates/suite/src/inputs.rs:
crates/suite/src/../programs/alvinn.c:
crates/suite/src/../programs/compress.c:
crates/suite/src/../programs/ear.c:
crates/suite/src/../programs/eqntott.c:
crates/suite/src/../programs/espresso.c:
crates/suite/src/../programs/cc.c:
crates/suite/src/../programs/sc.c:
crates/suite/src/../programs/xlisp.c:
crates/suite/src/../programs/awk.c:
crates/suite/src/../programs/bison.c:
crates/suite/src/../programs/cholesky.c:
crates/suite/src/../programs/gs.c:
crates/suite/src/../programs/mpeg.c:
crates/suite/src/../programs/water.c:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
