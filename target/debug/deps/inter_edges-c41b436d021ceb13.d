/root/repo/target/debug/deps/inter_edges-c41b436d021ceb13.d: crates/core/tests/inter_edges.rs Cargo.toml

/root/repo/target/debug/deps/libinter_edges-c41b436d021ceb13.rmeta: crates/core/tests/inter_edges.rs Cargo.toml

crates/core/tests/inter_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
