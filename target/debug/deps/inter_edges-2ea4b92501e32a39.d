/root/repo/target/debug/deps/inter_edges-2ea4b92501e32a39.d: crates/core/tests/inter_edges.rs

/root/repo/target/debug/deps/inter_edges-2ea4b92501e32a39: crates/core/tests/inter_edges.rs

crates/core/tests/inter_edges.rs:
