/root/repo/target/debug/deps/runtime_edges-f936acd049ca05ab.d: crates/profiler/tests/runtime_edges.rs

/root/repo/target/debug/deps/runtime_edges-f936acd049ca05ab: crates/profiler/tests/runtime_edges.rs

crates/profiler/tests/runtime_edges.rs:
