/root/repo/target/debug/deps/properties-9c20bc410cf922f1.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9c20bc410cf922f1.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
