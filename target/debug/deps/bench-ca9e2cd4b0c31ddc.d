/root/repo/target/debug/deps/bench-ca9e2cd4b0c31ddc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-ca9e2cd4b0c31ddc: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
