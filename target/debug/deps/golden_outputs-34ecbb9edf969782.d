/root/repo/target/debug/deps/golden_outputs-34ecbb9edf969782.d: tests/golden_outputs.rs

/root/repo/target/debug/deps/golden_outputs-34ecbb9edf969782: tests/golden_outputs.rs

tests/golden_outputs.rs:
