/root/repo/target/debug/deps/cli-20f155cb30370631.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-20f155cb30370631: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_sfe=/root/repo/target/debug/sfe
