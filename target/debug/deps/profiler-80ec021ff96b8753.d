/root/repo/target/debug/deps/profiler-80ec021ff96b8753.d: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs

/root/repo/target/debug/deps/profiler-80ec021ff96b8753: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs

crates/profiler/src/lib.rs:
crates/profiler/src/cost.rs:
crates/profiler/src/interp.rs:
crates/profiler/src/profile.rs:
