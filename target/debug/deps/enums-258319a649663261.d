/root/repo/target/debug/deps/enums-258319a649663261.d: crates/minic/tests/enums.rs

/root/repo/target/debug/deps/enums-258319a649663261: crates/minic/tests/enums.rs

crates/minic/tests/enums.rs:
