/root/repo/target/debug/deps/estimators-e5db080f7db6d0bf.d: crates/core/src/lib.rs crates/core/src/branch.rs crates/core/src/callsite.rs crates/core/src/eval.rs crates/core/src/global.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/metric.rs crates/core/src/missrate.rs crates/core/src/tripcount.rs Cargo.toml

/root/repo/target/debug/deps/libestimators-e5db080f7db6d0bf.rmeta: crates/core/src/lib.rs crates/core/src/branch.rs crates/core/src/callsite.rs crates/core/src/eval.rs crates/core/src/global.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/metric.rs crates/core/src/missrate.rs crates/core/src/tripcount.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/branch.rs:
crates/core/src/callsite.rs:
crates/core/src/eval.rs:
crates/core/src/global.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/metric.rs:
crates/core/src/missrate.rs:
crates/core/src/tripcount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
