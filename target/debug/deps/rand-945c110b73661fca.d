/root/repo/target/debug/deps/rand-945c110b73661fca.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-945c110b73661fca.rlib: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-945c110b73661fca.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
