/root/repo/target/debug/deps/genprograms-1df275da64448451.d: tests/genprograms.rs

/root/repo/target/debug/deps/genprograms-1df275da64448451: tests/genprograms.rs

tests/genprograms.rs:
