/root/repo/target/debug/deps/linsolve-8cfb42c874e1c29d.d: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs

/root/repo/target/debug/deps/liblinsolve-8cfb42c874e1c29d.rlib: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs

/root/repo/target/debug/deps/liblinsolve-8cfb42c874e1c29d.rmeta: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs

crates/linsolve/src/lib.rs:
crates/linsolve/src/matrix.rs:
crates/linsolve/src/solve.rs:
crates/linsolve/src/sparse.rs:
