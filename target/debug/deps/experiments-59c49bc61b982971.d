/root/repo/target/debug/deps/experiments-59c49bc61b982971.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-59c49bc61b982971: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
