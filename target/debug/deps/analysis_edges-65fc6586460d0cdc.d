/root/repo/target/debug/deps/analysis_edges-65fc6586460d0cdc.d: crates/flowgraph/tests/analysis_edges.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_edges-65fc6586460d0cdc.rmeta: crates/flowgraph/tests/analysis_edges.rs Cargo.toml

crates/flowgraph/tests/analysis_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
