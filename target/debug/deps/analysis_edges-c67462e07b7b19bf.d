/root/repo/target/debug/deps/analysis_edges-c67462e07b7b19bf.d: crates/flowgraph/tests/analysis_edges.rs

/root/repo/target/debug/deps/analysis_edges-c67462e07b7b19bf: crates/flowgraph/tests/analysis_edges.rs

crates/flowgraph/tests/analysis_edges.rs:
