/root/repo/target/debug/deps/linsolve-168dbe10983477f5.d: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs

/root/repo/target/debug/deps/linsolve-168dbe10983477f5: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs

crates/linsolve/src/lib.rs:
crates/linsolve/src/matrix.rs:
crates/linsolve/src/solve.rs:
crates/linsolve/src/sparse.rs:
