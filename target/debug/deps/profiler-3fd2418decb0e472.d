/root/repo/target/debug/deps/profiler-3fd2418decb0e472.d: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofiler-3fd2418decb0e472.rmeta: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs Cargo.toml

crates/profiler/src/lib.rs:
crates/profiler/src/cost.rs:
crates/profiler/src/interp.rs:
crates/profiler/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
