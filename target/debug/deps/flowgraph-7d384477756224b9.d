/root/repo/target/debug/deps/flowgraph-7d384477756224b9.d: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs

/root/repo/target/debug/deps/flowgraph-7d384477756224b9: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs

crates/flowgraph/src/lib.rs:
crates/flowgraph/src/analysis.rs:
crates/flowgraph/src/callgraph.rs:
crates/flowgraph/src/cfg.rs:
crates/flowgraph/src/dot.rs:
crates/flowgraph/src/lower.rs:
crates/flowgraph/src/simplify.rs:
