/root/repo/target/debug/deps/static_estimators-1b3598ef7d3f495e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstatic_estimators-1b3598ef7d3f495e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
