/root/repo/target/debug/deps/cli-2df9b65d37db7e88.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-2df9b65d37db7e88.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_sfe=placeholder:sfe
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
