/root/repo/target/debug/deps/frontend_edges-9eebb328cedc9230.d: crates/minic/tests/frontend_edges.rs

/root/repo/target/debug/deps/frontend_edges-9eebb328cedc9230: crates/minic/tests/frontend_edges.rs

crates/minic/tests/frontend_edges.rs:
