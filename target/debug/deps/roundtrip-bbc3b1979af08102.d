/root/repo/target/debug/deps/roundtrip-bbc3b1979af08102.d: tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-bbc3b1979af08102: tests/roundtrip.rs

tests/roundtrip.rs:
