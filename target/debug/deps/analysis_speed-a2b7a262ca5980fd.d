/root/repo/target/debug/deps/analysis_speed-a2b7a262ca5980fd.d: crates/bench/benches/analysis_speed.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_speed-a2b7a262ca5980fd.rmeta: crates/bench/benches/analysis_speed.rs Cargo.toml

crates/bench/benches/analysis_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
