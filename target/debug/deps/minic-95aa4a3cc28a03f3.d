/root/repo/target/debug/deps/minic-95aa4a3cc28a03f3.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs

/root/repo/target/debug/deps/libminic-95aa4a3cc28a03f3.rlib: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs

/root/repo/target/debug/deps/libminic-95aa4a3cc28a03f3.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/builtins.rs:
crates/minic/src/error.rs:
crates/minic/src/fold.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/sema.rs:
crates/minic/src/token.rs:
crates/minic/src/types.rs:
