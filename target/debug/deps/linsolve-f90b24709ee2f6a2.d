/root/repo/target/debug/deps/linsolve-f90b24709ee2f6a2.d: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs Cargo.toml

/root/repo/target/debug/deps/liblinsolve-f90b24709ee2f6a2.rmeta: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs Cargo.toml

crates/linsolve/src/lib.rs:
crates/linsolve/src/matrix.rs:
crates/linsolve/src/solve.rs:
crates/linsolve/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
