/root/repo/target/debug/deps/enums-4fe4d40fb8bb60a8.d: crates/minic/tests/enums.rs Cargo.toml

/root/repo/target/debug/deps/libenums-4fe4d40fb8bb60a8.rmeta: crates/minic/tests/enums.rs Cargo.toml

crates/minic/tests/enums.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
