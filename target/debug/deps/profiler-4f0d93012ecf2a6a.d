/root/repo/target/debug/deps/profiler-4f0d93012ecf2a6a.d: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs

/root/repo/target/debug/deps/libprofiler-4f0d93012ecf2a6a.rlib: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs

/root/repo/target/debug/deps/libprofiler-4f0d93012ecf2a6a.rmeta: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs

crates/profiler/src/lib.rs:
crates/profiler/src/cost.rs:
crates/profiler/src/interp.rs:
crates/profiler/src/profile.rs:
