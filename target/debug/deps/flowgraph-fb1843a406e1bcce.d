/root/repo/target/debug/deps/flowgraph-fb1843a406e1bcce.d: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs Cargo.toml

/root/repo/target/debug/deps/libflowgraph-fb1843a406e1bcce.rmeta: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs Cargo.toml

crates/flowgraph/src/lib.rs:
crates/flowgraph/src/analysis.rs:
crates/flowgraph/src/callgraph.rs:
crates/flowgraph/src/cfg.rs:
crates/flowgraph/src/dot.rs:
crates/flowgraph/src/lower.rs:
crates/flowgraph/src/simplify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
