/root/repo/target/debug/deps/properties-a30be2f56b9d809f.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a30be2f56b9d809f: tests/properties.rs

tests/properties.rs:
