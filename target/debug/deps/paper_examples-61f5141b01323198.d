/root/repo/target/debug/deps/paper_examples-61f5141b01323198.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-61f5141b01323198: tests/paper_examples.rs

tests/paper_examples.rs:
