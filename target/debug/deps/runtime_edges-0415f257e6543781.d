/root/repo/target/debug/deps/runtime_edges-0415f257e6543781.d: crates/profiler/tests/runtime_edges.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_edges-0415f257e6543781.rmeta: crates/profiler/tests/runtime_edges.rs Cargo.toml

crates/profiler/tests/runtime_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
