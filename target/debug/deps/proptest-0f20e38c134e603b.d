/root/repo/target/debug/deps/proptest-0f20e38c134e603b.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-0f20e38c134e603b: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
