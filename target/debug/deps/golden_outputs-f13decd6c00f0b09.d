/root/repo/target/debug/deps/golden_outputs-f13decd6c00f0b09.d: tests/golden_outputs.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_outputs-f13decd6c00f0b09.rmeta: tests/golden_outputs.rs Cargo.toml

tests/golden_outputs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
