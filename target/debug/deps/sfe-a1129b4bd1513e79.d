/root/repo/target/debug/deps/sfe-a1129b4bd1513e79.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsfe-a1129b4bd1513e79.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
