/root/repo/target/debug/deps/estimator_accuracy-625b309bf1ee2642.d: crates/bench/benches/estimator_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libestimator_accuracy-625b309bf1ee2642.rmeta: crates/bench/benches/estimator_accuracy.rs Cargo.toml

crates/bench/benches/estimator_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
