/root/repo/target/debug/deps/frontend_edges-ad08e0a8021c7971.d: crates/minic/tests/frontend_edges.rs Cargo.toml

/root/repo/target/debug/deps/libfrontend_edges-ad08e0a8021c7971.rmeta: crates/minic/tests/frontend_edges.rs Cargo.toml

crates/minic/tests/frontend_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
