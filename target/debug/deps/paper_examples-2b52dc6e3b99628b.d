/root/repo/target/debug/deps/paper_examples-2b52dc6e3b99628b.d: tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-2b52dc6e3b99628b.rmeta: tests/paper_examples.rs Cargo.toml

tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
