/root/repo/target/debug/deps/proptest-d338bc5a91ebd291.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d338bc5a91ebd291.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d338bc5a91ebd291.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
