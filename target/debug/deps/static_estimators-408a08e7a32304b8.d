/root/repo/target/debug/deps/static_estimators-408a08e7a32304b8.d: src/lib.rs

/root/repo/target/debug/deps/libstatic_estimators-408a08e7a32304b8.rlib: src/lib.rs

/root/repo/target/debug/deps/libstatic_estimators-408a08e7a32304b8.rmeta: src/lib.rs

src/lib.rs:
