/root/repo/target/debug/deps/sfe-b4b3de81d586c7dc.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/sfe-b4b3de81d586c7dc: crates/cli/src/main.rs

crates/cli/src/main.rs:
