/root/repo/target/debug/deps/profiler-f6c79555949b1ebc.d: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofiler-f6c79555949b1ebc.rmeta: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs Cargo.toml

crates/profiler/src/lib.rs:
crates/profiler/src/cost.rs:
crates/profiler/src/interp.rs:
crates/profiler/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
