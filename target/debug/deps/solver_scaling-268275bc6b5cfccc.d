/root/repo/target/debug/deps/solver_scaling-268275bc6b5cfccc.d: crates/bench/benches/solver_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_scaling-268275bc6b5cfccc.rmeta: crates/bench/benches/solver_scaling.rs Cargo.toml

crates/bench/benches/solver_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
