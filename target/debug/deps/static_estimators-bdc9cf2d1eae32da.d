/root/repo/target/debug/deps/static_estimators-bdc9cf2d1eae32da.d: src/lib.rs

/root/repo/target/debug/deps/static_estimators-bdc9cf2d1eae32da: src/lib.rs

src/lib.rs:
