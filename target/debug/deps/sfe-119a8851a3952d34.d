/root/repo/target/debug/deps/sfe-119a8851a3952d34.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsfe-119a8851a3952d34.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
