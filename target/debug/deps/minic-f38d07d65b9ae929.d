/root/repo/target/debug/deps/minic-f38d07d65b9ae929.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libminic-f38d07d65b9ae929.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs Cargo.toml

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/builtins.rs:
crates/minic/src/error.rs:
crates/minic/src/fold.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/sema.rs:
crates/minic/src/token.rs:
crates/minic/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
