/root/repo/target/debug/deps/flowgraph-4e3a0e47505249e8.d: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs

/root/repo/target/debug/deps/libflowgraph-4e3a0e47505249e8.rlib: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs

/root/repo/target/debug/deps/libflowgraph-4e3a0e47505249e8.rmeta: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs

crates/flowgraph/src/lib.rs:
crates/flowgraph/src/analysis.rs:
crates/flowgraph/src/callgraph.rs:
crates/flowgraph/src/cfg.rs:
crates/flowgraph/src/dot.rs:
crates/flowgraph/src/lower.rs:
crates/flowgraph/src/simplify.rs:
