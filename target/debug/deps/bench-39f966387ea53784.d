/root/repo/target/debug/deps/bench-39f966387ea53784.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-39f966387ea53784.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-39f966387ea53784.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
