/root/repo/target/debug/deps/minic-6e0e10d0a91f5a24.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs

/root/repo/target/debug/deps/minic-6e0e10d0a91f5a24: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/builtins.rs:
crates/minic/src/error.rs:
crates/minic/src/fold.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/sema.rs:
crates/minic/src/token.rs:
crates/minic/src/types.rs:
