/root/repo/target/debug/deps/genprograms-5f1bbd84f367689f.d: tests/genprograms.rs Cargo.toml

/root/repo/target/debug/deps/libgenprograms-5f1bbd84f367689f.rmeta: tests/genprograms.rs Cargo.toml

tests/genprograms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
