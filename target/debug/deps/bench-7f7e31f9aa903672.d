/root/repo/target/debug/deps/bench-7f7e31f9aa903672.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-7f7e31f9aa903672.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
