/root/repo/target/debug/deps/suite-bcaa437d3ee81bb2.d: crates/suite/src/lib.rs crates/suite/src/inputs.rs crates/suite/src/../programs/alvinn.c crates/suite/src/../programs/compress.c crates/suite/src/../programs/ear.c crates/suite/src/../programs/eqntott.c crates/suite/src/../programs/espresso.c crates/suite/src/../programs/cc.c crates/suite/src/../programs/sc.c crates/suite/src/../programs/xlisp.c crates/suite/src/../programs/awk.c crates/suite/src/../programs/bison.c crates/suite/src/../programs/cholesky.c crates/suite/src/../programs/gs.c crates/suite/src/../programs/mpeg.c crates/suite/src/../programs/water.c

/root/repo/target/debug/deps/libsuite-bcaa437d3ee81bb2.rlib: crates/suite/src/lib.rs crates/suite/src/inputs.rs crates/suite/src/../programs/alvinn.c crates/suite/src/../programs/compress.c crates/suite/src/../programs/ear.c crates/suite/src/../programs/eqntott.c crates/suite/src/../programs/espresso.c crates/suite/src/../programs/cc.c crates/suite/src/../programs/sc.c crates/suite/src/../programs/xlisp.c crates/suite/src/../programs/awk.c crates/suite/src/../programs/bison.c crates/suite/src/../programs/cholesky.c crates/suite/src/../programs/gs.c crates/suite/src/../programs/mpeg.c crates/suite/src/../programs/water.c

/root/repo/target/debug/deps/libsuite-bcaa437d3ee81bb2.rmeta: crates/suite/src/lib.rs crates/suite/src/inputs.rs crates/suite/src/../programs/alvinn.c crates/suite/src/../programs/compress.c crates/suite/src/../programs/ear.c crates/suite/src/../programs/eqntott.c crates/suite/src/../programs/espresso.c crates/suite/src/../programs/cc.c crates/suite/src/../programs/sc.c crates/suite/src/../programs/xlisp.c crates/suite/src/../programs/awk.c crates/suite/src/../programs/bison.c crates/suite/src/../programs/cholesky.c crates/suite/src/../programs/gs.c crates/suite/src/../programs/mpeg.c crates/suite/src/../programs/water.c

crates/suite/src/lib.rs:
crates/suite/src/inputs.rs:
crates/suite/src/../programs/alvinn.c:
crates/suite/src/../programs/compress.c:
crates/suite/src/../programs/ear.c:
crates/suite/src/../programs/eqntott.c:
crates/suite/src/../programs/espresso.c:
crates/suite/src/../programs/cc.c:
crates/suite/src/../programs/sc.c:
crates/suite/src/../programs/xlisp.c:
crates/suite/src/../programs/awk.c:
crates/suite/src/../programs/bison.c:
crates/suite/src/../programs/cholesky.c:
crates/suite/src/../programs/gs.c:
crates/suite/src/../programs/mpeg.c:
crates/suite/src/../programs/water.c:
