/root/repo/target/debug/deps/pipeline-56cf3905ca882641.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-56cf3905ca882641: tests/pipeline.rs

tests/pipeline.rs:
