/root/repo/target/debug/deps/sfe-caaab10d87ab7e62.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/sfe-caaab10d87ab7e62: crates/cli/src/main.rs

crates/cli/src/main.rs:
