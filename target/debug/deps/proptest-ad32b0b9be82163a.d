/root/repo/target/debug/deps/proptest-ad32b0b9be82163a.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ad32b0b9be82163a.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
