/root/repo/target/debug/deps/rand-741a68ea6ed92c1a.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-741a68ea6ed92c1a.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
