/root/repo/target/debug/deps/roundtrip-d83a1b62d9d94dc0.d: tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-d83a1b62d9d94dc0.rmeta: tests/roundtrip.rs Cargo.toml

tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
