/root/repo/target/debug/deps/linsolve-bd6b5b0675a33cba.d: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs Cargo.toml

/root/repo/target/debug/deps/liblinsolve-bd6b5b0675a33cba.rmeta: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs Cargo.toml

crates/linsolve/src/lib.rs:
crates/linsolve/src/matrix.rs:
crates/linsolve/src/solve.rs:
crates/linsolve/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
