/root/repo/target/debug/examples/dbg-79706d8f179e6d41.d: crates/bench/examples/dbg.rs

/root/repo/target/debug/examples/dbg-79706d8f179e6d41: crates/bench/examples/dbg.rs

crates/bench/examples/dbg.rs:
