/root/repo/target/debug/examples/dbg-8df0c030ad3c37d1.d: crates/bench/examples/dbg.rs Cargo.toml

/root/repo/target/debug/examples/libdbg-8df0c030ad3c37d1.rmeta: crates/bench/examples/dbg.rs Cargo.toml

crates/bench/examples/dbg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
