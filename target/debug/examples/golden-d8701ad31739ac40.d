/root/repo/target/debug/examples/golden-d8701ad31739ac40.d: crates/bench/examples/golden.rs

/root/repo/target/debug/examples/golden-d8701ad31739ac40: crates/bench/examples/golden.rs

crates/bench/examples/golden.rs:
