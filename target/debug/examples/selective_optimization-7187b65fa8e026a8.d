/root/repo/target/debug/examples/selective_optimization-7187b65fa8e026a8.d: examples/selective_optimization.rs Cargo.toml

/root/repo/target/debug/examples/libselective_optimization-7187b65fa8e026a8.rmeta: examples/selective_optimization.rs Cargo.toml

examples/selective_optimization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
