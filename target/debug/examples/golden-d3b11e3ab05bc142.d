/root/repo/target/debug/examples/golden-d3b11e3ab05bc142.d: crates/bench/examples/golden.rs Cargo.toml

/root/repo/target/debug/examples/libgolden-d3b11e3ab05bc142.rmeta: crates/bench/examples/golden.rs Cargo.toml

crates/bench/examples/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
