/root/repo/target/debug/examples/quickstart-9263b25cdefab597.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9263b25cdefab597: examples/quickstart.rs

examples/quickstart.rs:
