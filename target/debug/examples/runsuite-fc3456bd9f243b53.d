/root/repo/target/debug/examples/runsuite-fc3456bd9f243b53.d: crates/bench/examples/runsuite.rs Cargo.toml

/root/repo/target/debug/examples/librunsuite-fc3456bd9f243b53.rmeta: crates/bench/examples/runsuite.rs Cargo.toml

crates/bench/examples/runsuite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
