/root/repo/target/debug/examples/selective_optimization-4d5ddf4e2cb5a9ce.d: examples/selective_optimization.rs

/root/repo/target/debug/examples/selective_optimization-4d5ddf4e2cb5a9ce: examples/selective_optimization.rs

examples/selective_optimization.rs:
