/root/repo/target/debug/examples/branch_report-eb22b2a3747850fe.d: examples/branch_report.rs Cargo.toml

/root/repo/target/debug/examples/libbranch_report-eb22b2a3747850fe.rmeta: examples/branch_report.rs Cargo.toml

examples/branch_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
