/root/repo/target/debug/examples/inliner-8248d695327d53f3.d: examples/inliner.rs Cargo.toml

/root/repo/target/debug/examples/libinliner-8248d695327d53f3.rmeta: examples/inliner.rs Cargo.toml

examples/inliner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
