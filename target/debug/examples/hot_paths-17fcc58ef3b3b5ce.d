/root/repo/target/debug/examples/hot_paths-17fcc58ef3b3b5ce.d: examples/hot_paths.rs

/root/repo/target/debug/examples/hot_paths-17fcc58ef3b3b5ce: examples/hot_paths.rs

examples/hot_paths.rs:
