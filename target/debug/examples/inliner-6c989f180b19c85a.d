/root/repo/target/debug/examples/inliner-6c989f180b19c85a.d: examples/inliner.rs

/root/repo/target/debug/examples/inliner-6c989f180b19c85a: examples/inliner.rs

examples/inliner.rs:
