/root/repo/target/debug/examples/branch_report-90d806d267d80608.d: examples/branch_report.rs

/root/repo/target/debug/examples/branch_report-90d806d267d80608: examples/branch_report.rs

examples/branch_report.rs:
