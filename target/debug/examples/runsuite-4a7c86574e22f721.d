/root/repo/target/debug/examples/runsuite-4a7c86574e22f721.d: crates/bench/examples/runsuite.rs

/root/repo/target/debug/examples/runsuite-4a7c86574e22f721: crates/bench/examples/runsuite.rs

crates/bench/examples/runsuite.rs:
