/root/repo/target/debug/examples/hot_paths-bd0e72ad7af47b5b.d: examples/hot_paths.rs Cargo.toml

/root/repo/target/debug/examples/libhot_paths-bd0e72ad7af47b5b.rmeta: examples/hot_paths.rs Cargo.toml

examples/hot_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
