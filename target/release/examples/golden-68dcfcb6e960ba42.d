/root/repo/target/release/examples/golden-68dcfcb6e960ba42.d: crates/bench/examples/golden.rs

/root/repo/target/release/examples/golden-68dcfcb6e960ba42: crates/bench/examples/golden.rs

crates/bench/examples/golden.rs:
