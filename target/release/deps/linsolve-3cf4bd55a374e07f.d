/root/repo/target/release/deps/linsolve-3cf4bd55a374e07f.d: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs

/root/repo/target/release/deps/liblinsolve-3cf4bd55a374e07f.rlib: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs

/root/repo/target/release/deps/liblinsolve-3cf4bd55a374e07f.rmeta: crates/linsolve/src/lib.rs crates/linsolve/src/matrix.rs crates/linsolve/src/solve.rs crates/linsolve/src/sparse.rs

crates/linsolve/src/lib.rs:
crates/linsolve/src/matrix.rs:
crates/linsolve/src/solve.rs:
crates/linsolve/src/sparse.rs:
