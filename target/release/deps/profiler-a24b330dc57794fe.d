/root/repo/target/release/deps/profiler-a24b330dc57794fe.d: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs

/root/repo/target/release/deps/libprofiler-a24b330dc57794fe.rlib: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs

/root/repo/target/release/deps/libprofiler-a24b330dc57794fe.rmeta: crates/profiler/src/lib.rs crates/profiler/src/cost.rs crates/profiler/src/interp.rs crates/profiler/src/profile.rs

crates/profiler/src/lib.rs:
crates/profiler/src/cost.rs:
crates/profiler/src/interp.rs:
crates/profiler/src/profile.rs:
