/root/repo/target/release/deps/static_estimators-0c6cf1f8cc6dcc41.d: src/lib.rs

/root/repo/target/release/deps/libstatic_estimators-0c6cf1f8cc6dcc41.rlib: src/lib.rs

/root/repo/target/release/deps/libstatic_estimators-0c6cf1f8cc6dcc41.rmeta: src/lib.rs

src/lib.rs:
