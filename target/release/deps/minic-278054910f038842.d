/root/repo/target/release/deps/minic-278054910f038842.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs

/root/repo/target/release/deps/libminic-278054910f038842.rlib: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs

/root/repo/target/release/deps/libminic-278054910f038842.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/builtins.rs crates/minic/src/error.rs crates/minic/src/fold.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/sema.rs crates/minic/src/token.rs crates/minic/src/types.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/builtins.rs:
crates/minic/src/error.rs:
crates/minic/src/fold.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/sema.rs:
crates/minic/src/token.rs:
crates/minic/src/types.rs:
