/root/repo/target/release/deps/rand-a5d47ce456afbd15.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-a5d47ce456afbd15.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-a5d47ce456afbd15.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
