/root/repo/target/release/deps/experiments-c3d3cf0c5c64814f.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-c3d3cf0c5c64814f: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
