/root/repo/target/release/deps/suite-3fe3c4341012d74d.d: crates/suite/src/lib.rs crates/suite/src/inputs.rs crates/suite/src/../programs/alvinn.c crates/suite/src/../programs/compress.c crates/suite/src/../programs/ear.c crates/suite/src/../programs/eqntott.c crates/suite/src/../programs/espresso.c crates/suite/src/../programs/cc.c crates/suite/src/../programs/sc.c crates/suite/src/../programs/xlisp.c crates/suite/src/../programs/awk.c crates/suite/src/../programs/bison.c crates/suite/src/../programs/cholesky.c crates/suite/src/../programs/gs.c crates/suite/src/../programs/mpeg.c crates/suite/src/../programs/water.c

/root/repo/target/release/deps/libsuite-3fe3c4341012d74d.rlib: crates/suite/src/lib.rs crates/suite/src/inputs.rs crates/suite/src/../programs/alvinn.c crates/suite/src/../programs/compress.c crates/suite/src/../programs/ear.c crates/suite/src/../programs/eqntott.c crates/suite/src/../programs/espresso.c crates/suite/src/../programs/cc.c crates/suite/src/../programs/sc.c crates/suite/src/../programs/xlisp.c crates/suite/src/../programs/awk.c crates/suite/src/../programs/bison.c crates/suite/src/../programs/cholesky.c crates/suite/src/../programs/gs.c crates/suite/src/../programs/mpeg.c crates/suite/src/../programs/water.c

/root/repo/target/release/deps/libsuite-3fe3c4341012d74d.rmeta: crates/suite/src/lib.rs crates/suite/src/inputs.rs crates/suite/src/../programs/alvinn.c crates/suite/src/../programs/compress.c crates/suite/src/../programs/ear.c crates/suite/src/../programs/eqntott.c crates/suite/src/../programs/espresso.c crates/suite/src/../programs/cc.c crates/suite/src/../programs/sc.c crates/suite/src/../programs/xlisp.c crates/suite/src/../programs/awk.c crates/suite/src/../programs/bison.c crates/suite/src/../programs/cholesky.c crates/suite/src/../programs/gs.c crates/suite/src/../programs/mpeg.c crates/suite/src/../programs/water.c

crates/suite/src/lib.rs:
crates/suite/src/inputs.rs:
crates/suite/src/../programs/alvinn.c:
crates/suite/src/../programs/compress.c:
crates/suite/src/../programs/ear.c:
crates/suite/src/../programs/eqntott.c:
crates/suite/src/../programs/espresso.c:
crates/suite/src/../programs/cc.c:
crates/suite/src/../programs/sc.c:
crates/suite/src/../programs/xlisp.c:
crates/suite/src/../programs/awk.c:
crates/suite/src/../programs/bison.c:
crates/suite/src/../programs/cholesky.c:
crates/suite/src/../programs/gs.c:
crates/suite/src/../programs/mpeg.c:
crates/suite/src/../programs/water.c:
