/root/repo/target/release/deps/flowgraph-b3775b893b89b964.d: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs

/root/repo/target/release/deps/libflowgraph-b3775b893b89b964.rlib: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs

/root/repo/target/release/deps/libflowgraph-b3775b893b89b964.rmeta: crates/flowgraph/src/lib.rs crates/flowgraph/src/analysis.rs crates/flowgraph/src/callgraph.rs crates/flowgraph/src/cfg.rs crates/flowgraph/src/dot.rs crates/flowgraph/src/lower.rs crates/flowgraph/src/simplify.rs

crates/flowgraph/src/lib.rs:
crates/flowgraph/src/analysis.rs:
crates/flowgraph/src/callgraph.rs:
crates/flowgraph/src/cfg.rs:
crates/flowgraph/src/dot.rs:
crates/flowgraph/src/lower.rs:
crates/flowgraph/src/simplify.rs:
