/root/repo/target/release/deps/estimators-d1e9f8b3a7170189.d: crates/core/src/lib.rs crates/core/src/branch.rs crates/core/src/callsite.rs crates/core/src/eval.rs crates/core/src/global.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/metric.rs crates/core/src/missrate.rs crates/core/src/tripcount.rs

/root/repo/target/release/deps/libestimators-d1e9f8b3a7170189.rlib: crates/core/src/lib.rs crates/core/src/branch.rs crates/core/src/callsite.rs crates/core/src/eval.rs crates/core/src/global.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/metric.rs crates/core/src/missrate.rs crates/core/src/tripcount.rs

/root/repo/target/release/deps/libestimators-d1e9f8b3a7170189.rmeta: crates/core/src/lib.rs crates/core/src/branch.rs crates/core/src/callsite.rs crates/core/src/eval.rs crates/core/src/global.rs crates/core/src/inter.rs crates/core/src/intra.rs crates/core/src/metric.rs crates/core/src/missrate.rs crates/core/src/tripcount.rs

crates/core/src/lib.rs:
crates/core/src/branch.rs:
crates/core/src/callsite.rs:
crates/core/src/eval.rs:
crates/core/src/global.rs:
crates/core/src/inter.rs:
crates/core/src/intra.rs:
crates/core/src/metric.rs:
crates/core/src/missrate.rs:
crates/core/src/tripcount.rs:
