/root/repo/target/release/deps/bench-46e7b15cf9dccb2e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-46e7b15cf9dccb2e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-46e7b15cf9dccb2e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
