/root/repo/target/release/deps/solver_scaling-c94df2548f983d9c.d: crates/bench/benches/solver_scaling.rs

/root/repo/target/release/deps/solver_scaling-c94df2548f983d9c: crates/bench/benches/solver_scaling.rs

crates/bench/benches/solver_scaling.rs:
