/root/repo/target/release/deps/sfe-a89ff193a0d98f48.d: crates/cli/src/main.rs

/root/repo/target/release/deps/sfe-a89ff193a0d98f48: crates/cli/src/main.rs

crates/cli/src/main.rs:
