//! # static-estimators
//!
//! A reproduction of *Accurate Static Estimators for Program Optimization*
//! (Wagner, Maverick, Graham & Harrison — PLDI 1994) as a Rust workspace.
//!
//! This umbrella crate re-exports the workspace members so examples and
//! downstream users can depend on a single crate:
//!
//! - [`minic`] — the MiniC front end (lexer, parser, AST, types, sema).
//! - [`flowgraph`] — CFGs, call graphs, loops, dominators, SCCs.
//! - [`linsolve`] — the dense linear-system solver behind the Markov models.
//! - [`profiler`] — the instrumenting CFG interpreter and profile data.
//! - [`estimators`] — the paper's contribution: static frequency estimators
//!   and the weight-matching evaluation metric.
//! - [`suite`] — the 14-program benchmark suite with input generators.
//!
//! # Examples
//!
//! Estimate intra-procedural block frequencies for a tiny program:
//!
//! ```
//! use static_estimators::prelude::*;
//!
//! let src = r#"
//!     char *strchr(char *str, int c) {
//!         while (*str) {
//!             if (*str == c) return str;
//!             str++;
//!         }
//!         return 0;
//!     }
//! "#;
//! let module = minic::compile(src).expect("valid MiniC");
//! let program = flowgraph::build_program(&module);
//! let est = estimators::intra::estimate_function(
//!     &program,
//!     program.function_id("strchr").unwrap(),
//!     estimators::intra::IntraEstimator::Smart,
//! );
//! assert!(!est.is_empty());
//! ```

#![warn(missing_docs)]

pub use estimators;
pub use flowgraph;
pub use linsolve;
pub use minic;
pub use profiler;
pub use suite;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use estimators;
    pub use flowgraph;
    pub use linsolve;
    pub use minic;
    pub use profiler;
    pub use suite;
}
