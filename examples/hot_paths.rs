//! Whole-program hot-path listing: combine intra- and inter-procedural
//! estimates into a global ranking of basic blocks and arcs (the
//! abstract's "arc and basic block frequency estimates for the entire
//! program"), then print the hottest estimated path through the
//! hottest function — all statically.
//!
//! Run with: `cargo run --release --example hot_paths [program]`

use estimators::global::{global_arcs, global_blocks};
use estimators::{inter, intra};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_string());
    let bench = suite::by_name(&name).ok_or_else(|| format!("unknown suite program `{name}`"))?;
    let program = bench.compile().map_err(|e| e.render(bench.source))?;

    let ia = intra::estimate_program(&program, intra::IntraEstimator::Smart);
    let ie = inter::estimate_invocations(&program, &ia, inter::InterEstimator::Markov);

    // Top blocks across the whole program.
    let mut blocks = global_blocks(&program, &ia, &ie);
    blocks.sort_by(|a, b| b.freq.total_cmp(&a.freq));
    println!("{name}: hottest basic blocks (static estimate)");
    for gb in blocks.iter().take(8) {
        println!(
            "  {:>10.1}  {}:B{}",
            gb.freq,
            program.module.function(gb.func).name,
            gb.block.0
        );
    }

    // Walk the hottest arc out of each block starting from the hottest
    // function's entry — the "trace" an optimizer would lay out first.
    let arcs = global_arcs(&program, &ia, &ie);
    let hot_fn = blocks[0].func;
    let cfg = program.cfg(hot_fn);
    println!(
        "\nhot trace through `{}` (following the likeliest arc):",
        program.module.function(hot_fn).name
    );
    let mut cur = cfg.entry;
    let mut visited = std::collections::HashSet::new();
    while visited.insert(cur) {
        let est = ia.blocks_of(hot_fn)[cur.0 as usize];
        println!("  B{} (freq {est:.2})", cur.0);
        let next = arcs
            .iter()
            .filter(|a| a.func == hot_fn && a.from == cur)
            .max_by(|a, b| a.freq.total_cmp(&b.freq));
        match next {
            Some(a) => cur = a.to,
            None => break,
        }
    }

    // Validate against one real run.
    let input = bench.inputs().into_iter().next().unwrap();
    let out = profiler::run(&program, &profiler::RunConfig::with_input(input))?;
    let mut actual: Vec<(f64, String)> = Vec::new();
    for f in program.defined_ids() {
        for (b, &c) in out.profile.blocks_of(f).iter().enumerate() {
            actual.push((
                c as f64,
                format!("{}:B{}", program.module.function(f).name, b),
            ));
        }
    }
    actual.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\nactually hottest blocks on input 1:");
    for (c, label) in actual.iter().take(8) {
        println!("  {c:>10.0}  {label}");
    }
    Ok(())
}
