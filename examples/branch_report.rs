//! A per-branch prediction report: which heuristic fired on each
//! branch of a program, and how often each heuristic was right on real
//! inputs — a view into the §4.1 predictor that the paper aggregates
//! into Figure 2.
//!
//! Run with: `cargo run --release --example branch_report [program]`

use estimators::{predict_module, Heuristic};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "awk".to_string());
    let bench = suite::by_name(&name).ok_or_else(|| format!("unknown suite program `{name}`"))?;
    let program = bench.compile().map_err(|e| e.render(bench.source))?;
    let predictions = predict_module(&program.module);
    let profiles = bench.profiles(&program)?;

    // Aggregate dynamic outcomes per heuristic.
    let mut stats: HashMap<Heuristic, (u64, u64)> = HashMap::new(); // (hits, total)
    for branch in &program.module.side.branches {
        if branch.const_cond.is_some() {
            continue; // predicted but not scored (§2)
        }
        let pred = predictions[&branch.id];
        let (mut taken, mut not) = (0, 0);
        for p in &profiles {
            let (t, n) = p.branch(branch.id);
            taken += t;
            not += n;
        }
        if taken + not == 0 {
            continue;
        }
        let hits = if pred.taken { taken } else { not };
        let e = stats.entry(pred.heuristic).or_insert((0, 0));
        e.0 += hits;
        e.1 += taken + not;
    }

    println!("{name}: heuristic hit rates over {} inputs", profiles.len());
    println!(
        "{:<12} {:>14} {:>14} {:>8}",
        "heuristic", "correct", "total", "rate"
    );
    let mut rows: Vec<_> = stats.into_iter().collect();
    rows.sort_by_key(|&(_, (_, total))| std::cmp::Reverse(total));
    let (mut all_hits, mut all_total) = (0, 0);
    for (h, (hits, total)) in rows {
        println!(
            "{:<12} {:>14} {:>14} {:>7.1}%",
            format!("{h:?}"),
            hits,
            total,
            hits as f64 / total as f64 * 100.0
        );
        all_hits += hits;
        all_total += total;
    }
    if all_total > 0 {
        println!(
            "{:<12} {:>14} {:>14} {:>7.1}%  (miss rate {:.1}%)",
            "overall",
            all_hits,
            all_total,
            all_hits as f64 / all_total as f64 * 100.0,
            (1.0 - all_hits as f64 / all_total as f64) * 100.0
        );
    }
    Ok(())
}
