//! Selective function inlining guided by static call-site estimates —
//! the §5.3 use case ("In function inlining, the crucial information
//! derived from a profile is the frequency of execution of specific
//! call sites").
//!
//! This example ranks the call sites of a suite program with the
//! combined intra + inter Markov estimate, picks the top quartile as
//! inlining candidates, and then checks against a real profile how
//! much dynamic call traffic those candidates cover.
//!
//! Run with: `cargo run --release --example inliner [program-name]`

use estimators::{callsite, inter, intra};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cc".to_string());
    let bench = suite::by_name(&name).ok_or_else(|| format!("unknown suite program `{name}`"))?;
    let program = bench.compile().map_err(|e| e.render(bench.source))?;

    // Static analysis only: intra smart + inter Markov.
    let ia = intra::estimate_program(&program, intra::IntraEstimator::Smart);
    let ie = inter::estimate_invocations(&program, &ia, inter::InterEstimator::Markov);
    let mut sites = callsite::estimate_sites(&program, &ia, &ie);
    sites.sort_by(|a, b| b.freq.total_cmp(&a.freq));

    let candidates = sites.len().div_ceil(4); // top quartile
    println!(
        "{name}: {} direct call sites, inlining the top {candidates}:",
        sites.len()
    );
    for s in sites.iter().take(candidates) {
        let cs = &program.module.side.call_sites[s.site.0 as usize];
        let caller = &program.module.function(cs.caller).name;
        let callee = match cs.callee {
            minic::sema::CalleeKind::Direct(f) => program.module.function(f).name.clone(),
            _ => unreachable!("rankable sites are direct"),
        };
        println!(
            "  {caller:>16} -> {callee:<16} est. freq {:10.1}  (line {})",
            s.freq,
            cs.span.line(bench.source)
        );
    }

    // How much actual call traffic do the candidates capture?
    let profiles = bench.profiles(&program)?;
    for (i, p) in profiles.iter().enumerate() {
        let covered: u64 = sites.iter().take(candidates).map(|s| p.site(s.site)).sum();
        let total: u64 = sites.iter().map(|s| p.site(s.site)).sum();
        println!(
            "input {}: candidates cover {}/{} dynamic calls ({:.0}%)",
            i + 1,
            covered,
            total,
            if total > 0 {
                covered as f64 / total as f64 * 100.0
            } else {
                100.0
            }
        );
    }
    Ok(())
}
