//! Quickstart: estimate block frequencies statically and compare them
//! against a real profile, reproducing the paper's core loop in ~50
//! lines.
//!
//! Run with: `cargo run --example quickstart`

use estimators::{intra, weight_matching};
use profiler::RunConfig;

const SOURCE: &str = r#"
int classify(int c) {
    if (c >= '0' && c <= '9') return 0;   /* digit */
    if (c == ' ' || c == '\n') return 1;  /* space */
    return 2;                             /* other */
}

int main(void) {
    int c, counts[3];
    counts[0] = 0; counts[1] = 0; counts[2] = 0;
    while ((c = getchar()) != -1)
        counts[classify(c)]++;
    printf("digits=%d spaces=%d other=%d\n",
           counts[0], counts[1], counts[2]);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile MiniC and lower to CFGs.
    let module = minic::compile(SOURCE).map_err(|e| e.render(SOURCE))?;
    let program = flowgraph::build_program(&module);

    // 2. Static estimate (no execution!).
    let estimates = intra::estimate_program(&program, intra::IntraEstimator::Smart);

    // 3. Ground truth: run the program on an input.
    let out = profiler::run(&program, &RunConfig::with_input("words 42 and 7 numbers"))?;
    println!("program output: {}", out.stdout().trim());

    // 4. Compare, function by function, with the weight-matching
    //    metric at the paper's intra-procedural 5% cutoff... which for
    //    tiny functions we widen to 50% so the comparison is visible.
    for f in program.defined_ids() {
        let actual: Vec<f64> = out.profile.blocks_of(f).iter().map(|&c| c as f64).collect();
        let est = estimates.blocks_of(f);
        let score = weight_matching(est, &actual, 0.5);
        println!(
            "{:10} blocks={} weight-matching@50% = {:.0}%",
            program.module.function(f).name,
            est.len(),
            score * 100.0
        );
        for (b, (e, a)) in est.iter().zip(&actual).enumerate() {
            println!("    B{b}: estimated {e:7.2}   actual {a:7.0}");
        }
    }
    Ok(())
}
