//! The paper's §6 experiment as a library consumer would run it:
//! decide which functions of a program deserve optimization using only
//! static estimates, then validate the choice on a held-out workload
//! with the cost model.
//!
//! Run with: `cargo run --release --example selective_optimization [program]`

use estimators::{inter, intra};
use minic::sema::FuncId;
use profiler::RunConfig;
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_string());
    let bench = suite::by_name(&name).ok_or_else(|| format!("unknown suite program `{name}`"))?;
    let program = bench.compile().map_err(|e| e.render(bench.source))?;

    // Rank functions by the static Markov invocation estimate.
    let ia = intra::estimate_program(&program, intra::IntraEstimator::Smart);
    let ie = inter::estimate_invocations(&program, &ia, inter::InterEstimator::Markov);
    let mut order = program.defined_ids();
    order.sort_by(|&a, &b| ie.of(b).total_cmp(&ie.of(a)));

    println!("{name}: static hotness ranking");
    for (i, &f) in order.iter().enumerate() {
        println!(
            "  {:2}. {:<18} est. invocations {:10.1}",
            i + 1,
            program.module.function(f).name,
            ie.of(f)
        );
    }

    // Measure on the last standard input (the others would be the
    // "profiling" inputs if we were comparing approaches).
    let inputs = bench.inputs();
    let measured = profiler::run(
        &program,
        &RunConfig::with_input(inputs.last().expect("inputs").clone()),
    )?
    .profile;

    println!("\nsimulated speedup as functions are optimized (cost model):");
    let base = profiler::cost::simulated_time(&measured, &HashSet::new());
    for k in 0..=order.len() {
        let set: HashSet<FuncId> = order.iter().take(k).copied().collect();
        let t = profiler::cost::simulated_time(&measured, &set);
        let bar = "#".repeat(((base / t - 1.0) * 40.0) as usize);
        println!("  top-{k:<2} speedup {:5.3} {bar}", base / t);
        if k >= 8 && base / t > 0.97 * (1.0 / profiler::cost::OPT_FACTOR) {
            println!("  (diminishing returns; stopping)");
            break;
        }
    }
    Ok(())
}
