//! `stormgen` — the synthetic-client load driver for `sfe serve`.
//!
//! N concurrent clients each own one fuzzgen program in a private
//! namespace (`storm/c{i}`) and replay a seed-deterministic mix of
//! `estimate` / `profile` / `score` / `update` requests against the
//! shared database. Because every client's request *sequence* is
//! pregenerated from `(seed, client)` alone — mutations never depend
//! on responses — the full workload is a pure function of the config,
//! and the response stream must be too: the report carries an
//! order-insensitive digest (per-client FNV over response bytes,
//! XOR-combined across clients) plus the database's state digest, and
//! both must be identical for any `--jobs` value and any thread
//! interleaving. That is the storm determinism contract the tests and
//! the CI smoke step assert.
//!
//! Latency is measured per request in nanoseconds around the
//! send/receive pair; the report aggregates sustained q/s and p50/p99.

use crate::db::{ServeDb, WorkCounters};
use crate::edits::{mutate, xorshift};
use crate::proto::{num_u64, obj};
use crate::session::Session;
use obs::json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Workload shape for one storm run.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client after the initial `load`.
    pub requests: usize,
    /// Workload seed; same seed ⇒ same requests, byte for byte.
    pub seed: u64,
    /// Percentage of requests that are source `update`s (the rest are
    /// reads: ~70% of the remainder `estimate`, then `profile`, with
    /// an occasional `score`).
    pub update_pct: u32,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            clients: 4,
            requests: 100,
            seed: 1,
            update_pct: 20,
        }
    }
}

/// What a storm run measured.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Total requests answered (including the per-client loads).
    pub total_requests: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Sustained requests per second.
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Order-insensitive digest of every response byte.
    pub digest: u64,
    /// [`ServeDb::state_digest`] after the run (`None` over TCP, where
    /// the driver has no database handle).
    pub db_digest: Option<u128>,
    /// Work the database did during the run (`None` over TCP).
    pub work: Option<WorkCounters>,
    /// Responses that carried an `error` object.
    pub errors: u64,
}

impl StormReport {
    /// The report as a JSON value, for bench rows and the CLI.
    pub fn to_value(&self, config: &StormConfig, jobs: usize) -> Value {
        let mut pairs = vec![
            ("clients", num_u64(config.clients as u64)),
            ("digest", Value::Str(format!("{:016x}", self.digest))),
            ("errors", num_u64(self.errors)),
            ("jobs", num_u64(jobs as u64)),
            ("p50_us", num_u64(self.p50_us)),
            ("p99_us", num_u64(self.p99_us)),
            ("qps", Value::Num(round2(self.qps))),
            ("requests", num_u64(self.total_requests)),
            ("seed", num_u64(config.seed)),
            ("update_pct", num_u64(config.update_pct as u64)),
            ("wall_s", Value::Num(round2(self.wall_s))),
        ];
        if let Some(d) = self.db_digest {
            pairs.push(("db_digest", Value::Str(format!("{d:032x}"))));
        }
        obj(pairs)
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Pregenerates client `i`'s full request list: one `load`, then
/// `requests` mixed operations. Pure in `(config, i)`.
pub fn client_script(config: &StormConfig, i: usize) -> Vec<String> {
    let name = format!("storm/c{i}");
    let mut prog = fuzzgen::gen::generate(config.seed.wrapping_mul(1571).wrapping_add(i as u64));
    let mut rng = (config.seed ^ 0x5bf0_3635_0aef_7787 ^ (i as u64).wrapping_mul(0x9e37_79b9)) | 1;
    let mut out = Vec::with_capacity(config.requests + 1);
    let mut id = 0u64;
    out.push(load_request(&mut id, "load", &name, &prog.render()));
    for step in 0..config.requests {
        let roll = (xorshift(&mut rng) % 100) as u32;
        if roll < config.update_pct {
            if mutate(&mut prog, &mut rng) {
                out.push(load_request(&mut id, "update", &name, &prog.render()));
            } else {
                // No editable expression: fall back to a read so the
                // request count stays exact.
                out.push(estimate_request(&mut id, &name, step));
            }
        } else if roll < config.update_pct + 15 {
            id += 1;
            out.push(format!(
                r#"{{"sfe":"serve/v1","id":{id},"method":"profile","params":{{"program":"{name}"}}}}"#
            ));
        } else if roll < config.update_pct + 20 {
            id += 1;
            out.push(format!(
                r#"{{"sfe":"serve/v1","id":{id},"method":"score","params":{{"program":"{name}"}}}}"#
            ));
        } else {
            out.push(estimate_request(&mut id, &name, step));
        }
    }
    out
}

fn load_request(id: &mut u64, method: &str, name: &str, source: &str) -> String {
    *id += 1;
    let src = json_escape(source);
    format!(
        r#"{{"sfe":"serve/v1","id":{id},"method":"{method}","params":{{"program":"{name}","source":"{src}"}}}}"#
    )
}

fn estimate_request(id: &mut u64, name: &str, step: usize) -> String {
    *id += 1;
    let estimator = ["smart", "loop", "markov"][step % 3];
    let inter = ["markov", "call-site", "direct", "all-rec", "all-rec2"][step % 5];
    format!(
        r#"{{"sfe":"serve/v1","id":{id},"method":"estimate","params":{{"estimator":"{estimator}","inter":"{inter}","program":"{name}"}}}}"#
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// FNV-1a over one client's concatenated response lines.
fn response_digest(digest: &mut u64, response: &str) {
    for &b in response.as_bytes() {
        *digest = (*digest ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    *digest = (*digest ^ u64::from(b'\n')).wrapping_mul(0x0000_0100_0000_01b3);
}

struct ClientResult {
    digest: u64,
    latencies_ns: Vec<u64>,
    errors: u64,
}

fn run_client(script: &[String], mut transport: impl FnMut(&str) -> String) -> ClientResult {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut latencies_ns = Vec::with_capacity(script.len());
    let mut errors = 0;
    for req in script {
        let t0 = Instant::now();
        let resp = transport(req);
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
        if resp.contains("\"error\":{") {
            errors += 1;
        }
        response_digest(&mut digest, &resp);
    }
    ClientResult {
        digest,
        latencies_ns,
        errors,
    }
}

fn aggregate(
    results: Vec<ClientResult>,
    wall_s: f64,
    db: Option<&ServeDb>,
    work_before: Option<WorkCounters>,
) -> StormReport {
    let mut digest = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0;
    for r in results {
        digest ^= r.digest;
        latencies.extend(r.latencies_ns);
        errors += r.errors;
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx] / 1000
    };
    let total_requests = latencies.len() as u64;
    let work = match (db, work_before) {
        (Some(db), Some(before)) => {
            let after = db.total_work();
            let mut delta = after;
            delta.funcs_lowered -= before.funcs_lowered;
            delta.funcs_reused -= before.funcs_reused;
            delta.blocks_lowered -= before.blocks_lowered;
            delta.blocks_reused -= before.blocks_reused;
            delta.blocks_solved -= before.blocks_solved;
            delta.solves_reused -= before.solves_reused;
            delta.inter_units -= before.inter_units;
            Some(delta)
        }
        _ => None,
    };
    StormReport {
        total_requests,
        wall_s,
        qps: if wall_s > 0.0 {
            total_requests as f64 / wall_s
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        digest,
        db_digest: db.map(ServeDb::state_digest),
        work,
        errors,
    }
}

/// Runs the storm in-process against `db`: one OS thread per client,
/// all sharing the database (per-request work still fans out on the
/// database's pool). This is the mode the determinism tests and the
/// bench use — it can read back [`ServeDb::state_digest`].
pub fn run_in_process(config: &StormConfig, db: &Arc<ServeDb>) -> StormReport {
    let work_before = db.total_work();
    let scripts: Vec<Vec<String>> = (0..config.clients)
        .map(|i| client_script(config, i))
        .collect();
    let t0 = Instant::now();
    let results: Vec<ClientResult> = thread::scope(|s| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let session = Session::new(Arc::clone(db));
                s.spawn(move || run_client(script, |req| session.handle(req).response))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    aggregate(results, wall_s, Some(db), Some(work_before))
}

/// Runs the storm against a live `sfe serve` daemon at `addr`: one
/// connection per client. The response digest is comparable with
/// [`run_in_process`] for the same config, but the database digest is
/// unavailable from outside the server process.
///
/// # Errors
///
/// Fails if any client cannot connect or a connection drops mid-run.
pub fn run_tcp(config: &StormConfig, addr: &str) -> std::io::Result<StormReport> {
    let scripts: Vec<Vec<String>> = (0..config.clients)
        .map(|i| client_script(config, i))
        .collect();
    let t0 = Instant::now();
    let results: std::io::Result<Vec<ClientResult>> = thread::scope(|s| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let addr = addr.to_string();
                s.spawn(move || -> std::io::Result<ClientResult> {
                    let stream = TcpStream::connect(&addr)?;
                    stream.set_nodelay(true)?;
                    let mut reader = BufReader::new(stream.try_clone()?);
                    let mut writer = stream;
                    let mut line = String::new();
                    Ok(run_client(script, move |req| {
                        line.clear();
                        if writeln!(writer, "{req}").is_err() {
                            return String::from("<send failed>");
                        }
                        match reader.read_line(&mut line) {
                            Ok(_) => line.trim_end().to_string(),
                            Err(_) => String::from("<recv failed>"),
                        }
                    }))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    Ok(aggregate(results?, wall_s, None, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic() {
        let config = StormConfig {
            clients: 3,
            requests: 25,
            ..StormConfig::default()
        };
        for i in 0..3 {
            assert_eq!(client_script(&config, i), client_script(&config, i));
        }
        assert_ne!(client_script(&config, 0), client_script(&config, 1));
    }

    #[test]
    fn small_storm_runs_clean() {
        let config = StormConfig {
            clients: 2,
            requests: 15,
            ..StormConfig::default()
        };
        let db = Arc::new(ServeDb::new(Some(2), None));
        let report = run_in_process(&config, &db);
        assert_eq!(report.total_requests, 2 * 16);
        assert_eq!(report.errors, 0, "storm scripts must not produce errors");
        assert!(report.qps > 0.0);
    }

    #[test]
    fn digests_agree_across_worker_counts() {
        let config = StormConfig {
            clients: 3,
            requests: 20,
            ..StormConfig::default()
        };
        let mut digests = Vec::new();
        for jobs in [1, 2] {
            let db = Arc::new(ServeDb::new(Some(jobs), None));
            let report = run_in_process(&config, &db);
            digests.push((report.digest, report.db_digest));
        }
        assert_eq!(digests[0], digests[1]);
    }
}
