//! The `sfe serve` daemon loop: NDJSON over stdin/stdout, or a local
//! TCP socket with one thread (and one [`Session`]) per connection.
//!
//! All sessions share one [`ServeDb`]; per-request computation fans
//! out on the database's work-stealing pool, so concurrency comes from
//! both axes — parallel connections and parallel per-function work
//! inside each request.
//!
//! Shutdown is cooperative: any client's `shutdown` request flips a
//! shared flag, the acceptor is unblocked with a loopback poke, every
//! live connection finishes its current request, and the acceptor
//! returns only after all handler threads are joined — no request is
//! ever dropped mid-response (the property the CI smoke test's clean-
//! shutdown assertion checks).

use crate::db::ServeDb;
use crate::session::Session;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Serves NDJSON requests from `input` to `output` until EOF or a
/// `shutdown` request. Returns the number of requests handled.
///
/// # Errors
///
/// Propagates I/O errors from the reader or writer.
pub fn serve_lines<R: BufRead, W: Write>(
    db: &Arc<ServeDb>,
    input: R,
    mut output: W,
) -> io::Result<u64> {
    let session = Session::new(Arc::clone(db));
    let mut handled = 0;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let out = session.handle(&line);
        output.write_all(out.response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        handled += 1;
        if out.shutdown {
            break;
        }
    }
    Ok(handled)
}

/// Runs the service over stdin/stdout until EOF or `shutdown`.
///
/// # Errors
///
/// Propagates I/O errors from the standard streams.
pub fn serve_stdio(db: &Arc<ServeDb>) -> io::Result<u64> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lines(db, stdin.lock(), stdout.lock())
}

/// A TCP server bound and accepting in a background thread. Dropping
/// the handle does *not* stop the server; send a `shutdown` request or
/// call [`TcpServer::shutdown`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: thread::JoinHandle<io::Result<()>>,
}

impl TcpServer {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown as if a client had sent the RPC.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        poke(self.addr);
    }

    /// Waits for the acceptor and every connection handler to finish.
    ///
    /// # Errors
    ///
    /// Propagates the acceptor thread's I/O error, if any.
    pub fn join(self) -> io::Result<()> {
        match self.acceptor.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        }
    }
}

/// Binds `addr` and serves connections until a `shutdown` request.
/// Returns once the listener is live, so callers can read
/// [`TcpServer::addr`] and connect immediately.
///
/// # Errors
///
/// Fails if the address cannot be bound.
pub fn spawn_tcp(db: Arc<ServeDb>, addr: &str) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || accept_loop(&db, &listener, &stop))
    };
    Ok(TcpServer {
        addr,
        stop,
        acceptor,
    })
}

fn accept_loop(
    db: &Arc<ServeDb>,
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let mut handlers = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Request/response lines are small; without TCP_NODELAY the
        // Nagle + delayed-ACK interaction stalls every round-trip by
        // ~40ms and caps a client at ~25 requests/sec.
        let _ = stream.set_nodelay(true);
        let db = Arc::clone(db);
        let stop = Arc::clone(stop);
        handlers.push(thread::spawn(move || {
            let _ = handle_conn(&db, stream, &stop, addr);
        }));
        // Opportunistically reap finished handlers so a long-lived
        // daemon's handle list doesn't grow with total connections.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    // The database outlives this accept loop (callers may hold other
    // references); make sure batched cache writes are on disk before
    // the daemon reports a clean exit.
    db.flush_cache();
    Ok(())
}

fn handle_conn(
    db: &Arc<ServeDb>,
    stream: TcpStream,
    stop: &Arc<AtomicBool>,
    server_addr: SocketAddr,
) -> io::Result<()> {
    let session = Session::new(Arc::clone(db));
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let out = session.handle(&line);
        writer.write_all(out.response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if out.shutdown {
            stop.store(true, Ordering::SeqCst);
            poke(server_addr);
            break;
        }
    }
    Ok(())
}

/// Unblocks an acceptor parked in `accept(2)` by completing one
/// throwaway connection to it.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int main(void) { return 7; }";

    fn load_line(name: &str) -> String {
        format!(
            r#"{{"sfe":"serve/v1","id":1,"method":"load","params":{{"program":"{name}","source":"{SRC}"}}}}"#
        )
    }

    #[test]
    fn stdio_style_loop_handles_and_stops() {
        let db = Arc::new(ServeDb::new(Some(1), None));
        let input = format!(
            "{}\n{}\n{}\n",
            load_line("p"),
            r#"{"sfe":"serve/v1","id":2,"method":"list"}"#,
            r#"{"sfe":"serve/v1","id":3,"method":"shutdown"}"#
        );
        let mut out = Vec::new();
        let handled = serve_lines(&db, input.as_bytes(), &mut out).unwrap();
        assert_eq!(handled, 3);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains(r#""programs":["p"]"#), "{text}");
    }

    #[test]
    fn tcp_roundtrip_and_clean_shutdown() {
        let db = Arc::new(ServeDb::new(Some(2), None));
        let server = spawn_tcp(db, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut line = String::new();

        writeln!(writer, "{}", load_line("p")).unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"revision\":1"), "{line}");

        line.clear();
        writeln!(writer, r#"{{"sfe":"serve/v1","id":2,"method":"shutdown"}}"#).unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");

        server.join().unwrap();
    }

    #[test]
    fn concurrent_connections_share_one_db() {
        let db = Arc::new(ServeDb::new(Some(2), None));
        let server = spawn_tcp(Arc::clone(&db), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let clients: Vec<_> = (0..4)
            .map(|i| {
                thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    writeln!(writer, "{}", load_line(&format!("c{i}"))).unwrap();
                    reader.read_line(&mut line).unwrap();
                    assert!(line.contains("\"revision\":1"), "{line}");
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(db.program_names().len(), 4);
        server.shutdown();
        server.join().unwrap();
    }
}
