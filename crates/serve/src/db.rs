//! The dependency-tracking incremental database behind `sfe serve`.
//!
//! # Invalidation model
//!
//! Derived artifacts form a per-function DAG:
//!
//! ```text
//!   source ──parse──▶ AST ──sema──▶ module ─┬─▶ CFG(f) ──▶ intra(f)
//!                                           │       ╲          │
//!                                           │        ╲         ▼
//!                                           └────────▶ callgraph ──▶ inter
//! ```
//!
//! Parsing, semantic analysis, branch prediction, the call graph, and
//! the five inter-procedural estimators are recomputed on every update
//! — they are linear scans, collectively a few percent of pipeline
//! cost. The expensive per-function stages — lowering to a CFG and the
//! intra-procedural flow solves — are cached per declaration, keyed by:
//!
//! - the function's **content fingerprint**: FNV-1a/128 over its
//!   canonical pretty-printed text plus its node-id namespace base
//!   (`minic::ast::DECL_ID_STRIDE` gives each top-level declaration a
//!   private id range, so unchanged text at an unchanged ordinal
//!   re-parses to identical `NodeId`s — the property that makes a
//!   cached CFG's embedded expression ids valid against the *new*
//!   module's side tables);
//! - the module **context fingerprint**: everything cross-function a
//!   derivation reads — struct layouts, enum constants, globals, every
//!   function signature in order, and the module's error-call set
//!   (the one cross-function input of the branch heuristics).
//!
//! A reused CFG still embeds three kinds of module-global ids assigned
//! densely by sema — `BranchId`, `SwitchId`, and string-table indices —
//! which shift when an *earlier* declaration changes. Those are
//! remapped positionally (the k-th branch of `f` in the old module is
//! the k-th branch of `f` in the new one, because sema registers sites
//! in syntactic order) before the CFG enters the new program. The
//! remap either succeeds completely or the function is re-lowered; a
//! reused function is therefore bit-identical to a freshly lowered one,
//! which is what the differential suite asserts end to end.

use crate::fp::{fold_f64s, Fnv128};
use cache::{ArtifactKey, ArtifactKind, Cache};
use estimators::branch::error_functions;
use estimators::inter::{estimate_invocations, InterEstimates, InterEstimator};
use estimators::intra::{estimate_function_with, IntraEstimates, IntraEstimator, IntraOptions};
use estimators::predict_module;
use flowgraph::cfg::{Cfg, Instr, Terminator};
use flowgraph::{CallGraph, Program};
use minic::ast::{Item, Unit};
use minic::pretty::print_item;
use minic::sema::{BranchId, FuncId, Module, SwitchId};
use profiler::{CompiledProgram, ExecScratch, Profile, RunConfig};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// The three intra estimators the database materializes, in index
/// order (the paper's loop / smart / Markov).
pub const INTRA_ALL: [IntraEstimator; 3] = [
    IntraEstimator::Loop,
    IntraEstimator::Smart,
    IntraEstimator::Markov,
];

fn intra_idx(which: IntraEstimator) -> usize {
    match which {
        IntraEstimator::Loop => 0,
        IntraEstimator::Smart => 1,
        IntraEstimator::Markov => 2,
    }
}

fn inter_idx(which: InterEstimator) -> usize {
    InterEstimator::ALL
        .iter()
        .position(|&w| w == which)
        .expect("estimator in ALL")
}

/// Recompute-vs-reuse accounting for one update (and, accumulated, for
/// the database lifetime). `total_units` is the scalar the <10%
/// incremental-work acceptance criterion is measured on: blocks
/// lowered + blocks flow-solved + inter-procedural units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Functions lowered to a fresh CFG.
    pub funcs_lowered: u64,
    /// Functions whose CFG was reused (remapped) from the previous
    /// revision.
    pub funcs_reused: u64,
    /// Basic blocks produced by fresh lowering.
    pub blocks_lowered: u64,
    /// Basic blocks carried over by CFG reuse.
    pub blocks_reused: u64,
    /// Basic blocks freshly flow-solved (summed across the three
    /// intra estimators).
    pub blocks_solved: u64,
    /// Basic blocks whose solved frequencies were reused.
    pub solves_reused: u64,
    /// Inter-procedural work units (functions + call sites, summed
    /// across the five estimators) — always recomputed.
    pub inter_units: u64,
}

impl WorkCounters {
    /// The scalar recompute cost of this update.
    pub fn total_units(&self) -> u64 {
        self.blocks_lowered + self.blocks_solved + self.inter_units
    }

    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &WorkCounters) {
        self.funcs_lowered += other.funcs_lowered;
        self.funcs_reused += other.funcs_reused;
        self.blocks_lowered += other.blocks_lowered;
        self.blocks_reused += other.blocks_reused;
        self.blocks_solved += other.blocks_solved;
        self.solves_reused += other.solves_reused;
        self.inter_units += other.inter_units;
    }
}

/// What the database reports back from one `load`/`update`.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Recompute/reuse accounting for this update alone.
    pub work: WorkCounters,
    /// Defined functions in the program.
    pub funcs: usize,
    /// Total CFG blocks.
    pub blocks: usize,
    /// Monotonic per-program revision (1 on first load).
    pub revision: u64,
    /// Whole-program content fingerprint.
    pub fingerprint: u128,
}

/// Database errors, each mapping onto one protocol error code.
#[derive(Debug, Clone)]
pub enum DbError {
    /// Source failed to parse or analyze (message is pre-rendered with
    /// a line number).
    Compile(String),
    /// No program with that name is loaded.
    UnknownProgram(String),
    /// The program has no function with that name.
    UnknownFunction(String, String),
    /// The program failed at runtime while profiling.
    Runtime(String),
}

impl DbError {
    /// The protocol error code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            DbError::Compile(_) => "compile-error",
            DbError::UnknownProgram(_) => "unknown-program",
            DbError::UnknownFunction(..) => "unknown-function",
            DbError::Runtime(_) => "run-error",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> String {
        match self {
            DbError::Compile(m) => m.clone(),
            DbError::UnknownProgram(p) => format!("unknown program: {p}"),
            DbError::UnknownFunction(p, f) => {
                format!("unknown function: {f} (program {p})")
            }
            DbError::Runtime(m) => m.clone(),
        }
    }
}

/// Cached per-function derived artifacts (block frequencies per intra
/// estimator). The CFG itself lives in the entry's assembled
/// [`Program`]; reuse lifts it from there.
struct FnArt {
    fp: u128,
    intra: [Vec<f64>; 3],
}

/// One resident program: the assembled pipeline state at its current
/// revision, plus the per-function artifact layer the next update
/// draws from.
pub struct ProgramEntry {
    /// The program's name in the database.
    pub name: String,
    /// Current source text.
    pub source: String,
    /// The assembled module + CFGs + call graph.
    pub program: Arc<Program>,
    /// Whole-program content fingerprint.
    pub fingerprint: u128,
    /// Revision counter (1 on first load).
    pub revision: u64,
    /// Work done by the update that produced this revision.
    pub last_work: WorkCounters,
    ctx_fp: u128,
    fn_arts: HashMap<String, FnArt>,
    intra: [Arc<IntraEstimates>; 3],
    inter: [Arc<InterEstimates>; 5],
    inputs: Vec<Vec<u8>>,
    compiled: OnceLock<Arc<CompiledProgram>>,
    profiles: Mutex<HashMap<Vec<u8>, Arc<Profile>>>,
}

impl ProgramEntry {
    /// The materialized intra estimates for one estimator.
    pub fn intra(&self, which: IntraEstimator) -> &IntraEstimates {
        &self.intra[intra_idx(which)]
    }

    /// The materialized inter estimates (built on smart intra
    /// estimates, as in the paper) for one estimator.
    pub fn inter(&self, which: InterEstimator) -> &InterEstimates {
        &self.inter[inter_idx(which)]
    }

    /// The inputs `score` profiles against (suite inputs for suite
    /// programs, the empty input otherwise).
    pub fn inputs(&self) -> &[Vec<u8>] {
        &self.inputs
    }

    /// Digest of every materialized estimate, bit-exact — the unit the
    /// storm determinism test compares across `--jobs` values.
    pub fn estimates_digest(&self) -> u128 {
        let mut h = Fnv128::new();
        h.word(self.fingerprint as u64);
        h.word((self.fingerprint >> 64) as u64);
        for ia in &self.intra {
            for freqs in &ia.block_freqs {
                fold_f64s(&mut h, freqs);
            }
        }
        for ie in &self.inter {
            fold_f64s(&mut h, &ie.func_freqs);
        }
        h.finish()
    }
}

/// The resident incremental database: named programs, a work-stealing
/// pool for per-function fan-out, an optional content-addressed cache
/// backing the profile layer, and a scratch-buffer pool for the VM.
pub struct ServeDb {
    pool: Arc<pool::Pool>,
    cache: Option<Cache>,
    programs: RwLock<BTreeMap<String, Arc<ProgramEntry>>>,
    scratches: Mutex<Vec<ExecScratch>>,
    totals: Mutex<WorkCounters>,
}

/// Cap on recycled VM scratch-buffer capacity (elements): buffers that
/// grew past this in one outlier run are shed when returned to the
/// pool rather than retained for the process lifetime.
const SCRATCH_TRIM_ELEMS: usize = 1 << 20;

impl ServeDb {
    /// A database computing on `jobs` pool workers (`None`: one per
    /// available core), optionally backed by a persistent artifact
    /// cache for profiles.
    pub fn new(jobs: Option<usize>, cache: Option<Cache>) -> ServeDb {
        let threads =
            jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ServeDb {
            pool: Arc::new(pool::Pool::new(threads)),
            cache,
            programs: RwLock::new(BTreeMap::new()),
            scratches: Mutex::new(Vec::new()),
            totals: Mutex::new(WorkCounters::default()),
        }
    }

    /// Pool workers backing this database.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Names of all loaded programs, sorted.
    pub fn program_names(&self) -> Vec<String> {
        self.lock_programs().keys().cloned().collect()
    }

    /// Work accumulated across every update since the database opened.
    pub fn total_work(&self) -> WorkCounters {
        *self.totals.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_programs(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ProgramEntry>>> {
        self.programs.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The entry for `name`.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownProgram`] when nothing by that name is loaded.
    pub fn entry(&self, name: &str) -> Result<Arc<ProgramEntry>, DbError> {
        self.lock_programs()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::UnknownProgram(name.to_string()))
    }

    /// Loads or updates a program from source, recomputing only what
    /// the edit invalidated. See the module docs for the invalidation
    /// model.
    ///
    /// # Errors
    ///
    /// [`DbError::Compile`] when the source does not parse or analyze;
    /// the database keeps the previous revision in that case.
    pub fn upsert(&self, name: &str, source: &str) -> Result<UpdateOutcome, DbError> {
        self.upsert_with_inputs(name, source, None)
    }

    /// [`ServeDb::upsert`] with explicit profiling inputs (used by the
    /// suite preloader; `None` keeps the entry's existing inputs, or
    /// the empty input for a fresh entry).
    ///
    /// # Errors
    ///
    /// See [`ServeDb::upsert`].
    pub fn upsert_with_inputs(
        &self,
        name: &str,
        source: &str,
        inputs: Option<Vec<Vec<u8>>>,
    ) -> Result<UpdateOutcome, DbError> {
        let _sp = obs::span("serve.upsert");
        let unit = minic::parser::parse(source).map_err(|e| DbError::Compile(e.render(source)))?;
        let module = minic::sema::analyze(&unit).map_err(|e| DbError::Compile(e.render(source)))?;
        let ctx_fp = context_fingerprint(&unit, &module);
        let fn_fps = function_fingerprints(&unit);
        let old = self.lock_programs().get(name).cloned();

        let mut work = WorkCounters::default();

        // Which functions can reuse the previous revision's artifacts.
        let reusable: Vec<bool> = module
            .functions
            .iter()
            .map(|f| {
                f.is_defined()
                    && old.as_ref().is_some_and(|o| {
                        o.ctx_fp == ctx_fp
                            && o.fn_arts.get(&f.name).map(|a| a.fp) == fn_fps.get(&f.name).copied()
                            && o.program
                                .module
                                .function_id(&f.name)
                                .and_then(|of| o.program.cfg_opt(of))
                                .is_some()
                    })
            })
            .collect();

        // Phase 1 — CFGs: reuse + remap where fingerprints allow,
        // lower fresh otherwise, fanning out on the pool. Slots are
        // merged in function order, so counters and results are
        // deterministic for any worker count.
        let mut cfg_slots: Vec<Option<(Cfg, bool)>> =
            (0..module.functions.len()).map(|_| None).collect();
        self.pool.scope(|s| {
            for (f, slot) in module.functions.iter().zip(cfg_slots.iter_mut()) {
                if f.body.is_none() {
                    continue;
                }
                let reuse = reusable[f.id.0 as usize];
                let module = &module;
                let old = &old;
                s.spawn(move |_| {
                    let reused = reuse.then(|| {
                        let o = old.as_ref().expect("reusable implies old entry");
                        let of = o
                            .program
                            .module
                            .function_id(&f.name)
                            .expect("reusable implies old function");
                        remap_cfg(&o.program, of, module, f.id)
                    });
                    *slot = Some(match reused.flatten() {
                        Some(cfg) => (cfg, true),
                        None => (flowgraph::lower::lower_function(module, f), false),
                    });
                });
            }
        });
        let mut cfgs: Vec<Option<Cfg>> = Vec::with_capacity(cfg_slots.len());
        for slot in cfg_slots {
            match slot {
                Some((cfg, reused)) => {
                    let blocks = cfg.blocks.len() as u64;
                    if reused {
                        work.funcs_reused += 1;
                        work.blocks_reused += blocks;
                    } else {
                        work.funcs_lowered += 1;
                        work.blocks_lowered += blocks;
                    }
                    cfgs.push(Some(cfg));
                }
                None => cfgs.push(None),
            }
        }

        // Phase 2 — assemble the program and rebuild the call graph
        // (a linear scan over the CFGs).
        let mut program = Program {
            module,
            cfgs,
            callgraph: CallGraph::default(),
        };
        program.callgraph = CallGraph::build(&program);
        let program = Arc::new(program);

        // Phase 3 — branch predictions (cheap, module-wide) and intra
        // estimates: cached frequencies are reused per (function,
        // estimator); everything else is solved on the pool.
        let predictions = predict_module(&program.module);
        let options = IntraOptions::default();
        let n_funcs = program.module.functions.len();
        let mut intra_slots: Vec<[Option<Vec<f64>>; 3]> =
            (0..n_funcs).map(|_| [None, None, None]).collect();
        self.pool.scope(|s| {
            for (fi, slots) in intra_slots.iter_mut().enumerate() {
                let f = &program.module.functions[fi];
                if f.body.is_none() {
                    continue;
                }
                let reuse = reusable[fi];
                let program = &program;
                let predictions = &predictions;
                let options = &options;
                let old = &old;
                for (ei, slot) in slots.iter_mut().enumerate() {
                    s.spawn(move |_| {
                        if reuse {
                            let o = old.as_ref().expect("reusable implies old entry");
                            *slot = Some(o.fn_arts[&f.name].intra[ei].clone());
                        } else {
                            *slot = Some(estimate_function_with(
                                program,
                                f.id,
                                INTRA_ALL[ei],
                                predictions,
                                options,
                            ));
                        }
                    });
                }
            }
        });
        let mut block_freqs: [Vec<Vec<f64>>; 3] = Default::default();
        for (fi, slots) in intra_slots.into_iter().enumerate() {
            let defined = program.module.functions[fi].is_defined();
            for (ei, slot) in slots.into_iter().enumerate() {
                let freqs = slot.unwrap_or_default();
                if defined {
                    if reusable[fi] {
                        work.solves_reused += freqs.len() as u64;
                    } else {
                        work.blocks_solved += freqs.len() as u64;
                    }
                }
                block_freqs[ei].push(freqs);
            }
        }
        let intra: [Arc<IntraEstimates>; 3] = {
            let mut it = block_freqs.into_iter().enumerate().map(|(ei, freqs)| {
                Arc::new(IntraEstimates {
                    estimator: INTRA_ALL[ei],
                    block_freqs: freqs,
                    predictions: predictions.clone(),
                })
            });
            [
                it.next().expect("three"),
                it.next().expect("three"),
                it.next().expect("three"),
            ]
        };

        // Phase 4 — inter-procedural estimates: always recomputed
        // (they depend on every function's intra estimates), built on
        // smart intra as in the paper.
        let smart = &intra[intra_idx(IntraEstimator::Smart)];
        let inter_unit =
            (program.module.functions.len() + program.module.side.call_sites.len()) as u64;
        let inter: [Arc<InterEstimates>; 5] = {
            let mut it = InterEstimator::ALL
                .iter()
                .map(|&w| Arc::new(estimate_invocations(&program, smart, w)));
            work.inter_units = inter_unit * InterEstimator::ALL.len() as u64;
            [
                it.next().expect("five"),
                it.next().expect("five"),
                it.next().expect("five"),
                it.next().expect("five"),
                it.next().expect("five"),
            ]
        };

        // Phase 5 — refresh the per-function artifact layer for the
        // next update, and publish the new revision.
        let mut fn_arts = HashMap::new();
        for f in &program.module.functions {
            if !f.is_defined() {
                continue;
            }
            let fid = f.id.0 as usize;
            fn_arts.insert(
                f.name.clone(),
                FnArt {
                    fp: fn_fps.get(&f.name).copied().unwrap_or(0),
                    intra: [
                        intra[0].block_freqs[fid].clone(),
                        intra[1].block_freqs[fid].clone(),
                        intra[2].block_freqs[fid].clone(),
                    ],
                },
            );
        }
        let fingerprint = {
            let mut h = Fnv128::new();
            h.word(ctx_fp as u64);
            h.word((ctx_fp >> 64) as u64);
            for f in &program.module.functions {
                if let Some(&fp) = fn_fps.get(&f.name) {
                    h.word(fp as u64);
                    h.word((fp >> 64) as u64);
                }
            }
            h.finish()
        };
        let funcs = program.defined_ids().len();
        let blocks = program.total_blocks();
        let revision = old.as_ref().map_or(1, |o| o.revision + 1);
        let inputs = inputs
            .or_else(|| old.as_ref().map(|o| o.inputs.clone()))
            .unwrap_or_else(|| vec![Vec::new()]);

        let entry = Arc::new(ProgramEntry {
            name: name.to_string(),
            source: source.to_string(),
            program,
            fingerprint,
            revision,
            last_work: work,
            ctx_fp,
            fn_arts,
            intra,
            inter,
            inputs,
            compiled: OnceLock::new(),
            profiles: Mutex::new(HashMap::new()),
        });
        self.programs
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), entry);
        self.totals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .add(&work);
        obs::counter_add("serve.updates", 1);
        obs::counter_add("serve.funcs_lowered", work.funcs_lowered);
        obs::counter_add("serve.funcs_reused", work.funcs_reused);
        obs::counter_add("serve.blocks_lowered", work.blocks_lowered);
        obs::counter_add("serve.blocks_solved", work.blocks_solved);

        Ok(UpdateOutcome {
            work,
            funcs,
            blocks,
            revision,
            fingerprint,
        })
    }

    /// The profile of `name` on `input` — from the in-memory layer,
    /// the content-addressed cache, or a VM run (writing through),
    /// in that order.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownProgram`] / [`DbError::Runtime`].
    pub fn profile(&self, name: &str, input: &[u8]) -> Result<Arc<Profile>, DbError> {
        let _sp = obs::span("serve.profile");
        let entry = self.entry(name)?;
        if let Some(p) = entry
            .profiles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(input)
        {
            return Ok(Arc::clone(p));
        }
        let config = RunConfig::with_input(input.to_vec());
        let key = self
            .cache
            .as_ref()
            .map(|_| ArtifactKey::derive(ArtifactKind::Profile, &entry.source, &config));
        if let (Some(c), Some(k)) = (self.cache.as_ref(), key) {
            if let Some(profile) = c.load_profile(k) {
                let profile = Arc::new(profile);
                entry
                    .profiles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(input.to_vec(), Arc::clone(&profile));
                return Ok(profile);
            }
        }
        let compiled = entry
            .compiled
            .get_or_init(|| Arc::new(profiler::compile(&entry.program)));
        let mut scratch = self
            .scratches
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        let out = compiled.execute_in(&config, &mut scratch);
        // Return the scratch before error handling so a failing run
        // doesn't leak it; shed outlier capacity either way.
        scratch.trim(SCRATCH_TRIM_ELEMS);
        self.scratches
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
        let out = out.map_err(|e| DbError::Runtime(e.to_string()))?;
        let profile = Arc::new(out.profile);
        if let (Some(c), Some(k)) = (self.cache.as_ref(), key) {
            c.store_batched(k, &cache::codec::Artifact::Profile((*profile).clone()));
        }
        entry
            .profiles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(input.to_vec(), Arc::clone(&profile));
        Ok(profile)
    }

    /// Weight-matching scores for `name` against its inputs' profiles:
    /// intra (5% cutoff, three estimators), invocation (25%, five),
    /// call-site (25%, direct + Markov) — the paper's headline tables,
    /// composed from the materialized estimates rather than recomputed.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownProgram`] / [`DbError::Runtime`].
    pub fn score(&self, name: &str) -> Result<Scores, DbError> {
        let _sp = obs::span("serve.score");
        let entry = self.entry(name)?;
        let mut profiles = Vec::new();
        for input in entry.inputs() {
            profiles.push((*self.profile(name, input)?).clone());
        }
        // Batched profile writes from the loop above would otherwise
        // sit in the write tier until the cache drops — which a
        // resident service never does; see `flush_cache`.
        self.flush_cache();
        let program = &entry.program;
        let intra = [
            estimators::eval::intra_score(
                program,
                entry.intra(IntraEstimator::Loop),
                &profiles,
                0.05,
            ),
            estimators::eval::intra_score(
                program,
                entry.intra(IntraEstimator::Smart),
                &profiles,
                0.05,
            ),
            estimators::eval::intra_score(
                program,
                entry.intra(IntraEstimator::Markov),
                &profiles,
                0.05,
            ),
        ];
        let mut invocation = [0.0; 5];
        for (i, &w) in InterEstimator::ALL.iter().enumerate() {
            invocation[i] =
                estimators::eval::invocation_score(program, entry.inter(w), &profiles, 0.25);
        }
        let smart = entry.intra(IntraEstimator::Smart);
        let callsite = [
            estimators::eval::callsite_score(
                program,
                smart,
                entry.inter(InterEstimator::Direct),
                &profiles,
                0.25,
            ),
            estimators::eval::callsite_score(
                program,
                smart,
                entry.inter(InterEstimator::Markov),
                &profiles,
                0.25,
            ),
        ];
        Ok(Scores {
            intra,
            invocation,
            callsite,
        })
    }

    /// Drains the cache's batched write tier to disk. A one-shot run
    /// gets this for free from `Drop`; a resident service must flush
    /// at request boundaries or the entries exist only in memory for
    /// the daemon's lifetime (invisible to other processes, lost on a
    /// crash).
    pub fn flush_cache(&self) {
        if let Some(c) = &self.cache {
            c.flush();
        }
    }

    /// Bit-exact digest of the whole database state — program sources,
    /// fingerprints, and every materialized estimate — independent of
    /// insertion order and worker count. The storm determinism test
    /// compares this across `--jobs` values.
    pub fn state_digest(&self) -> u128 {
        let mut h = Fnv128::new();
        for (name, entry) in self.lock_programs().iter() {
            h.field_str(name);
            h.field_str(&entry.source);
            let d = entry.estimates_digest();
            h.word(d as u64);
            h.word((d >> 64) as u64);
        }
        h.finish()
    }
}

impl Drop for ServeDb {
    fn drop(&mut self) {
        self.flush_cache();
    }
}

/// The score bundle `score` responds with.
#[derive(Debug, Clone, Copy)]
pub struct Scores {
    /// Loop / smart / Markov intra scores at the 5% cutoff.
    pub intra: [f64; 3],
    /// The five invocation estimators at the 25% cutoff, in
    /// [`InterEstimator::ALL`] order.
    pub invocation: [f64; 5],
    /// Call-site scores (direct, Markov) at the 25% cutoff.
    pub callsite: [f64; 2],
}

/// Per-declaration content fingerprints for every *defined* function:
/// canonical pretty-printed text plus the declaration's id-namespace
/// witness (its own node id), which changes if stride alignment ever
/// degrades (overflow) or the ordinal moves.
fn function_fingerprints(unit: &Unit) -> HashMap<String, u128> {
    let mut out = HashMap::new();
    for item in &unit.items {
        if let Item::Function(fd) = item {
            if fd.body.is_none() {
                continue;
            }
            let mut h = Fnv128::new();
            h.field_str(&print_item(item));
            h.word(u64::from(fd.id.0));
            out.insert(fd.name.clone(), h.finish());
        }
    }
    out
}

/// The module-context fingerprint: every cross-function input of
/// per-function derivations. Struct/enum/global declarations feed
/// layouts and types; the ordered function signature list pins callee
/// types, declaration order, and arity; the error-call set is the one
/// whole-module input of the branch heuristics (`ErrorCall` fires on
/// calls to functions that always reach `exit`). Any change here
/// conservatively invalidates every cached function.
fn context_fingerprint(unit: &Unit, module: &Module) -> u128 {
    let mut h = Fnv128::new();
    for item in &unit.items {
        if !matches!(item, Item::Function(_)) {
            h.field_str(&print_item(item));
        }
    }
    for f in &module.functions {
        h.field_str(&f.name);
        h.field_str(&format!("{:?}", f.sig));
        h.word(u64::from(f.is_defined()));
    }
    let errs = error_functions(module);
    let mut err_names: Vec<&str> = module
        .functions
        .iter()
        .filter(|f| errs.contains(&f.id))
        .map(|f| f.name.as_str())
        .collect();
    err_names.sort_unstable();
    for n in err_names {
        h.field_str(n);
    }
    h.finish()
}

/// Lifts `old_f`'s CFG out of the previous revision and rewrites the
/// module-global ids it embeds — branch ids, switch ids, string-table
/// indices — into the new module's id space, positionally. Expression
/// node ids need no rewriting: the per-declaration id namespace
/// guarantees an unchanged declaration re-parses to identical ids.
/// Returns `None` (caller re-lowers) if any id fails to map.
fn remap_cfg(old_prog: &Program, old_f: FuncId, new_module: &Module, new_f: FuncId) -> Option<Cfg> {
    let old_cfg = old_prog.cfg_opt(old_f)?;
    let branch_map = site_map(
        old_prog
            .module
            .side
            .branches
            .iter()
            .filter(|b| b.func == old_f)
            .map(|b| b.id),
        new_module
            .side
            .branches
            .iter()
            .filter(|b| b.func == new_f)
            .map(|b| b.id),
    )?;
    let switch_map = site_map(
        old_prog
            .module
            .side
            .switches
            .iter()
            .filter(|s| s.func == old_f)
            .map(|s| s.id),
        new_module
            .side
            .switches
            .iter()
            .filter(|s| s.func == new_f)
            .map(|s| s.id),
    )?;
    let new_strings: HashMap<&str, usize> = new_module
        .strings
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), i))
        .collect();

    let mut cfg = old_cfg.clone();
    cfg.func = new_f;
    for block in &mut cfg.blocks {
        for instr in &mut block.instrs {
            if let Instr::InitStr { str_idx, .. } = instr {
                let s = old_prog.module.strings.get(*str_idx)?;
                *str_idx = *new_strings.get(s.as_str())?;
            }
        }
        match &mut block.term {
            Terminator::Branch {
                branch: Some(b), ..
            } => *b = *branch_map.get(b)?,
            Terminator::Switch { switch, .. } => *switch = *switch_map.get(switch)?,
            _ => {}
        }
    }
    Some(cfg)
}

/// Zips two equally-long id sequences into an old→new map; `None` on a
/// length mismatch (the positional correspondence would be unsound).
fn site_map<I: Copy + Eq + std::hash::Hash>(
    old: impl Iterator<Item = I>,
    new: impl Iterator<Item = I>,
) -> Option<HashMap<I, I>> {
    let old: Vec<I> = old.collect();
    let new: Vec<I> = new.collect();
    if old.len() != new.len() {
        return None;
    }
    Some(old.into_iter().zip(new).collect())
}

// Silence unused-import warnings for id types referenced in docs only.
#[allow(unused)]
fn _id_types(_: BranchId, _: SwitchId) {}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_FN: &str = r#"
int helper(int n) {
    int i, s = 0;
    for (i = 0; i < n; i++) s += i;
    return s;
}
int main(void) {
    int i, s = 0;
    for (i = 0; i < 10; i++) s += helper(i);
    return s & 255;
}
"#;

    #[test]
    fn first_load_lowers_everything() {
        let db = ServeDb::new(Some(2), None);
        let out = db.upsert("p", TWO_FN).unwrap();
        assert_eq!(out.revision, 1);
        assert_eq!(out.work.funcs_lowered, 2);
        assert_eq!(out.work.funcs_reused, 0);
        assert!(out.work.blocks_solved > 0);
    }

    #[test]
    fn unchanged_reload_reuses_everything() {
        let db = ServeDb::new(Some(2), None);
        db.upsert("p", TWO_FN).unwrap();
        let out = db.upsert("p", TWO_FN).unwrap();
        assert_eq!(out.revision, 2);
        assert_eq!(out.work.funcs_lowered, 0);
        assert_eq!(out.work.funcs_reused, 2);
        assert_eq!(out.work.blocks_solved, 0);
    }

    #[test]
    fn single_function_edit_recomputes_only_it() {
        let db = ServeDb::new(Some(2), None);
        db.upsert("p", TWO_FN).unwrap();
        let edited = TWO_FN.replace("s += i;", "s += i * 2;");
        assert_ne!(edited, TWO_FN);
        let out = db.upsert("p", &edited).unwrap();
        assert_eq!(out.work.funcs_lowered, 1);
        assert_eq!(out.work.funcs_reused, 1);
    }

    #[test]
    fn incremental_matches_cold_estimates() {
        let db = ServeDb::new(Some(2), None);
        db.upsert("p", TWO_FN).unwrap();
        let edited = TWO_FN.replace("i < 10", "i < 99");
        db.upsert("p", &edited).unwrap();

        let cold = ServeDb::new(Some(1), None);
        cold.upsert("p", &edited).unwrap();

        let a = db.entry("p").unwrap();
        let b = cold.entry("p").unwrap();
        assert_eq!(a.estimates_digest(), b.estimates_digest());
    }

    #[test]
    fn error_fn_change_invalidates_context() {
        let src0 = r#"
void die(void) { exit(1); }
int f(int p) { if (p < 0) die(); return p; }
int main(void) { return f(3); }
"#;
        // `die` stops reaching exit: the ErrorCall heuristic's input
        // changed, so every cached function must be invalidated even
        // though f's own text is untouched.
        let src1 = src0.replace("exit(1);", "return;");
        let db = ServeDb::new(Some(1), None);
        db.upsert("p", src0).unwrap();
        let out = db.upsert("p", &src1).unwrap();
        assert_eq!(
            out.work.funcs_reused, 0,
            "context change must invalidate all"
        );

        let cold = ServeDb::new(Some(1), None);
        cold.upsert("p", &src1).unwrap();
        assert_eq!(
            db.entry("p").unwrap().estimates_digest(),
            cold.entry("p").unwrap().estimates_digest()
        );
    }

    #[test]
    fn profile_runs_and_caches_in_memory() {
        let db = ServeDb::new(Some(1), None);
        db.upsert("p", TWO_FN).unwrap();
        let p1 = db.profile("p", b"").unwrap();
        let p2 = db.profile("p", b"").unwrap();
        assert!(
            Arc::ptr_eq(&p1, &p2),
            "second lookup must hit the memory layer"
        );
        assert!(p1.total_block_count() > 0);
    }

    #[test]
    fn unknown_program_is_an_error() {
        let db = ServeDb::new(Some(1), None);
        assert!(matches!(db.entry("nope"), Err(DbError::UnknownProgram(_))));
    }
}
