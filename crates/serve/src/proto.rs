//! Wire protocol for `sfe serve`: envelope parsing and response
//! encoding, built on the in-tree `obs::json` codec.
//!
//! One request per line, one response per line (NDJSON). Every request
//! carries the schema tag in the `sfe` field:
//!
//! ```text
//! {"sfe":"serve/v1","id":1,"method":"estimate","params":{"program":"p"}}
//! ```
//!
//! Responses echo the `id` and the schema tag and carry either a
//! `result` or an `error` object:
//!
//! ```text
//! {"id":1,"result":{...},"sfe":"serve/v1"}
//! {"error":{"code":"unknown-program","message":"..."},"id":1,"sfe":"serve/v1"}
//! ```
//!
//! Output is schema-stable by construction: `obs::json` objects are
//! `BTreeMap`s serialized with sorted keys and no whitespace, and
//! numbers have one canonical rendering — the protocol golden
//! transcripts assert responses byte-for-byte.
//!
//! Envelope validation happens in a fixed order, each failure with its
//! own error code: not parseable / not an object → `bad-request`;
//! `sfe` missing or not equal to [`crate::SCHEMA`] → `version-skew`;
//! `method` missing or not a string → `bad-request`. Method dispatch
//! (and `unknown-method`) belongs to [`crate::session`].

use crate::SCHEMA;
use obs::json::{parse, Value};
use std::collections::BTreeMap;

/// A validated request envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request id, echoed verbatim in the response ([`Value::Null`]
    /// when absent).
    pub id: Value,
    /// The method name.
    pub method: String,
    /// The `params` object ([`Value::Null`] when absent).
    pub params: Value,
}

impl Request {
    /// A string parameter.
    pub fn param_str(&self, key: &str) -> Option<&str> {
        self.params.get(key).and_then(Value::as_str)
    }

    /// A non-negative integer parameter.
    pub fn param_u64(&self, key: &str) -> Option<u64> {
        self.params
            .get(key)
            .and_then(Value::as_f64)
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }
}

/// Parses and validates one request line. On failure returns the
/// complete error-response line to send back (the envelope is damaged,
/// so there is nothing further to dispatch).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = match parse(line) {
        Ok(v @ Value::Obj(_)) => v,
        Ok(_) => {
            return Err(error_response(
                &Value::Null,
                "bad-request",
                "request must be a JSON object",
            ))
        }
        Err(e) => {
            return Err(error_response(
                &Value::Null,
                "bad-request",
                &format!("invalid JSON: {e}"),
            ))
        }
    };
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    match value.get("sfe").and_then(Value::as_str) {
        Some(tag) if tag == SCHEMA => {}
        Some(tag) => {
            return Err(error_response(
                &id,
                "version-skew",
                &format!("schema mismatch: client speaks {tag:?}, server speaks {SCHEMA:?}"),
            ))
        }
        None => {
            return Err(error_response(
                &id,
                "version-skew",
                &format!("missing \"sfe\" envelope field (expected {SCHEMA:?})"),
            ))
        }
    }
    let method = match value.get("method").and_then(Value::as_str) {
        Some(m) => m.to_string(),
        None => {
            return Err(error_response(
                &id,
                "bad-request",
                "missing \"method\" string field",
            ))
        }
    };
    let params = value.get("params").cloned().unwrap_or(Value::Null);
    Ok(Request { id, method, params })
}

/// Builds an object value from key/value pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// A `u64` as a JSON number (exact below 2^53; work counters and
/// revisions stay far under that).
pub fn num_u64(n: u64) -> Value {
    Value::Num(n as f64)
}

/// A 128-bit fingerprint as its canonical 32-digit hex string (JSON
/// numbers are doubles; hex keeps all bits).
pub fn fp_str(fp: u128) -> Value {
    Value::Str(format!("{fp:032x}"))
}

/// The success response line for `id`.
pub fn ok_response(id: &Value, result: Value) -> String {
    envelope(id, "result", result)
}

/// The error response line for `id`.
pub fn error_response(id: &Value, code: &str, message: &str) -> String {
    envelope(
        id,
        "error",
        obj(vec![
            ("code", Value::Str(code.to_string())),
            ("message", Value::Str(message.to_string())),
        ]),
    )
}

fn envelope(id: &Value, key: &str, body: Value) -> String {
    obj(vec![
        ("id", id.clone()),
        (key, body),
        ("sfe", Value::Str(SCHEMA.to_string())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_envelope_parses() {
        let r = parse_request(
            r#"{"sfe":"serve/v1","id":7,"method":"estimate","params":{"program":"p"}}"#,
        )
        .unwrap();
        assert_eq!(r.method, "estimate");
        assert_eq!(r.id, Value::Num(7.0));
        assert_eq!(r.param_str("program"), Some("p"));
    }

    #[test]
    fn garbage_is_bad_request_with_null_id() {
        let e = parse_request("{not json").unwrap_err();
        assert!(e.contains("\"code\":\"bad-request\""), "{e}");
        assert!(e.contains("\"id\":null"), "{e}");
    }

    #[test]
    fn wrong_schema_is_version_skew_with_echoed_id() {
        let e = parse_request(r#"{"sfe":"serve/v0","id":3,"method":"estimate"}"#).unwrap_err();
        assert!(e.contains("\"code\":\"version-skew\""), "{e}");
        assert!(e.contains("\"id\":3"), "{e}");
    }

    #[test]
    fn missing_method_is_bad_request() {
        let e = parse_request(r#"{"sfe":"serve/v1","id":4}"#).unwrap_err();
        assert!(e.contains("\"code\":\"bad-request\""), "{e}");
    }

    #[test]
    fn responses_have_sorted_stable_keys() {
        let line = ok_response(&Value::Num(1.0), obj(vec![("ok", Value::Bool(true))]));
        assert_eq!(line, r#"{"id":1,"result":{"ok":true},"sfe":"serve/v1"}"#);
    }
}
