//! 128-bit content fingerprints for the incremental database.
//!
//! Same dual-stream FNV-1a construction as the artifact cache's key
//! hash and the VM's `ir_fingerprint`: two independently-seeded 64-bit
//! FNV-1a streams over length-prefixed fields, concatenated. Stable by
//! construction across processes and runs — no std hasher internals.

/// Incremental dual-stream FNV-1a/128 hasher.
pub struct Fnv128 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Fnv128 {
            a: 0xcbf2_9ce4_8422_2325,
            // A second, unrelated offset basis keeps the streams
            // independent (same idiom as the cache key hash).
            b: 0x6c62_272e_07bb_0142,
        }
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Length-prefixed field update, so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn field(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// Length-prefixed string field.
    pub fn field_str(&mut self, s: &str) {
        self.field(s.as_bytes());
    }

    /// A `u64` field (fixed width, no prefix needed).
    pub fn word(&mut self, w: u64) {
        self.update(&w.to_le_bytes());
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Convenience: fingerprint of one string.
pub fn fp_str(s: &str) -> u128 {
    let mut h = Fnv128::new();
    h.field_str(s);
    h.finish()
}

/// Folds an `f64` slice into a hasher, bit-exactly.
pub fn fold_f64s(h: &mut Fnv128, xs: &[f64]) {
    h.word(xs.len() as u64);
    for &x in xs {
        h.word(x.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_boundaries_matter() {
        let mut a = Fnv128::new();
        a.field_str("ab");
        a.field_str("c");
        let mut b = Fnv128::new();
        b.field_str("a");
        b.field_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stable_across_calls() {
        assert_eq!(fp_str("hello"), fp_str("hello"));
        assert_ne!(fp_str("hello"), fp_str("hellp"));
    }
}
