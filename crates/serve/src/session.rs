//! Request dispatch: one [`Session`] per client connection, mapping
//! protocol methods onto [`ServeDb`] operations.
//!
//! Methods (all under the [`crate::SCHEMA`] envelope):
//!
//! | method     | params                                        | result |
//! |------------|-----------------------------------------------|--------|
//! | `load`     | `program`, `source`                           | revision, funcs, blocks, fingerprint, work counters |
//! | `update`   | `program`, `source`                           | same as `load` (alias; the DB upserts either way) |
//! | `estimate` | `program`, `estimator?`, `inter?`, `function?`| per-function block frequencies + invocation estimates |
//! | `profile`  | `program`, `input?`                           | per-function call counts and costs from a (cached) VM run |
//! | `reuse`    | `program`                                     | predicted per-object reuse-distance histograms |
//! | `score`    | `program`                                     | paper score tables composed from materialized estimates |
//! | `list`     | —                                             | loaded program names |
//! | `shutdown` | —                                             | `{"ok":true}`; the server drains and exits |
//!
//! The session is stateless apart from the shared database: responses
//! depend only on the database contents, never on connection history,
//! which is what makes the storm driver's cross-`--jobs` determinism
//! check meaningful.

use crate::db::{DbError, ServeDb, WorkCounters, INTRA_ALL};
use crate::proto::{error_response, fp_str, num_u64, obj, ok_response, parse_request, Request};
use estimators::inter::InterEstimator;
use estimators::intra::IntraEstimator;
use obs::json::Value;
use std::sync::Arc;

/// One client's view of the shared database.
pub struct Session {
    db: Arc<ServeDb>,
}

/// The result of handling one request line.
pub struct Outcome {
    /// The response line to send back (no trailing newline).
    pub response: String,
    /// Whether the client asked the server to shut down.
    pub shutdown: bool,
}

impl Session {
    /// A session over the shared database.
    pub fn new(db: Arc<ServeDb>) -> Session {
        Session { db }
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<ServeDb> {
        &self.db
    }

    /// Handles one request line, producing exactly one response line.
    pub fn handle(&self, line: &str) -> Outcome {
        let req = match parse_request(line) {
            Ok(r) => r,
            Err(response) => {
                return Outcome {
                    response,
                    shutdown: false,
                }
            }
        };
        let mut shutdown = false;
        let response = match req.method.as_str() {
            "load" | "update" => self.upsert(&req),
            "estimate" => self.estimate(&req),
            "profile" => self.profile(&req),
            "reuse" => self.reuse(&req),
            "score" => self.score(&req),
            "list" => self.list(&req),
            "shutdown" => {
                shutdown = true;
                Ok(obj(vec![("ok", Value::Bool(true))]))
            }
            other => Err(ErrorShape::new(
                "unknown-method",
                format!("unknown method: {other}"),
            )),
        };
        let response = match response {
            Ok(result) => ok_response(&req.id, result),
            Err(e) => error_response(&req.id, e.code, &e.message),
        };
        Outcome { response, shutdown }
    }
}

struct ErrorShape {
    code: &'static str,
    message: String,
}

impl ErrorShape {
    fn new(code: &'static str, message: String) -> ErrorShape {
        ErrorShape { code, message }
    }

    fn missing(param: &str) -> ErrorShape {
        ErrorShape::new("bad-request", format!("missing {param:?} parameter"))
    }
}

impl From<DbError> for ErrorShape {
    fn from(e: DbError) -> ErrorShape {
        ErrorShape::new(e.code(), e.message())
    }
}

type MethodResult = Result<Value, ErrorShape>;

impl Session {
    fn upsert(&self, req: &Request) -> MethodResult {
        let program = req
            .param_str("program")
            .ok_or_else(|| ErrorShape::missing("program"))?;
        let source = req
            .param_str("source")
            .ok_or_else(|| ErrorShape::missing("source"))?;
        let out = self.db.upsert(program, source)?;
        Ok(obj(vec![
            ("blocks", num_u64(out.blocks as u64)),
            ("fingerprint", fp_str(out.fingerprint)),
            ("funcs", num_u64(out.funcs as u64)),
            ("program", Value::Str(program.to_string())),
            ("revision", num_u64(out.revision)),
            ("work", work_value(&out.work)),
        ]))
    }

    fn estimate(&self, req: &Request) -> MethodResult {
        let program = req
            .param_str("program")
            .ok_or_else(|| ErrorShape::missing("program"))?;
        let intra = parse_intra(req.param_str("estimator").unwrap_or("smart"))?;
        let inter = parse_inter(req.param_str("inter").unwrap_or("markov"))?;
        let entry = self.db.entry(program)?;
        let only = match req.param_str("function") {
            Some(name) => Some(
                entry
                    .program
                    .module
                    .function_id(name)
                    .filter(|&f| entry.program.cfg_opt(f).is_some())
                    .ok_or_else(|| {
                        DbError::UnknownFunction(program.to_string(), name.to_string())
                    })?,
            ),
            None => None,
        };
        let ia = entry.intra(intra);
        let ie = entry.inter(inter);
        // Defined functions in name order, so the response is a
        // deterministic function of the database state alone.
        let mut funcs: Vec<&minic::sema::Function> = entry
            .program
            .module
            .functions
            .iter()
            .filter(|f| f.is_defined() && only.is_none_or(|o| f.id == o))
            .collect();
        funcs.sort_by(|a, b| a.name.cmp(&b.name));
        let funcs: Vec<Value> = funcs
            .into_iter()
            .map(|f| {
                let blocks: Vec<Value> =
                    ia.blocks_of(f.id).iter().map(|&x| Value::Num(x)).collect();
                obj(vec![
                    ("blocks", Value::Arr(blocks)),
                    ("invocations", Value::Num(ie.func_freqs[f.id.0 as usize])),
                    ("name", Value::Str(f.name.clone())),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("estimator", Value::Str(intra_name(intra).to_string())),
            ("funcs", Value::Arr(funcs)),
            ("inter", Value::Str(inter.name().to_string())),
            ("program", Value::Str(program.to_string())),
            ("revision", num_u64(entry.revision)),
        ]))
    }

    fn profile(&self, req: &Request) -> MethodResult {
        let program = req
            .param_str("program")
            .ok_or_else(|| ErrorShape::missing("program"))?;
        let input = req.param_str("input").unwrap_or("");
        let profile = self.db.profile(program, input.as_bytes())?;
        // A one-shot pipeline run flushes the cache's batched writes on
        // drop; a resident service must do it at request boundaries.
        self.db.flush_cache();
        let entry = self.db.entry(program)?;
        let mut funcs: Vec<&minic::sema::Function> = entry
            .program
            .module
            .functions
            .iter()
            .filter(|f| f.is_defined())
            .collect();
        funcs.sort_by(|a, b| a.name.cmp(&b.name));
        let funcs: Vec<Value> = funcs
            .into_iter()
            .map(|f| {
                obj(vec![
                    ("calls", num_u64(profile.calls_of(f.id))),
                    ("cost", num_u64(profile.func_cost[f.id.0 as usize])),
                    ("name", Value::Str(f.name.clone())),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("funcs", Value::Arr(funcs)),
            ("program", Value::Str(program.to_string())),
            ("total_blocks", num_u64(profile.total_block_count())),
            ("total_branches", num_u64(profile.total_branches())),
        ]))
    }

    fn reuse(&self, req: &Request) -> MethodResult {
        let program = req
            .param_str("program")
            .ok_or_else(|| ErrorShape::missing("program"))?;
        let entry = self.db.entry(program)?;
        let est = reuse::estimate(&entry.program);
        let objects: Vec<Value> = est
            .names
            .iter()
            .zip(&est.hists)
            .map(|(name, hist)| {
                let bins: Vec<Value> = hist.iter().map(|&v| Value::Num(v)).collect();
                obj(vec![
                    ("hist", Value::Arr(bins)),
                    ("name", Value::Str(name.clone())),
                    ("total", Value::Num(hist.iter().sum())),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("bins", num_u64(reuse::BINS as u64)),
            ("objects", Value::Arr(objects)),
            ("program", Value::Str(program.to_string())),
            ("revision", num_u64(entry.revision)),
            ("total", Value::Num(est.total())),
        ]))
    }

    fn score(&self, req: &Request) -> MethodResult {
        let program = req
            .param_str("program")
            .ok_or_else(|| ErrorShape::missing("program"))?;
        let scores = self.db.score(program)?;
        let intra = obj(INTRA_ALL
            .iter()
            .enumerate()
            .map(|(i, &w)| (intra_name(w), Value::Num(scores.intra[i])))
            .collect());
        let invocation = obj(InterEstimator::ALL
            .iter()
            .enumerate()
            .map(|(i, &w)| (w.name(), Value::Num(scores.invocation[i])))
            .collect());
        let callsite = obj(vec![
            ("direct", Value::Num(scores.callsite[0])),
            ("markov", Value::Num(scores.callsite[1])),
        ]);
        Ok(obj(vec![
            ("callsite", callsite),
            ("intra", intra),
            ("invocation", invocation),
            ("program", Value::Str(program.to_string())),
        ]))
    }

    fn list(&self, _req: &Request) -> MethodResult {
        let programs: Vec<Value> = self
            .db
            .program_names()
            .into_iter()
            .map(Value::Str)
            .collect();
        Ok(obj(vec![("programs", Value::Arr(programs))]))
    }
}

fn work_value(w: &WorkCounters) -> Value {
    obj(vec![
        ("blocks_lowered", num_u64(w.blocks_lowered)),
        ("blocks_reused", num_u64(w.blocks_reused)),
        ("blocks_solved", num_u64(w.blocks_solved)),
        ("funcs_lowered", num_u64(w.funcs_lowered)),
        ("funcs_reused", num_u64(w.funcs_reused)),
        ("inter_units", num_u64(w.inter_units)),
        ("solves_reused", num_u64(w.solves_reused)),
        ("total_units", num_u64(w.total_units())),
    ])
}

fn intra_name(which: IntraEstimator) -> &'static str {
    match which {
        IntraEstimator::Loop => "loop",
        IntraEstimator::Smart => "smart",
        IntraEstimator::Markov => "markov",
    }
}

fn parse_intra(name: &str) -> Result<IntraEstimator, ErrorShape> {
    match name {
        "loop" => Ok(IntraEstimator::Loop),
        "smart" => Ok(IntraEstimator::Smart),
        "markov" => Ok(IntraEstimator::Markov),
        other => Err(ErrorShape::new(
            "bad-request",
            format!("unknown estimator {other:?} (expected loop, smart, or markov)"),
        )),
    }
}

fn parse_inter(name: &str) -> Result<InterEstimator, ErrorShape> {
    InterEstimator::ALL
        .iter()
        .copied()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            ErrorShape::new(
                "bad-request",
                format!(
                    "unknown inter estimator {name:?} (expected call-site, direct, all-rec, all-rec2, or markov)"
                ),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int main(void) { int i, s = 0; for (i = 0; i < 8; i++) s += i; return s; }";

    fn session() -> Session {
        Session::new(Arc::new(ServeDb::new(Some(1), None)))
    }

    fn load_req(name: &str, src: &str) -> String {
        let src = src.replace('"', "\\\"").replace('\n', "\\n");
        format!(
            r#"{{"sfe":"serve/v1","id":1,"method":"load","params":{{"program":"{name}","source":"{src}"}}}}"#
        )
    }

    #[test]
    fn load_then_estimate_roundtrip() {
        let s = session();
        let out = s.handle(&load_req("p", SRC));
        assert!(out.response.contains("\"revision\":1"), "{}", out.response);
        let out =
            s.handle(r#"{"sfe":"serve/v1","id":2,"method":"estimate","params":{"program":"p"}}"#);
        assert!(
            out.response.contains("\"estimator\":\"smart\""),
            "{}",
            out.response
        );
        assert!(
            out.response.contains("\"name\":\"main\""),
            "{}",
            out.response
        );
        assert!(!out.shutdown);
    }

    #[test]
    fn unknown_method_has_its_own_code() {
        let s = session();
        let out = s.handle(r#"{"sfe":"serve/v1","id":9,"method":"frobnicate"}"#);
        assert!(
            out.response.contains("\"code\":\"unknown-method\""),
            "{}",
            out.response
        );
    }

    #[test]
    fn unknown_function_filter_is_reported() {
        let s = session();
        s.handle(&load_req("p", SRC));
        let out = s.handle(
            r#"{"sfe":"serve/v1","id":3,"method":"estimate","params":{"program":"p","function":"nope"}}"#,
        );
        assert!(
            out.response.contains("\"code\":\"unknown-function\""),
            "{}",
            out.response
        );
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let s = session();
        let out = s.handle(r#"{"sfe":"serve/v1","id":4,"method":"shutdown"}"#);
        assert!(out.shutdown);
        assert!(out.response.contains("\"ok\":true"), "{}", out.response);
    }

    #[test]
    fn responses_are_replay_stable() {
        // The same request against the same database state must yield
        // the same bytes — the property the protocol goldens pin.
        let s1 = session();
        let s2 = session();
        let req = load_req("p", SRC);
        assert_eq!(s1.handle(&req).response, s2.handle(&req).response);
        let est = r#"{"sfe":"serve/v1","id":2,"method":"estimate","params":{"program":"p","estimator":"markov"}}"#;
        assert_eq!(s1.handle(est).response, s2.handle(est).response);
    }
}
