//! Deterministic single-function source edits, for the incremental
//! differential suite and the storm driver's update traffic.
//!
//! Two flavors:
//!
//! - [`mutate`] rewrites one expression inside one function of a
//!   fuzzgen [`Prog`] (semantics-preserving *totality*: fuzzgen bodies
//!   bound every loop and recursion with guard counters and fuel, so
//!   changing a condition's value never makes a program diverge);
//! - [`edit_function_source`] inserts a no-op statement at the top of
//!   the n-th defined function of arbitrary MiniC source (suite
//!   programs), using the parser's own span for the body brace — no
//!   textual pattern matching.
//!
//! Both are driven by a caller-owned xorshift state, so a (seed,
//! client) pair replays the identical edit sequence on every run — the
//! property the storm determinism test and the differential suite key
//! off.

use fuzzgen::gen::{Prog, Stmt};
use minic::ast::Item;

/// One step of the xorshift64 generator (never returns 0 for a nonzero
/// state; callers seed with a nonzero constant).
pub fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Rewrites one expression in one function of `prog`, chosen by `rng`.
/// Returns `false` when the chosen program has no editable expression
/// (rare; callers skip the update in that case).
pub fn mutate(prog: &mut Prog, rng: &mut u64) -> bool {
    let n_funcs = prog.funcs.len();
    if n_funcs == 0 {
        return false;
    }
    let start = (xorshift(rng) % n_funcs as u64) as usize;
    let op = xorshift(rng);
    let pick = xorshift(rng);
    for off in 0..n_funcs {
        let f = &mut prog.funcs[(start + off) % n_funcs];
        let total = count_exprs(&mut f.body);
        if total == 0 {
            continue;
        }
        let mut k = (pick % total as u64) as usize;
        return mutate_kth(&mut f.body, &mut k, op);
    }
    false
}

/// All generated expressions are int-typed (conditions, scrutinees,
/// return values), so int-preserving wrappers keep the program
/// compiling; the guard counters keep it terminating.
fn apply(e: &mut String, op: u64) {
    *e = match op % 3 {
        0 => format!("({e}) + 1"),
        1 => format!("!({e})"),
        _ => format!("({e}) | 1"),
    };
}

fn count_exprs(stmts: &mut Vec<Stmt>) -> usize {
    let mut n = 0;
    for s in stmts {
        n += s.exprs_mut().len();
        for v in s.child_vecs_mut() {
            n += count_exprs(v);
        }
    }
    n
}

fn mutate_kth(stmts: &mut Vec<Stmt>, k: &mut usize, op: u64) -> bool {
    for s in stmts {
        for e in s.exprs_mut() {
            if *k == 0 {
                apply(e, op);
                return true;
            }
            *k -= 1;
        }
        for v in s.child_vecs_mut() {
            if mutate_kth(v, k, op) {
                return true;
            }
        }
    }
    false
}

/// Inserts a no-op statement (`0;`) at the top of the `ordinal`-th
/// *defined* function of `src`. Returns `None` if `src` does not parse
/// or has no such function. The edit is intentionally minimal: it
/// changes exactly one function's content fingerprint while leaving
/// every other declaration's text and ordinal untouched.
pub fn edit_function_source(src: &str, ordinal: usize) -> Option<String> {
    let unit = minic::parser::parse(src).ok()?;
    let body = unit
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Function(fd) => fd.body.as_ref(),
            _ => None,
        })
        .nth(ordinal)?;
    // The body is a block statement; its span starts at the `{`.
    let brace = body.span.lo as usize;
    if src.as_bytes().get(brace) != Some(&b'{') {
        return None;
    }
    let mut out = String::with_capacity(src.len() + 3);
    out.push_str(&src[..brace + 1]);
    out.push_str(" 0;");
    out.push_str(&src[brace + 1..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutate_is_deterministic_and_compiles() {
        for seed in 0..20u64 {
            let mut a = fuzzgen::gen::generate(seed);
            let mut b = fuzzgen::gen::generate(seed);
            let mut ra = (0x9e37_79b9_7f4a_7c15 ^ seed.wrapping_mul(0x1234_5678_9abc_def1)) | 1;
            let mut rb = ra;
            let ma = mutate(&mut a, &mut ra);
            let mb = mutate(&mut b, &mut rb);
            assert_eq!(ma, mb);
            assert_eq!(a.render(), b.render(), "seed {seed}");
            if ma {
                let src = a.render();
                let unit = minic::parser::parse(&src).expect("mutant parses");
                minic::sema::analyze(&unit).expect("mutant analyzes");
            }
        }
    }

    #[test]
    fn source_edit_touches_one_function() {
        let src = "int f(int x) { return x + 1; }\nint main(void) { return f(2); }\n";
        let edited = edit_function_source(src, 0).unwrap();
        assert!(
            edited.contains("int f(int x) { 0; return x + 1; }"),
            "{edited}"
        );
        assert!(
            edited.contains("int main(void) { return f(2); }"),
            "{edited}"
        );
        let unit = minic::parser::parse(&edited).expect("edited source parses");
        minic::sema::analyze(&unit).expect("edited source analyzes");
        assert!(edit_function_source(src, 2).is_none());
    }
}
