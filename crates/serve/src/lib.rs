//! # serve — resident estimator service with incremental recomputation
//!
//! The batch pipeline re-parses, re-lowers, and re-solves the world on
//! every invocation; this crate keeps it resident. [`db::ServeDb`] is a
//! dependency-tracking incremental database: each top-level declaration
//! is fingerprinted over its canonical pretty-printed text (plus its
//! id-namespace base — see `minic::ast::DECL_ID_STRIDE`), and derived
//! artifacts (CFG → flow solve → intra estimates → inter estimates) are
//! keyed by that fingerprint together with a module-context fingerprint
//! covering everything cross-function the derivation reads (struct
//! layouts, globals, signatures, the error-call set). An `update` that
//! edits one function re-lowers and re-solves *only* that function;
//! every other function's CFG and block frequencies are reused from the
//! in-memory layer, with the handful of module-global ids embedded in a
//! CFG (branch ids, switch ids, string-table indices) remapped
//! positionally into the new module's id space.
//!
//! On top of the database sit:
//!
//! - [`proto`]/[`session`]: a versioned, schema-stable JSON-RPC-style
//!   protocol (one request and one response per line, envelope tagged
//!   [`SCHEMA`]) with `load`/`update`/`estimate`/`profile`/`score`/
//!   `shutdown` methods, encoded with the in-tree `obs::json` codec;
//! - [`server`]: the `sfe serve` daemon loop over stdin/stdout or a
//!   local TCP socket, one session per connection, requests fanning
//!   out per-function on the PR-5 work-stealing pool;
//! - [`storm`]: the `stormgen` synthetic-client driver — N concurrent
//!   clients replaying a seed-deterministic mixed read/update workload,
//!   reporting sustained q/s, p50/p99 latency, and the incremental
//!   work ratio;
//! - [`edits`]: deterministic single-function mutations for fuzzgen
//!   programs and suite sources, used by the storm driver and the
//!   incremental-correctness differential suite.

#![warn(missing_docs)]

pub mod db;
pub mod edits;
pub mod fp;
pub mod proto;
pub mod server;
pub mod session;
pub mod storm;

/// The protocol schema tag. Every request must carry it in the `sfe`
/// envelope field and every response echoes it; a mismatch is rejected
/// with a `version-skew` error before the method is even looked at.
/// Bump only together with regenerating the protocol goldens — the
/// replay test fails until they agree.
pub const SCHEMA: &str = "serve/v1";
