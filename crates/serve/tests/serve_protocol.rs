//! Protocol golden transcripts.
//!
//! `goldens/serve_protocol.txt` holds a complete session — every RPC
//! method plus every error shape — as `>>> request` / `<<< response`
//! line pairs. The test replays the requests through a fresh session
//! and asserts each response byte-for-byte. Because every response
//! embeds the schema tag, bumping `serve::SCHEMA` fails this test
//! until the goldens are regenerated — which is the point: a schema
//! change must be a deliberate, reviewed diff.
//!
//! Regenerate with:
//!
//! ```text
//! SFE_UPDATE_GOLDENS=1 cargo test -p serve --test serve_protocol
//! ```

use serve::db::ServeDb;
use serve::session::Session;
use std::path::PathBuf;
use std::sync::Arc;

const SRC: &str = "int add(int a, int b) { return a + b; } int main(void) { int i, s = 0; for (i = 0; i < 6; i++) s = add(s, i); return s; }";
const SRC2: &str = "int add(int a, int b) { return a + b + 1; } int main(void) { int i, s = 0; for (i = 0; i < 6; i++) s = add(s, i); return s; }";
const SRC_REUSE: &str = "int g[8]; int main(void) { int i, j, s = 0; for (j = 0; j < 4; j++) for (i = 0; i < 8; i++) s += g[i]; return s; }";

/// The canonical transcript request list. Each entry exercises either
/// one method's happy path or one error shape.
fn requests() -> Vec<String> {
    let load = |id: u64, method: &str, src: &str| {
        format!(
            r#"{{"sfe":"serve/v1","id":{id},"method":"{method}","params":{{"program":"demo","source":"{src}"}}}}"#
        )
    };
    let load_as = |id: u64, program: &str, src: &str| {
        format!(
            r#"{{"sfe":"serve/v1","id":{id},"method":"load","params":{{"program":"{program}","source":"{src}"}}}}"#
        )
    };
    vec![
        // Methods.
        load(1, "load", SRC),
        r#"{"sfe":"serve/v1","id":2,"method":"estimate","params":{"program":"demo"}}"#.into(),
        r#"{"sfe":"serve/v1","id":3,"method":"estimate","params":{"estimator":"loop","inter":"call-site","program":"demo"}}"#.into(),
        r#"{"sfe":"serve/v1","id":4,"method":"estimate","params":{"estimator":"markov","function":"add","program":"demo"}}"#.into(),
        r#"{"sfe":"serve/v1","id":5,"method":"profile","params":{"program":"demo"}}"#.into(),
        r#"{"sfe":"serve/v1","id":6,"method":"score","params":{"program":"demo"}}"#.into(),
        load(7, "update", SRC2),
        r#"{"sfe":"serve/v1","id":8,"method":"list"}"#.into(),
        // Error shapes.
        r#"{not json"#.into(),
        r#"[1,2,3]"#.into(),
        r#"{"id":20,"method":"estimate"}"#.into(),
        r#"{"sfe":"serve/v0","id":21,"method":"estimate"}"#.into(),
        r#"{"sfe":"serve/v1","id":22}"#.into(),
        r#"{"sfe":"serve/v1","id":23,"method":"frobnicate"}"#.into(),
        r#"{"sfe":"serve/v1","id":24,"method":"estimate"}"#.into(),
        r#"{"sfe":"serve/v1","id":25,"method":"estimate","params":{"program":"ghost"}}"#.into(),
        r#"{"sfe":"serve/v1","id":26,"method":"estimate","params":{"function":"ghost","program":"demo"}}"#.into(),
        r#"{"sfe":"serve/v1","id":27,"method":"estimate","params":{"estimator":"psychic","program":"demo"}}"#.into(),
        r#"{"sfe":"serve/v1","id":28,"method":"estimate","params":{"inter":"psychic","program":"demo"}}"#.into(),
        r#"{"sfe":"serve/v1","id":29,"method":"load","params":{"program":"demo"}}"#.into(),
        r#"{"sfe":"serve/v1","id":30,"method":"load","params":{"program":"bad","source":"int main(void) { return x; }"}}"#.into(),
        r#"{"sfe":"serve/v1","id":31,"method":"profile","params":{"program":"ghost"}}"#.into(),
        // Reuse estimates (an array with an actual reuse loop, so the
        // histograms are non-trivial) plus the method's error shapes.
        load_as(33, "arr", SRC_REUSE),
        r#"{"sfe":"serve/v1","id":34,"method":"reuse","params":{"program":"arr"}}"#.into(),
        r#"{"sfe":"serve/v1","id":35,"method":"reuse"}"#.into(),
        r#"{"sfe":"serve/v1","id":36,"method":"reuse","params":{"program":"ghost"}}"#.into(),
        // Shutdown last: it ends the session.
        r#"{"sfe":"serve/v1","id":32,"method":"shutdown"}"#.into(),
    ]
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/serve_protocol.txt")
}

fn render_transcript() -> String {
    let session = Session::new(Arc::new(ServeDb::new(Some(1), None)));
    let mut out = String::from(
        "# Protocol golden transcript for serve/v1. Regenerate with\n\
         # SFE_UPDATE_GOLDENS=1 cargo test -p serve --test serve_protocol\n",
    );
    for req in requests() {
        let outcome = session.handle(&req);
        out.push_str(">>> ");
        out.push_str(&req);
        out.push('\n');
        out.push_str("<<< ");
        out.push_str(&outcome.response);
        out.push('\n');
    }
    out
}

#[test]
fn protocol_transcript_matches_golden() {
    let rendered = render_transcript();
    let path = golden_path();
    if std::env::var_os("SFE_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with SFE_UPDATE_GOLDENS=1",
            path.display()
        )
    });
    if rendered != golden {
        // Pinpoint the first diverging pair for a readable failure.
        for (a, b) in rendered.lines().zip(golden.lines()) {
            assert_eq!(a, b, "transcript diverges from golden; regenerate deliberately with SFE_UPDATE_GOLDENS=1 if the change is intended");
        }
        panic!(
            "transcript length changed: {} vs {} lines",
            rendered.lines().count(),
            golden.lines().count()
        );
    }
}

#[test]
fn golden_covers_every_method_and_error_code() {
    // Guard against the transcript drifting out of coverage: every
    // dispatchable method and every protocol error code must appear.
    // (Checked on the freshly rendered transcript in regen mode — the
    // golden file may not exist yet then.)
    let text = if std::env::var_os("SFE_UPDATE_GOLDENS").is_some() {
        render_transcript()
    } else {
        std::fs::read_to_string(golden_path()).expect("golden present")
    };
    for method in [
        "load", "update", "estimate", "profile", "reuse", "score", "list", "shutdown",
    ] {
        assert!(
            text.contains(&format!("\"method\":\"{method}\"")),
            "golden lacks method {method}"
        );
    }
    for code in [
        "bad-request",
        "version-skew",
        "unknown-method",
        "unknown-program",
        "unknown-function",
        "compile-error",
    ] {
        assert!(
            text.contains(&format!("\"code\":\"{code}\"")),
            "golden lacks error code {code}"
        );
    }
}
