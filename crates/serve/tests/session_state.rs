//! Cross-request state regression tests for long-lived sessions.
//!
//! The batch pipeline's lifetimes hid two classes of bug that a
//! resident service exposes:
//!
//! - the cache's batched writer only drains on `Drop` or when a batch
//!   fills — a daemon that never drops its `Cache` would keep every
//!   profile write invisible to other processes (and lose them on a
//!   crash). The service must flush at request boundaries.
//! - the VM's `ExecScratch` retains its high-water capacity forever —
//!   fine for a one-shot run, unbounded for a daemon that profiles one
//!   pathological program among thousands of small ones. The service's
//!   scratch pool must shed outlier capacity.
//!
//! Plus the basic residency property: concurrent profile requests
//! against a shared database produce the same bytes as serial ones.

use cache::Cache;
use profiler::{ExecScratch, RunConfig};
use serve::db::ServeDb;
use serve::session::Session;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfe-serve-itest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SRC: &str =
    "int main(void) { int i, s = 0; for (i = 0; i < 50; i++) s += i; return s & 255; }";

#[test]
fn profile_requests_flush_cache_to_disk() {
    let dir = temp_dir("flush");
    let db = Arc::new(ServeDb::new(Some(1), Some(Cache::open(&dir).unwrap())));
    let session = Session::new(Arc::clone(&db));
    session.handle(&format!(
        r#"{{"sfe":"serve/v1","id":1,"method":"load","params":{{"program":"p","source":"{SRC}"}}}}"#
    ));
    let out =
        session.handle(r#"{"sfe":"serve/v1","id":2,"method":"profile","params":{"program":"p"}}"#);
    assert!(out.response.contains("\"result\""), "{}", out.response);

    // The daemon is still alive (db not dropped) — yet a *separate*
    // cache handle on the same directory must already see the entry.
    let other = Cache::open(&dir).unwrap();
    assert!(
        other.entry_count() > 0,
        "profile write not flushed to disk while the service is resident"
    );

    // And a fresh database over that directory must hit it: profile
    // responses are byte-identical warm (VM) vs cold (cache load).
    let db2 = Arc::new(ServeDb::new(Some(1), Some(other)));
    let session2 = Session::new(db2);
    session2.handle(&format!(
        r#"{{"sfe":"serve/v1","id":1,"method":"load","params":{{"program":"p","source":"{SRC}"}}}}"#
    ));
    let out2 =
        session2.handle(r#"{"sfe":"serve/v1","id":2,"method":"profile","params":{"program":"p"}}"#);
    assert_eq!(out.response, out2.response);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scratch_trim_sheds_outlier_capacity() {
    // Deep recursion grows the frame and data stacks; trim must bring
    // oversized buffers back down while leaving modest ones be.
    let src = r#"
int f(int n) {
    if (n <= 0) return 0;
    return f(n - 1) + 1;
}
int main(void) {
    return f(5000) & 255;
}
"#;
    let unit = minic::parser::parse(src).unwrap();
    let module = minic::sema::analyze(&unit).unwrap();
    let program = flowgraph::build_program(&module);
    let compiled = profiler::compile(&program);
    let mut scratch = ExecScratch::default();
    compiled
        .execute_in(&RunConfig::default(), &mut scratch)
        .unwrap();
    let grown = scratch.high_water();
    assert!(
        grown > 1024,
        "expected the run to grow the scratch, got {grown}"
    );

    scratch.trim(1024);
    assert!(
        scratch.high_water() <= 1024,
        "trim left capacity {} above the bound",
        scratch.high_water()
    );

    // Trimmed scratch still executes correctly.
    let out = compiled
        .execute_in(&RunConfig::default(), &mut scratch)
        .unwrap();
    assert_eq!(out.exit_code, 5000 & 255);

    // Trim is a no-op for buffers under the bound.
    let mut small = ExecScratch::default();
    compiled
        .execute_in(&RunConfig::default(), &mut small)
        .unwrap();
    let before = small.high_water();
    small.trim(usize::MAX);
    assert_eq!(small.high_water(), before);
}

#[test]
fn concurrent_profiles_match_serial() {
    let programs: Vec<(String, String)> = (0..6)
        .map(|i| (format!("p{i}"), fuzzgen::gen::generate(1000 + i).render()))
        .collect();

    let serial_db = Arc::new(ServeDb::new(Some(1), None));
    let serial = Session::new(Arc::clone(&serial_db));
    let mut expected = Vec::new();
    for (name, src) in &programs {
        let src_esc = src
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        serial.handle(&format!(
            r#"{{"sfe":"serve/v1","id":1,"method":"load","params":{{"program":"{name}","source":"{src_esc}"}}}}"#
        ));
        expected.push(
            serial
                .handle(&format!(
                    r#"{{"sfe":"serve/v1","id":2,"method":"profile","params":{{"program":"{name}"}}}}"#
                ))
                .response,
        );
    }

    let db = Arc::new(ServeDb::new(Some(4), None));
    let setup = Session::new(Arc::clone(&db));
    for (name, src) in &programs {
        let src_esc = src
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        setup.handle(&format!(
            r#"{{"sfe":"serve/v1","id":1,"method":"load","params":{{"program":"{name}","source":"{src_esc}"}}}}"#
        ));
    }
    let got: Vec<String> = thread::scope(|s| {
        let handles: Vec<_> = programs
            .iter()
            .map(|(name, _)| {
                let session = Session::new(Arc::clone(&db));
                let req = format!(
                    r#"{{"sfe":"serve/v1","id":2,"method":"profile","params":{{"program":"{name}"}}}}"#
                );
                s.spawn(move || session.handle(&req).response)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(got, expected);
}
