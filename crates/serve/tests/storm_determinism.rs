//! Storm determinism and residency.
//!
//! The storm workload is a pure function of its config, so the
//! response-stream digest and the final database state digest must be
//! identical at `--jobs 1`, `2`, and `4` — any divergence means a
//! worker-count-dependent computation leaked into an estimate or a
//! response. The soak test (ignored by default; CI runs it explicitly)
//! drives a resident database for ~30 seconds and asserts the
//! process's RSS plateaus rather than growing monotonically.

use serve::db::ServeDb;
use serve::storm::{run_in_process, StormConfig};
use std::sync::Arc;

#[test]
fn storm_digests_identical_at_jobs_1_2_4() {
    let config = StormConfig {
        clients: 4,
        requests: 60,
        seed: 42,
        update_pct: 25,
    };
    let mut reports = Vec::new();
    for jobs in [1usize, 2, 4] {
        let db = Arc::new(ServeDb::new(Some(jobs), None));
        let report = run_in_process(&config, &db);
        assert_eq!(report.errors, 0, "jobs={jobs}: {report:?}");
        assert_eq!(report.total_requests, 4 * 61);
        reports.push((jobs, report));
    }
    let (_, first) = &reports[0];
    for (jobs, report) in &reports[1..] {
        assert_eq!(
            report.digest, first.digest,
            "response digest diverges at jobs={jobs}"
        );
        assert_eq!(
            report.db_digest, first.db_digest,
            "database state digest diverges at jobs={jobs}"
        );
        // The *amount* of work must match too: reuse decisions are
        // driven by fingerprints, never by scheduling.
        assert_eq!(
            report.work, first.work,
            "work counters diverge at jobs={jobs}"
        );
    }
}

#[test]
fn storm_digest_is_seed_sensitive() {
    let db = Arc::new(ServeDb::new(Some(2), None));
    let a = run_in_process(
        &StormConfig {
            clients: 2,
            requests: 10,
            seed: 7,
            update_pct: 20,
        },
        &db,
    );
    let db2 = Arc::new(ServeDb::new(Some(2), None));
    let b = run_in_process(
        &StormConfig {
            clients: 2,
            requests: 10,
            seed: 8,
            update_pct: 20,
        },
        &db2,
    );
    assert_ne!(a.digest, b.digest, "different seeds must differ");
}

/// ~30-second soak: repeated storm rounds against one resident
/// database must not grow RSS monotonically — scratch buffers are
/// trimmed, superseded revisions are dropped, and per-program profile
/// maps are bounded by the workload's input set.
///
/// Ignored by default (long); CI runs it with `--ignored`.
#[test]
#[ignore = "30s soak; run explicitly (cargo test -p serve -- --ignored)"]
fn soak_rss_plateaus() {
    use std::time::{Duration, Instant};

    let db = Arc::new(ServeDb::new(Some(2), None));
    let config = StormConfig {
        clients: 2,
        requests: 40,
        seed: 9,
        update_pct: 30,
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut samples: Vec<u64> = Vec::new();
    let mut rounds = 0u64;
    while Instant::now() < deadline {
        let report = run_in_process(&config, &db);
        assert_eq!(report.errors, 0);
        rounds += 1;
        if let Some(rss) = obs::current_rss_bytes() {
            samples.push(rss);
        }
    }
    assert!(rounds >= 3, "soak managed only {rounds} rounds");
    assert!(samples.len() >= 3, "no RSS samples — /proc unavailable?");

    // Steady state must not sit meaningfully above warm-up: compare
    // the max of the last third against the max of the first third
    // (after round 1, allocator pools and caches are primed). Allow
    // 15% + 8 MiB of allocator noise.
    let third = samples.len() / 3;
    let early_max = *samples[..third.max(1)].iter().max().unwrap();
    let late_max = *samples[samples.len() - third.max(1)..]
        .iter()
        .max()
        .unwrap();
    let limit = early_max + early_max / 7 + 8 * 1024 * 1024;
    assert!(
        late_max <= limit,
        "RSS grew across soak: early max {early_max} B, late max {late_max} B \
         (limit {limit} B, {} samples over {rounds} rounds)",
        samples.len()
    );
}
