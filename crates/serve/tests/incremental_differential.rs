//! Incremental-correctness differential suite.
//!
//! For 300 fuzzgen seeds: load the generated program, apply one
//! deterministic single-function mutation, `update` the resident
//! database — then cold-load the mutated source into a fresh database
//! and require the *byte-identical* wire responses for every estimator
//! combination. Reuse is not allowed to change a single bit of any
//! estimate; it is only allowed to skip work, which the aggregate
//! work-counter assertion at the bottom confirms it actually does.

use serve::db::ServeDb;
use serve::edits::mutate;
use serve::session::Session;
use std::sync::Arc;

const SEEDS: u64 = 300;

fn estimate_requests(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for estimator in ["loop", "smart", "markov"] {
        for inter in ["call-site", "direct", "all-rec", "all-rec2", "markov"] {
            out.push(format!(
                r#"{{"sfe":"serve/v1","id":1,"method":"estimate","params":{{"estimator":"{estimator}","inter":"{inter}","program":"{name}"}}}}"#
            ));
        }
    }
    out
}

#[test]
fn incremental_update_is_byte_identical_to_cold_recompute() {
    let warm_db = Arc::new(ServeDb::new(Some(2), None));
    let cold_jobs = [1usize, 2, 4];
    let mut mutated = 0u64;
    let mut profiled = 0u64;

    for seed in 0..SEEDS {
        let mut prog = fuzzgen::gen::generate(seed);
        let src0 = prog.render();
        let name = format!("diff/{seed}");
        warm_db
            .upsert(&name, &src0)
            .unwrap_or_else(|e| panic!("seed {seed}: base load failed: {e:?}"));

        let mut rng = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        if !mutate(&mut prog, &mut rng) {
            continue;
        }
        mutated += 1;
        let src1 = prog.render();
        assert_ne!(src0, src1, "seed {seed}: mutation must change the source");
        warm_db
            .upsert(&name, &src1)
            .unwrap_or_else(|e| panic!("seed {seed}: incremental update failed: {e:?}"));

        // Cold recompute in a fresh database — vary the worker count
        // too, so the comparison also covers pool-size independence.
        let cold_db = Arc::new(ServeDb::new(
            Some(cold_jobs[seed as usize % cold_jobs.len()]),
            None,
        ));
        cold_db
            .upsert(&name, &src1)
            .unwrap_or_else(|e| panic!("seed {seed}: cold load failed: {e:?}"));

        let warm_entry = warm_db.entry(&name).unwrap();
        let cold_entry = cold_db.entry(&name).unwrap();
        assert_eq!(
            warm_entry.estimates_digest(),
            cold_entry.estimates_digest(),
            "seed {seed}: estimate digests diverge after incremental update"
        );

        // Wire-level: every estimator combination, byte for byte. The
        // `revision` field necessarily differs (2 vs 1), so compare
        // with it normalized.
        let warm = Session::new(Arc::clone(&warm_db));
        let cold = Session::new(Arc::clone(&cold_db));
        for req in estimate_requests(&name) {
            let a = warm
                .handle(&req)
                .response
                .replace("\"revision\":2", "\"revision\":1");
            let b = cold.handle(&req).response;
            assert_eq!(a, b, "seed {seed}: wire response diverges for {req}");
        }

        // Profiles execute the *reused* CFGs on the VM — a remapped
        // string index or branch id would surface here. Sampled: VM
        // runs dominate test time.
        if seed % 10 == 0 {
            profiled += 1;
            let req = format!(
                r#"{{"sfe":"serve/v1","id":1,"method":"profile","params":{{"program":"{name}"}}}}"#
            );
            let a = warm.handle(&req).response;
            let b = cold.handle(&req).response;
            assert_eq!(a, b, "seed {seed}: profile response diverges");
        }
    }

    assert!(
        mutated >= SEEDS * 9 / 10,
        "only {mutated}/{SEEDS} seeds produced a mutation"
    );
    assert!(profiled >= SEEDS / 20, "profile sampling broke: {profiled}");

    // Reuse must actually happen: across all updates, a substantial
    // share of function artifacts must have been carried over rather
    // than recomputed (single-function edits leave the other functions
    // untouched; whole-module invalidations from context changes are
    // the minority).
    let work = warm_db.total_work();
    assert!(
        work.funcs_reused * 3 >= work.funcs_lowered,
        "too little reuse: {work:?}"
    );
}

#[test]
fn suite_program_edit_is_byte_identical_and_cheap() {
    // Same differential on a real suite program (many functions), plus
    // the work-ratio property on a single concrete case: editing one
    // function of `compress` must cost well under half of a cold load
    // in work units (the <10% acceptance bound is asserted on the full
    // 14-program suite denominator in the serve bench).
    let program = suite::all()
        .into_iter()
        .find(|p| p.name == "compress")
        .expect("compress in suite");
    let src0 = program.source;
    let src1 = serve::edits::edit_function_source(src0, 3).expect("editable function");

    let warm = Arc::new(ServeDb::new(Some(2), None));
    let cold_out;
    let warm_out;
    {
        warm.upsert("compress", src0).unwrap();
        warm_out = warm.upsert("compress", &src1).unwrap();
        let cold = Arc::new(ServeDb::new(Some(1), None));
        cold_out = cold.upsert("compress", &src1).unwrap();
        assert_eq!(
            warm.entry("compress").unwrap().estimates_digest(),
            cold.entry("compress").unwrap().estimates_digest(),
            "suite edit: estimates diverge"
        );
    }
    assert_eq!(warm_out.fingerprint, cold_out.fingerprint);
    assert!(
        warm_out.work.total_units() * 2 < cold_out.work.total_units(),
        "incremental {:?} not cheaper than cold {:?}",
        warm_out.work,
        cold_out.work
    );
    assert!(warm_out.work.funcs_reused > 0);
}
