//! # pool — an in-tree work-stealing thread pool
//!
//! The suite pipeline used to spawn one OS thread per program and,
//! inside each, one more per input — 14+ threads of oversubscription
//! on a small runner, and a straggler program's inputs still ran on a
//! single core. This crate replaces all of that with one process-wide
//! pool of `available_parallelism` workers executing *(program,
//! input)*-granularity tasks: per-worker LIFO [Chase–Lev
//! deques](deque) with lock-free stealing, a shared overflow/injector
//! queue, and a [`Pool::scope`] API in the style of
//! `std::thread::scope` / rayon — tasks may borrow from the caller's
//! stack and may themselves spawn further tasks into the same scope
//! (compile tasks fan out profile tasks).
//!
//! Everything is vendored — no external dependencies, no network.
//!
//! ## Determinism contract
//!
//! The pool schedules nondeterministically; callers that need
//! deterministic output write results into pre-sized slots
//! (`results[i]`) owned by the spawning stack frame, so merged output
//! is slot-indexed, never completion-ordered. `bench::load_suite`
//! produces byte-identical results for pool sizes 1, 2, and N this
//! way (asserted by `crates/bench/tests/determinism.rs`).
//!
//! ## Observability
//!
//! The pool keeps always-on internal [`PoolStats`] (atomics) and
//! mirrors them into `obs` counters when telemetry is enabled:
//! `pool.tasks` (executed), `pool.steals` (successful steals),
//! `pool.injected` (tasks routed through the shared queue), and
//! `pool.idle_ns` (total worker park time).
//!
//! ```
//! let pool = pool::Pool::new(4);
//! let mut squares = vec![0u64; 8];
//! pool.scope(|s| {
//!     for (i, slot) in squares.iter_mut().enumerate() {
//!         s.spawn(move |_| *slot = (i as u64) * (i as u64));
//!     }
//! });
//! assert_eq!(squares[7], 49);
//! ```

#![warn(missing_docs)]

mod deque;

use deque::Deque;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The type-erased unit of work. Boxed twice so deque slots hold a
/// thin pointer.
struct Task(Box<dyn FnOnce() + Send>);

/// A raw task pointer that may cross threads inside the injector
/// queue. Ownership is linear: whoever dequeues it runs (and frees)
/// it exactly once.
struct TaskPtr(*mut Task);
// SAFETY: the boxed closure inside is `Send`; the raw pointer is just
// its thin address, moved — never aliased — between threads.
unsafe impl Send for TaskPtr {}

/// Always-on pool telemetry, readable via [`Pool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed to completion.
    pub tasks: u64,
    /// Successful steals from another worker's deque.
    pub steals: u64,
    /// Tasks that went through the shared injector queue (spawned
    /// from outside the pool, or overflowed a full deque).
    pub injected: u64,
    /// Total nanoseconds workers spent parked waiting for work.
    pub idle_ns: u64,
}

#[derive(Default)]
struct Stats {
    tasks: AtomicU64,
    steals: AtomicU64,
    injected: AtomicU64,
    idle_ns: AtomicU64,
}

struct Shared {
    deques: Vec<Deque<Task>>,
    injector: Mutex<VecDeque<TaskPtr>>,
    /// Approximate count of queued-but-unclaimed tasks; only gates
    /// worker parking (a stale read costs at most one 1 ms park).
    pending_hint: AtomicUsize,
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    stats: Stats,
}

thread_local! {
    /// `(identity of the owning pool's Shared, worker index)` for pool
    /// worker threads; `None` identity for everyone else.
    static CURRENT_WORKER: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
}

fn shared_id(s: &Shared) -> usize {
    std::ptr::from_ref(s) as usize
}

impl Shared {
    /// This thread's worker index in `self`, if it is one of ours.
    fn local_index(&self) -> Option<usize> {
        let (id, idx) = CURRENT_WORKER.get();
        (id == shared_id(self)).then_some(idx)
    }

    fn push(&self, task: Box<dyn FnOnce() + Send>) {
        let ptr = Box::into_raw(Box::new(Task(task)));
        self.pending_hint.fetch_add(1, Ordering::SeqCst);
        let injected = match self.local_index() {
            Some(idx) => match self.deques[idx].push(ptr) {
                Ok(()) => false,
                Err(overflow) => {
                    self.injector.lock().unwrap().push_back(TaskPtr(overflow));
                    true
                }
            },
            None => {
                self.injector.lock().unwrap().push_back(TaskPtr(ptr));
                true
            }
        };
        if injected {
            self.stats.injected.fetch_add(1, Ordering::Relaxed);
            obs::counter_add("pool.injected", 1);
        }
        self.wakeup.notify_one();
    }

    /// Finds one task: local deque (LIFO), then the injector (FIFO),
    /// then stealing from the other workers round-robin. `local` is
    /// this thread's worker index, if any; `rot` rotates the steal
    /// starting victim so thieves spread out.
    fn find_task(&self, local: Option<usize>, rot: &mut usize) -> Option<*mut Task> {
        if let Some(idx) = local {
            if let Some(ptr) = self.deques[idx].pop() {
                self.pending_hint.fetch_sub(1, Ordering::SeqCst);
                return Some(ptr);
            }
        }
        if let Some(TaskPtr(ptr)) = self.injector.lock().unwrap().pop_front() {
            self.pending_hint.fetch_sub(1, Ordering::SeqCst);
            return Some(ptr);
        }
        let n = self.deques.len();
        for k in 0..n {
            let victim = (*rot + k) % n;
            if Some(victim) == local {
                continue;
            }
            if let Some(ptr) = self.deques[victim].steal() {
                *rot = victim;
                self.pending_hint.fetch_sub(1, Ordering::SeqCst);
                self.stats.steals.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("pool.steals", 1);
                return Some(ptr);
            }
        }
        None
    }

    /// Runs a claimed task pointer. Panics cannot escape: every task
    /// is a scope wrapper that catches its own unwind.
    fn run(&self, ptr: *mut Task) {
        // SAFETY: `ptr` came from `Box::into_raw` in `push` and was
        // claimed exactly once by `find_task`/`drain`.
        let task = unsafe { Box::from_raw(ptr) };
        (task.0)();
        self.stats.tasks.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("pool.tasks", 1);
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    CURRENT_WORKER.set((shared_id(&shared), index));
    let mut rot = index + 1;
    loop {
        if let Some(ptr) = shared.find_task(Some(index), &mut rot) {
            shared.run(ptr);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park. The 1 ms timeout bounds the cost of any lost-wakeup
        // race with `push`'s lock-free notify.
        let parked = Instant::now();
        let guard = shared.sleep_lock.lock().unwrap();
        if shared.pending_hint.load(Ordering::SeqCst) == 0
            && !shared.shutdown.load(Ordering::Acquire)
        {
            let _unused = shared
                .wakeup
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
        let ns = u64::try_from(parked.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.stats.idle_ns.fetch_add(ns, Ordering::Relaxed);
        obs::counter_add("pool.idle_ns", ns);
    }
}

/// A work-stealing thread pool. See the crate docs for the design;
/// construct per-test pools with [`Pool::new`] or share the
/// process-wide [`global`] pool.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            deques: (0..threads).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending_hint: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawning pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// A snapshot of the pool's lifetime counters.
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared.stats;
        PoolStats {
            tasks: s.tasks.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
            injected: s.injected.load(Ordering::Relaxed),
            idle_ns: s.idle_ns.load(Ordering::Relaxed),
        }
    }

    /// Claims and runs one queued task, if any — local deque first,
    /// then the injector, then stealing. Returns whether a task ran.
    ///
    /// This is the building block for *producer helping*: a thread
    /// blocked on backpressure (see [`Gate`]) executes queued work
    /// instead of sleeping, so a saturated single-worker pool can
    /// never deadlock against its own producer.
    pub fn help_one(&self) -> bool {
        let local = self.shared.local_index();
        let mut rot = local.unwrap_or(0) + 1;
        match self.shared.find_task(local, &mut rot) {
            Some(ptr) => {
                self.shared.run(ptr);
                true
            }
            None => false,
        }
    }

    /// Runs `f` with a [`Scope`] on which tasks can be spawned, then
    /// blocks until every task spawned into the scope (transitively —
    /// tasks may spawn more tasks) has finished. Tasks may borrow
    /// anything that outlives the `scope` call, exactly as with
    /// `std::thread::scope`.
    ///
    /// While waiting, the calling thread *helps*: it executes pool
    /// tasks instead of blocking, so a nested `scope` on a worker
    /// thread cannot deadlock the pool.
    ///
    /// # Panics
    ///
    /// If `f` or any task panics, the panic is resumed here — after
    /// all tasks in the scope have completed (they may borrow the
    /// caller's frame, so unwinding early would be unsound).
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::new(ScopeState::default()),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait_done();
        match result {
            Ok(r) => {
                if let Some(payload) = scope.state.panic.lock().unwrap().take() {
                    resume_unwind(payload);
                }
                r
            }
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep_lock.lock().unwrap();
            self.shared.wakeup.notify_all();
        }
        for w in self.workers.drain(..) {
            let _joined = w.join();
        }
        // Drop any tasks that never ran (only possible if a scope
        // itself leaked, which the API prevents; belt and suspenders).
        // If some Shared handle still exists, leaking the queued
        // tasks is the safe choice.
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            for TaskPtr(ptr) in shared.injector.get_mut().unwrap().drain(..) {
                // SAFETY: unclaimed `Box::into_raw` pointer, dropped once.
                drop(unsafe { Box::from_raw(ptr) });
            }
            for d in &mut shared.deques {
                for ptr in d.drain() {
                    // SAFETY: as above.
                    drop(unsafe { Box::from_raw(ptr) });
                }
            }
        }
    }
}

#[derive(Default)]
struct ScopeState {
    /// Tasks spawned into the scope and not yet finished.
    pending: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
    /// First task panic, resumed when the scope closes.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_lock.lock().unwrap();
            self.done.notify_all();
        }
    }
}

/// Handle for spawning tasks into a [`Pool::scope`] region. Spawned
/// closures receive `&Scope` back, so a task can fan out further
/// tasks into the same scope.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant in `'scope`, as in `std::thread::scope`.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool. Spawns from a worker thread go to
    /// that worker's own deque (LIFO, stealable); spawns from any
    /// other thread go through the shared injector queue.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        let state = Arc::clone(&self.state);
        let wrapper: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope: Scope<'scope> = Scope {
                shared,
                state: Arc::clone(&state),
                _marker: PhantomData,
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                let mut slot = state.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            state.finish_one();
        });
        // SAFETY: only the lifetime is erased. `Pool::scope` does not
        // return (or unwind) before `wait_done` has observed every
        // spawned task finished, so the closure — and everything it
        // borrows for `'scope` — is never used after `'scope` ends.
        let wrapper: Box<dyn FnOnce() + Send + 'static> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                wrapper,
            )
        };
        self.shared.push(wrapper);
    }

    /// Blocks until `pending` hits zero, executing pool tasks while
    /// waiting instead of sleeping whenever any are available.
    fn wait_done(&self) {
        let local = self.shared.local_index();
        let mut rot = local.unwrap_or(0) + 1;
        loop {
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(ptr) = self.shared.find_task(local, &mut rot) {
                self.shared.run(ptr);
                continue;
            }
            let guard = self.state.done_lock.lock().unwrap();
            if self.state.pending.load(Ordering::SeqCst) != 0 {
                // Short timeout: the tasks we are waiting on may be
                // running on workers that will spawn more work we
                // could help with.
                let _unused = self
                    .state
                    .done
                    .wait_timeout(guard, Duration::from_micros(200))
                    .unwrap();
            }
        }
    }
}

/// A counting backpressure gate: at most `limit` permits outstanding.
///
/// The corpus engine acquires a permit per generated program and
/// releases it when the program's results are drained, so generation
/// can never outrun execution by more than the window. While the gate
/// is full, [`Gate::acquire`] *helps* the pool (executes queued
/// tasks) rather than sleeping — on a one-worker pool the producer
/// thread becomes the consumer, and throughput degrades gracefully
/// instead of deadlocking.
pub struct Gate {
    limit: usize,
    held: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    /// A gate admitting at most `limit` outstanding permits (clamped
    /// to at least 1).
    pub fn new(limit: usize) -> Gate {
        Gate {
            limit: limit.max(1),
            held: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Maximum outstanding permits.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Permits currently held.
    pub fn in_flight(&self) -> usize {
        *self.held.lock().unwrap()
    }

    /// Blocks until a permit is free, executing tasks from `pool`
    /// while waiting.
    pub fn acquire(&self, pool: &Pool) {
        loop {
            {
                let mut held = self.held.lock().unwrap();
                if *held < self.limit {
                    *held += 1;
                    return;
                }
            }
            if !pool.help_one() {
                // Nothing runnable: the permits we are waiting on are
                // executing on workers. Park briefly; `release`
                // notifies.
                let held = self.held.lock().unwrap();
                if *held >= self.limit {
                    let _unused = self
                        .freed
                        .wait_timeout(held, Duration::from_micros(200))
                        .unwrap();
                }
            }
        }
    }

    /// Returns one permit.
    ///
    /// # Panics
    ///
    /// If called without a matching [`Gate::acquire`].
    pub fn release(&self) {
        let mut held = self.held.lock().unwrap();
        assert!(*held > 0, "Gate::release without a held permit");
        *held -= 1;
        drop(held);
        self.freed.notify_one();
    }
}

/// The process-wide pool, sized to `available_parallelism` (override
/// with the `SFE_POOL_THREADS` environment variable, clamped to
/// 1..=256). Created on first use and never torn down.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// Worker count for the global pool: `SFE_POOL_THREADS` if set and
/// parseable, else `available_parallelism`, else 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SFE_POOL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 256);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_every_task_and_borrows_slots() {
        let pool = Pool::new(4);
        let mut out = vec![0u64; 100];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        });
        assert_eq!(out.iter().sum::<u64>(), 5050);
        assert_eq!(pool.stats().tasks, 100);
    }

    #[test]
    fn tasks_fan_out_nested_tasks() {
        // The load_suite shape: 8 "compile" tasks each spawn 8
        // "profile" tasks into the same scope.
        let pool = Pool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..8 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 + 64);
    }

    #[test]
    fn pool_size_one_completes_fanout() {
        let pool = Pool::new(1);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    for _ in 0..4 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_returns_value_and_sequences_scopes() {
        // Consecutive scopes on one pool see each other's effects:
        // every scope's tasks complete before the call returns.
        let pool = Pool::new(2);
        let mut acc = 0u64;
        for round in 1..=10u64 {
            let before = acc;
            let mut slot = 0u64;
            let ret = pool.scope(|s| {
                s.spawn(|_| slot = round);
                "done"
            });
            assert_eq!(ret, "done");
            acc = before + slot;
        }
        assert_eq!(acc, 55);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = Pool::new(2);
        let finished = Arc::new(AtomicU64::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    let finished = Arc::clone(&finished);
                    s.spawn(move |_| {
                        if i == 5 {
                            panic!("boom");
                        }
                        std::thread::sleep(Duration::from_millis(1));
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must surface");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            15,
            "non-panicking tasks all ran to completion first"
        );
    }

    #[test]
    fn nested_pool_scope_on_worker_thread_does_not_deadlock() {
        // A task opening a whole new Pool::scope on the (only) worker
        // thread: wait_done must help-execute instead of blocking.
        let pool = Pool::new(1);
        let done = AtomicU64::new(0);
        let pool_ref = &pool;
        let done_ref = &done;
        pool.scope(|s| {
            s.spawn(move |_| {
                pool_ref.scope(|inner| {
                    inner.spawn(move |_| {
                        done_ref.fetch_add(1, Ordering::Relaxed);
                    });
                });
                done_ref.fetch_add(10, Ordering::Relaxed);
            });
        });
        assert_eq!(done.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn stress_many_small_tasks() {
        let pool = Pool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..5_000 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5_000);
        let stats = pool.stats();
        assert_eq!(stats.tasks, 5_000);
        // Spawned from a non-worker thread: everything was injected
        // or stolen; both counters are advisory but tasks is exact.
        assert!(stats.injected > 0);
    }

    #[test]
    fn gate_bounds_in_flight_and_never_deadlocks() {
        // One worker + a producer acquiring before each spawn: the
        // producer must help-execute once the window fills.
        for workers in [1, 3] {
            let pool = Pool::new(workers);
            let gate = Gate::new(3);
            let current = AtomicU64::new(0);
            let peak = AtomicU64::new(0);
            let ran = AtomicU64::new(0);
            pool.scope(|s| {
                for _ in 0..100 {
                    gate.acquire(&pool);
                    let (current, peak, ran, gate) = (&current, &peak, &ran, &gate);
                    s.spawn(move |_| {
                        let c = current.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(c, Ordering::SeqCst);
                        ran.fetch_add(1, Ordering::SeqCst);
                        current.fetch_sub(1, Ordering::SeqCst);
                        gate.release();
                    });
                }
            });
            assert_eq!(ran.load(Ordering::SeqCst), 100);
            assert!(peak.load(Ordering::SeqCst) <= 3, "window exceeded");
            assert_eq!(gate.in_flight(), 0, "all permits returned");
        }
    }

    #[test]
    fn help_one_executes_queued_work_from_the_caller() {
        let pool = Pool::new(1);
        let ran = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let ran = &ran;
                s.spawn(move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Help until the queue is visibly drained from here; the
            // worker may race us for tasks, which is the point.
            while pool.help_one() {}
        });
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let g1 = global();
        let g2 = global();
        assert!(std::ptr::eq(g1, g2));
        assert!(g1.workers() >= 1);
    }

    #[test]
    fn dropping_an_idle_pool_joins_cleanly() {
        let pool = Pool::new(3);
        pool.scope(|s| {
            s.spawn(|_| {});
        });
        drop(pool);
    }
}
