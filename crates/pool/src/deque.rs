//! A fixed-capacity Chase–Lev work-stealing deque.
//!
//! One worker thread owns each deque: only the owner pushes and pops
//! at the *bottom* (LIFO — freshly spawned subtasks stay hot in
//! cache), while any other thread may steal from the *top* (FIFO —
//! thieves take the oldest, largest-granularity work). Stealing is
//! lock-free: a thief claims an element with a single
//! compare-exchange on `top`; the only synchronization the owner ever
//! performs is one `SeqCst` fence in `pop` to arbitrate the
//! last-element race.
//!
//! The buffer never grows. A full deque rejects the push and the pool
//! overflows the task to its shared injector queue instead, which
//! bounds memory and sidesteps the memory-reclamation problem a
//! growable Chase–Lev buffer would bring. Slots are `AtomicPtr`, so
//! every cross-thread slot access is an atomic load/store — no
//! data-race UB even in the benign racy reads the classic algorithm
//! performs.
//!
//! Orderings follow Lê, Pop, Cohen & Zappa Nardelli, "Correct and
//! Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013), with
//! `SeqCst` kept wherever the paper allows something weaker but the
//! cost is irrelevant at this pool's task granularity (whole
//! compile/profile jobs, never per-instruction work).

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

/// Capacity of every worker deque. 1024 outstanding subtasks per
/// worker is far beyond what suite loading fans out (14 programs × a
/// handful of inputs); overflow goes to the pool injector, so this is
/// a performance knob, not a correctness limit.
pub(crate) const DEQUE_CAP: usize = 1024;
const MASK: isize = (DEQUE_CAP as isize) - 1;

/// The owner/thief deque. `T` is always the pool's raw task pointer;
/// the deque treats it as an opaque non-null pointer and never
/// dereferences it.
pub(crate) struct Deque<T> {
    /// Next slot the owner will push into (owner-written only).
    bottom: AtomicIsize,
    /// Oldest unclaimed slot (thieves advance it by CAS).
    top: AtomicIsize,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Deque<T> {
    pub(crate) fn new() -> Self {
        let slots = (0..DEQUE_CAP)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            slots,
        }
    }

    /// Owner-only: push `ptr` at the bottom. Returns `Err(ptr)` when
    /// the deque is full (caller overflows to the injector).
    pub(crate) fn push(&self, ptr: *mut T) -> Result<(), *mut T> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= DEQUE_CAP as isize {
            return Err(ptr);
        }
        self.slots[(b & MASK) as usize].store(ptr, Ordering::Relaxed);
        // Publish: a thief that observes the new bottom (Acquire) also
        // observes the slot write above.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop the most recently pushed element (LIFO).
    pub(crate) fn pop(&self) -> Option<*mut T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The fence orders the bottom store above against the top load
        // below, so either this pop sees a concurrent thief's top
        // advance, or that thief sees the reserved bottom — never
        // neither (the classic SC arbitration of the last element).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let ptr = self.slots[(b & MASK) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last element: race thieves for it via top.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(ptr);
        }
        // More than one element: no thief can reach index b (they all
        // target top < b), so the claim is uncontended.
        Some(ptr)
    }

    /// Thief: try to steal the oldest element (FIFO). Returns `None`
    /// both when the deque is empty and when the single attempt lost a
    /// race — callers move on to the next victim rather than spin.
    pub(crate) fn steal(&self) -> Option<*mut T> {
        let t = self.top.load(Ordering::Acquire);
        // Order the top load before the bottom load; pairs with the
        // fence in `pop`.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        // Read the element *before* claiming it: once the CAS below
        // succeeds the owner may reuse the slot. The read cannot be
        // stale: overwriting slot `t & MASK` requires bottom to reach
        // `t + DEQUE_CAP`, which `push` only allows once top has moved
        // past `t` — and then the CAS fails.
        let ptr = self.slots[(t & MASK) as usize].load(Ordering::Relaxed);
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
            .then_some(ptr)
    }

    /// Exclusive drain for shutdown: requires `&mut self`, so no
    /// owner or thief can be active.
    pub(crate) fn drain(&mut self) -> Vec<*mut T> {
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        let out = (t..b)
            .map(|i| self.slots[(i & MASK) as usize].load(Ordering::Relaxed))
            .collect();
        self.top.store(b, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn leak(v: usize) -> *mut usize {
        Box::into_raw(Box::new(v))
    }

    unsafe fn take(p: *mut usize) -> usize {
        *unsafe { Box::from_raw(p) }
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d: Deque<usize> = Deque::new();
        for i in 0..4 {
            d.push(leak(i)).unwrap();
        }
        // SAFETY: pointers come straight from `leak` above.
        unsafe {
            assert_eq!(take(d.steal().unwrap()), 0, "thief takes oldest");
            assert_eq!(take(d.pop().unwrap()), 3, "owner takes newest");
            assert_eq!(take(d.pop().unwrap()), 2);
            assert_eq!(take(d.steal().unwrap()), 1);
        }
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
    }

    #[test]
    fn rejects_push_when_full() {
        let mut d: Deque<usize> = Deque::new();
        for i in 0..DEQUE_CAP {
            d.push(leak(i)).unwrap();
        }
        let extra = leak(99);
        let back = d.push(extra).unwrap_err();
        assert_eq!(back, extra);
        // SAFETY: both pointers are live `leak` results.
        unsafe {
            take(back);
            for p in d.drain() {
                take(p);
            }
        }
    }

    #[test]
    fn concurrent_steal_delivers_each_element_once() {
        // 4 thieves + the owner popping: every pushed value must be
        // claimed exactly once. Run a few rounds to shake the
        // last-element race.
        const N: usize = 10_000;
        let d: Arc<Deque<usize>> = Arc::new(Deque::new());
        let sum = Arc::new(AtomicUsize::new(0));
        let claimed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = Arc::clone(&d);
                let sum = Arc::clone(&sum);
                let claimed = Arc::clone(&claimed);
                s.spawn(move || {
                    while claimed.load(Ordering::Relaxed) < N {
                        if let Some(p) = d.steal() {
                            // SAFETY: exclusively claimed by steal.
                            sum.fetch_add(unsafe { take(p) }, Ordering::Relaxed);
                            claimed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            let mut pushed = 0usize;
            while pushed < N {
                if d.push(leak(pushed + 1)).is_ok() {
                    pushed += 1;
                }
                if pushed.is_multiple_of(7) {
                    if let Some(p) = d.pop() {
                        // SAFETY: exclusively claimed by pop.
                        sum.fetch_add(unsafe { take(p) }, Ordering::Relaxed);
                        claimed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Drain the leftovers so every element gets claimed and
            // the thieves' loops terminate.
            while claimed.load(Ordering::Relaxed) < N {
                if let Some(p) = d.pop() {
                    // SAFETY: exclusively claimed by pop.
                    sum.fetch_add(unsafe { take(p) }, Ordering::Relaxed);
                    claimed.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2);
    }
}
