//! End-to-end tests of the `sfe` binary via `CARGO_BIN_EXE_sfe`.

use std::process::Command;

fn sfe(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sfe"))
        .args(args)
        .output()
        .expect("sfe runs")
}

fn demo_file() -> tempfile::NamedFile {
    let mut f = tempfile::NamedFile::new("demo.c");
    f.write(
        br#"
        int hot(int n) { int i, s = 0; for (i = 0; i < n; i++) s += i; return s; }
        int cold(char *msg) { if (msg == 0) { exit(1); } return msg[0]; }
        int main(void) {
            int i, t = 0;
            for (i = 0; i < 50; i++) t += hot(i);
            t += cold("x");
            return t & 255;
        }
        "#,
    );
    f
}

// A tiny self-cleaning temp file helper (no external crates).
mod tempfile {
    use std::path::PathBuf;

    pub struct NamedFile {
        path: PathBuf,
    }

    impl NamedFile {
        pub fn new(name: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!("sfe-test-{}-{name}", std::process::id()));
            NamedFile { path }
        }

        pub fn write(&mut self, bytes: &[u8]) {
            std::fs::write(&self.path, bytes).expect("write temp file");
        }

        pub fn path(&self) -> &str {
            self.path.to_str().expect("utf8 path")
        }
    }

    impl Drop for NamedFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[test]
fn report_lists_functions_and_sites() {
    let f = demo_file();
    let out = sfe(&["report", f.path()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hot"), "{text}");
    assert!(text.contains("main -> hot"), "{text}");
}

#[test]
fn branches_show_heuristics() {
    let f = demo_file();
    let out = sfe(&["branches", f.path()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Loop"), "{text}");
    // The `msg == 0` pointer test.
    assert!(text.contains("Pointer"), "{text}");
}

#[test]
fn dot_emits_graphviz() {
    let f = demo_file();
    let out = sfe(&["dot", f.path(), "hot"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"), "{text}");
    assert!(text.contains("freq="), "{text}");
}

#[test]
fn run_executes_and_scores() {
    let f = demo_file();
    let out = sfe(&["run", f.path()]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("weight-matching"), "{err}");
}

#[test]
fn pretty_round_trips() {
    let f = demo_file();
    let out = sfe(&["pretty", f.path()]);
    assert!(out.status.success());
    let printed = String::from_utf8_lossy(&out.stdout).into_owned();
    // The printed output must itself compile.
    assert!(minic::compile(&printed).is_ok(), "{printed}");
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let mut f = tempfile::NamedFile::new("bad.c");
    f.write(b"int main(void) { return x; }");
    let out = sfe(&["report", f.path()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown name"), "{err}");
}

#[test]
fn usage_on_missing_args() {
    let out = sfe(&[]);
    assert_eq!(out.status.code(), Some(2));
}
