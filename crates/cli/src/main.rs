//! `sfe` — static frequency estimation for MiniC programs.
//!
//! The command-line face of the PLDI 1994 reproduction: point it at a
//! MiniC source file and it reports, *without running the program*,
//! which blocks, functions, and call sites are likely hot — optionally
//! validating the estimates against a real profiled run.
//!
//! ```text
//! sfe report    prog.c            # hot functions + call sites (static)
//! sfe blocks    prog.c [func]     # per-block estimates (loop/smart/markov)
//! sfe branches  prog.c            # per-branch predictions + heuristics
//! sfe callsites prog.c            # ranked call sites (inlining candidates)
//! sfe dot       prog.c [func]     # Graphviz CFG (or call graph)
//! sfe run       prog.c [input]    # run, then compare estimate vs. profile
//! sfe suite                       # full pipeline over the 14-program suite
//! sfe reuse    [program|file.c]   # predicted vs traced reuse-distance histograms
//! sfe fig10    [program]          # measured speedup-vs-budget curves (Fig 10)
//! sfe corpus   [flags]            # streaming evaluation over generated corpus
//! sfe pretty    prog.c            # parse + pretty-print
//! sfe serve    [flags]            # resident estimator service (JSON-RPC)
//! sfe storm    [flags]            # synthetic-client load driver for the service
//! ```
//!
//! `sfe serve` flags:
//!
//! ```text
//! --addr <host:port>  serve over TCP instead of stdin/stdout
//! --suite             preload the 14 suite programs (with their inputs)
//! --jobs <n>          worker threads for per-function fan-out
//! ```
//!
//! The service speaks the `serve/v1` NDJSON protocol (one request and
//! one response per line; see crate `serve`): `load`/`update` compile
//! a program into the incremental database, `estimate`/`profile`/
//! `score` read from it, `shutdown` drains and exits. An `update` that
//! edits one function recomputes only that function's CFG and flow
//! solves; everything untouched is reused, bit for bit.
//!
//! `sfe storm` flags:
//!
//! ```text
//! --clients <n>        concurrent clients (default 4)
//! --requests <n>       requests per client (default 100)
//! --seed <n>           workload seed (default 1)
//! --update-pct <n>     percentage of requests that are updates (default 20)
//! --jobs <n>           worker threads for the in-process database
//! --addr <host:port>   drive a live daemon instead of an in-process database
//! --assert-qps <x>     exit nonzero if sustained q/s falls below x
//! --assert-p99-ms <x>  exit nonzero if p99 latency exceeds x milliseconds
//! ```
//!
//! `sfe corpus` flags:
//!
//! ```text
//! --count <n>        programs to evaluate (default 1000)
//! --seed <n>         first generator seed (default 1)
//! --buckets <spec>   comma-separated strata: recursion,indirect,loopskew,switch (default all)
//! --jobs <n>         worker threads (default: global pool / SFE_POOL_THREADS)
//! --mem-budget <mb>  memory budget in MiB driving the backpressure window (default 256)
//! --naive            run the retained first-cut baseline engine instead
//! ```
//!
//! Global flags (any command):
//!
//! ```text
//! --trace               print the aggregated span tree + counters to stderr
//! --metrics-out <path>  write schema-stable metrics JSON (obs-metrics/v1)
//! --cache-dir <path>    artifact cache directory (default: ./cache for `suite`)
//! --no-cache            disable the artifact cache entirely
//! --opt-level <0..3>    run optimized bytecode (`run`, `suite`); default 0
//! ```
//!
//! `--opt-level` selects the estimator-guided optimizing backend
//! (crate `opt`): 1 = constant folding + dead-code elimination, 2 = +
//! superinstruction fusion and hot-path layout, 3 = + frequency-guided
//! inlining. Frequencies come from the static Markov estimators — no
//! profile run is needed to build the plan.
//!
//! `sfe suite` caches its profiles by default: the first run fills
//! `./cache` and later runs replay it in tens of milliseconds with
//! byte-identical scores. The cache is content-addressed, so edited
//! sources or inputs re-profile automatically; corrupt entries are
//! recomputed, never trusted.

#![warn(missing_docs)]

use estimators::{callsite, inter, intra, predict_module, weight_matching};
use flowgraph::Program;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Pull the global telemetry flags out first; everything left is
    // the positional `<command> <file> [arg]` form.
    let mut trace = false;
    let mut metrics_out: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut opt_level: u8 = 0;
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--trace" => trace = true,
            "--metrics-out" => match raw.next() {
                Some(p) => metrics_out = Some(p),
                None => {
                    eprintln!("sfe: --metrics-out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--cache-dir" => match raw.next() {
                Some(p) => cache_dir = Some(p),
                None => {
                    eprintln!("sfe: --cache-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => no_cache = true,
            "--opt-level" => match raw.next().as_deref().map(str::parse) {
                Some(Ok(n)) if n <= 3 => opt_level = n,
                _ => {
                    eprintln!("sfe: --opt-level needs a value in 0..=3");
                    return ExitCode::from(2);
                }
            },
            _ => args.push(a),
        }
    }
    if trace || metrics_out.is_some() {
        obs::set_enabled(true);
    }
    let code = dispatch(&args, cache_dir.as_deref(), no_cache, opt_level);
    // Spans all closed by now (dispatch returned); flush telemetry.
    if trace || metrics_out.is_some() {
        obs::set_enabled(false);
        let metrics = obs::snapshot();
        if trace {
            eprint!("{}", metrics.render_trace());
        }
        if let Some(path) = metrics_out {
            if let Err(e) = std::fs::write(&path, metrics.to_json()) {
                eprintln!("sfe: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    code
}

fn dispatch(args: &[String], cache_dir: Option<&str>, no_cache: bool, opt_level: u8) -> ExitCode {
    if args.first().map(String::as_str) == Some("suite") {
        return suite_report(cache_dir, no_cache, opt_level);
    }
    if args.first().map(String::as_str) == Some("reuse") {
        return reuse_cmd(args.get(1).map(String::as_str), cache_dir, no_cache);
    }
    if args.first().map(String::as_str) == Some("fig10") {
        return fig10_report(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("corpus") {
        return corpus_report(&args[1..], cache_dir);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_cmd(&args[1..], cache_dir, no_cache);
    }
    if args.first().map(String::as_str) == Some("storm") {
        return storm_cmd(&args[1..]);
    }
    if args.len() < 2 {
        eprintln!(
            "usage: sfe [--trace] [--metrics-out <path>] [--cache-dir <path>] [--no-cache] \
             [--opt-level <n>] \
             <report|blocks|branches|callsites|dot|run|suite|reuse|fig10|corpus|pretty|serve|storm> \
             [file.c] [arg]"
        );
        return ExitCode::from(2);
    }
    let command = args[0].as_str();
    let path = &args[1];
    let extra = args.get(2).map(String::as_str);

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sfe: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if command == "pretty" {
        return pretty(&src);
    }
    let module = match minic::compile(&src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("sfe: {}", e.render(&src));
            return ExitCode::FAILURE;
        }
    };
    let program = flowgraph::build_program(&module);

    match command {
        "report" => report(&program),
        "blocks" => blocks(&program, extra),
        "branches" => branches(&program, &src),
        "callsites" => callsites(&program, &src),
        "dot" => dot(&program, extra),
        "run" => run(&program, extra, opt_level),
        other => {
            eprintln!("sfe: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

fn pretty(src: &str) -> ExitCode {
    match minic::parser::parse(src) {
        Ok(unit) => {
            print!("{}", minic::pretty::print_unit(&unit));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sfe: {}", e.render(src));
            ExitCode::FAILURE
        }
    }
}

fn report(program: &Program) -> ExitCode {
    let ia = intra::estimate_program(program, intra::IntraEstimator::Smart);
    let ie = inter::estimate_invocations(program, &ia, inter::InterEstimator::Markov);

    println!("== estimated function invocation counts (Markov call-graph model) ==");
    let mut funcs = program.defined_ids();
    // total_cmp: a NaN estimate (damped fallback on a singular call
    // graph) must rank deterministically, not abort the report.
    funcs.sort_by(|&a, &b| ie.of(b).total_cmp(&ie.of(a)));
    for f in &funcs {
        let func = program.module.function(*f);
        println!(
            "{:>12.2}  {} ({} blocks)",
            ie.of(*f),
            func.name,
            program.cfg(*f).len()
        );
    }

    println!("\n== hottest call sites (invocation × local frequency) ==");
    let mut sites = callsite::estimate_sites(program, &ia, &ie);
    sites.sort_by(|a, b| b.freq.total_cmp(&a.freq));
    for s in sites.iter().take(10) {
        let cs = &program.module.side.call_sites[s.site.0 as usize];
        let caller = &program.module.function(cs.caller).name;
        let callee = match cs.callee {
            minic::sema::CalleeKind::Direct(f) => program.module.function(f).name.clone(),
            _ => "<indirect>".into(),
        };
        println!("{:>12.2}  {caller} -> {callee}", s.freq);
    }
    ExitCode::SUCCESS
}

fn blocks(program: &Program, func: Option<&str>) -> ExitCode {
    let loop_est = intra::estimate_program(program, intra::IntraEstimator::Loop);
    let smart = intra::estimate_program(program, intra::IntraEstimator::Smart);
    let markov = intra::estimate_program(program, intra::IntraEstimator::Markov);
    for f in program.defined_ids() {
        let name = &program.module.function(f).name;
        if let Some(want) = func {
            if name != want {
                continue;
            }
        }
        println!("== {name} ==");
        println!(
            "{:>6} {:>10} {:>10} {:>10}",
            "block", "loop", "smart", "markov"
        );
        for b in 0..program.cfg(f).len() {
            println!(
                "{:>6} {:>10.3} {:>10.3} {:>10.3}",
                format!("B{b}"),
                loop_est.blocks_of(f)[b],
                smart.blocks_of(f)[b],
                markov.blocks_of(f)[b]
            );
        }
    }
    ExitCode::SUCCESS
}

fn branches(program: &Program, src: &str) -> ExitCode {
    let preds = predict_module(&program.module);
    println!(
        "{:>6} {:<10} {:>6} {:>6} {:<10}",
        "line", "context", "dir", "p", "heuristic"
    );
    for b in &program.module.side.branches {
        let pred = preds[&b.id];
        let func = &program.module.function(b.func).name;
        let context = format!("{:?}", b.kind).to_lowercase();
        let heuristic = format!("{:?}", pred.heuristic);
        println!(
            "{:>6} {context:<10} {:>6} {:>6.2} {heuristic:<10}  ({func})",
            span_line(program, b, src),
            if pred.taken { "T" } else { "F" },
            pred.prob_taken,
        );
    }
    ExitCode::SUCCESS
}

fn span_line(program: &Program, b: &minic::sema::Branch, src: &str) -> usize {
    // The condition expression's span is not stored on Branch; find it
    // by walking the owning function for the node.
    let mut line = 0;
    if let Some(body) = &program.module.function(b.func).body {
        body.walk_exprs(&mut |e| {
            if e.id == b.cond {
                line = e.span.line(src);
            }
        });
    }
    line
}

fn callsites(program: &Program, src: &str) -> ExitCode {
    let ia = intra::estimate_program(program, intra::IntraEstimator::Smart);
    let ie = inter::estimate_invocations(program, &ia, inter::InterEstimator::Markov);
    let mut sites = callsite::estimate_sites(program, &ia, &ie);
    sites.sort_by(|a, b| b.freq.total_cmp(&a.freq));
    println!("{:>12} {:>6}  call", "est.freq", "line");
    for s in &sites {
        let cs = &program.module.side.call_sites[s.site.0 as usize];
        let caller = &program.module.function(cs.caller).name;
        let callee = match cs.callee {
            minic::sema::CalleeKind::Direct(f) => program.module.function(f).name.clone(),
            _ => continue,
        };
        println!(
            "{:>12.2} {:>6}  {caller} -> {callee}",
            s.freq,
            cs.span.line(src)
        );
    }
    ExitCode::SUCCESS
}

fn dot(program: &Program, func: Option<&str>) -> ExitCode {
    match func {
        Some(name) => {
            let Some(f) = program.function_id(name) else {
                eprintln!("sfe: no function `{name}`");
                return ExitCode::FAILURE;
            };
            let est = intra::estimate_function(program, f, intra::IntraEstimator::Markov);
            print!(
                "{}",
                flowgraph::dot::cfg_to_dot(&program.module, program.cfg(f), Some(&est))
            );
        }
        None => print!(
            "{}",
            flowgraph::dot::callgraph_to_dot(&program.module, &program.callgraph)
        ),
    }
    ExitCode::SUCCESS
}

fn run(program: &Program, input_path: Option<&str>, opt_level: u8) -> ExitCode {
    let input = match input_path {
        Some(p) => match std::fs::read(p) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sfe: cannot read input {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => Vec::new(),
    };
    let config = profiler::RunConfig::with_input(input);
    let compiled = profiler::compile(program);
    let (compiled, stats) = if opt_level > 0 {
        let ranking = estimators::ranking::StaticRanking::new(program);
        let plan = bench::plan_from_ranking(&ranking, &compiled, opt_level, compiled.funcs.len());
        let (ocp, stats) = opt::optimize(&compiled, &plan);
        (ocp, Some(stats))
    } else {
        (compiled, None)
    };
    let out = match compiled.execute(&config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sfe: runtime error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", out.stdout());
    eprintln!("[exit {} after {} steps]", out.exit_code, out.steps);
    if let Some(stats) = stats {
        eprintln!(
            "[-O{opt_level}: {} inlined, {} folded, {} blocks dropped, {} fused]",
            stats.inlined_calls, stats.folded, stats.dce_blocks, stats.fused
        );
    }

    // Estimate-vs-actual summary.
    let ia = intra::estimate_program(program, intra::IntraEstimator::Smart);
    let ie = inter::estimate_invocations(program, &ia, inter::InterEstimator::Markov);
    let funcs = program.defined_ids();
    let est: Vec<f64> = funcs.iter().map(|&f| ie.of(f)).collect();
    let actual: Vec<f64> = funcs
        .iter()
        .map(|&f| out.profile.calls_of(f) as f64)
        .collect();
    let score = weight_matching(&est, &actual, 0.25);
    eprintln!(
        "[function-invocation weight-matching vs this run @25%: {:.0}%]",
        score * 100.0
    );
    for (i, &f) in funcs.iter().enumerate() {
        eprintln!(
            "[{:>10.2} est | {:>10} actual]  {}",
            est[i],
            actual[i],
            program.module.function(f).name
        );
    }
    ExitCode::SUCCESS
}

/// Runs the entire pipeline over the 14-program suite: compile, lower,
/// profile every standard input, estimate, and weight-match — the
/// full-system traced run `--trace`/`--metrics-out` are built for.
///
/// Profiles come from the artifact cache when warm (default dir
/// `./cache`, override with `--cache-dir`, disable with `--no-cache`);
/// an unopenable cache degrades to uncached execution with a warning,
/// never a failure.
fn suite_report(cache_dir: Option<&str>, no_cache: bool, opt_level: u8) -> ExitCode {
    let cache = if no_cache {
        None
    } else {
        let dir = cache_dir.unwrap_or("cache");
        match cache::Cache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("sfe: cannot open cache dir {dir}: {e}; running uncached");
                None
            }
        }
    };
    let data = if opt_level > 0 {
        bench::load_suite_opt(pool::global(), cache.as_ref(), opt_level)
    } else {
        bench::load_suite_with(pool::global(), cache.as_ref())
    };
    println!(
        "{:<12} {:>8} {:>8} {:>12}  {:>6} {:>6}",
        "program", "funcs", "blocks", "steps", "inv@25", "cs@25"
    );
    for d in &data {
        let scores = estimators::eval::score_program(&d.program, &d.profiles);
        let steps: u64 = d
            .profiles
            .iter()
            .map(|p| p.func_cost.iter().sum::<u64>())
            .sum();
        println!(
            "{:<12} {:>8} {:>8} {:>12}  {:>5.0}% {:>5.0}%",
            d.bench.name,
            d.program.defined_ids().len(),
            d.program.total_blocks(),
            steps,
            scores.invocation_markov_25[1] * 100.0,
            scores.callsites[1] * 100.0,
        );
    }
    ExitCode::SUCCESS
}

/// `sfe reuse [program|file.c]`: the static memory-reuse estimator.
///
/// Predicts each suite program's per-object reuse-distance histogram
/// without executing it (crate `reuse`), collects the exact histogram
/// with the profiler's tracing mode, and weight-matches the two. With
/// no argument, prints the suite-wide table; with a program name (or
/// a `.c` path), a per-object breakdown. Traces are cached as
/// `ReuseProfile` artifacts under their own key space, and the traced
/// runs for a program's inputs fan out on the global pool — the
/// merged histogram is a plain per-bin sum, so it is byte-identical
/// for any pool size.
fn reuse_cmd(which: Option<&str>, cache_dir: Option<&str>, no_cache: bool) -> ExitCode {
    let cache = if no_cache {
        None
    } else {
        // Opt-in by default only when a dir was given: the reuse table
        // is fast enough warm-or-cold that surprise `./cache` writes
        // aren't worth it outside `sfe suite`.
        match cache_dir {
            None => None,
            Some(dir) => match cache::Cache::open(dir) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!("sfe: cannot open cache dir {dir}: {e}; running uncached");
                    None
                }
            },
        }
    };

    // A `.c` path gets a one-off detailed report on empty input.
    if let Some(arg) = which {
        if suite::by_name(arg).is_none() {
            let src = match std::fs::read_to_string(arg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("sfe: `{arg}` is neither a suite program nor a readable file: {e}");
                    return ExitCode::from(2);
                }
            };
            return match reuse_eval(arg, &src, vec![Vec::new()], cache.as_ref(), true) {
                Some(_) => ExitCode::SUCCESS,
                None => ExitCode::FAILURE,
            };
        }
    }

    match which {
        Some(name) => {
            let p = suite::by_name(name).expect("checked above");
            match reuse_eval(p.name, p.source, p.inputs(), cache.as_ref(), true) {
                Some(_) => ExitCode::SUCCESS,
                None => ExitCode::FAILURE,
            }
        }
        None => {
            println!(
                "{:<12} {:>8} {:>6} {:>12} {:>12}  {:>8}",
                "program", "objects", "sites", "traced", "predicted", "match@25"
            );
            let mut ok = true;
            for p in suite::all() {
                ok &= reuse_eval(p.name, p.source, p.inputs(), cache.as_ref(), false).is_some();
            }
            if let Some(c) = &cache {
                c.flush();
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// Short human label for a reuse-distance bin.
fn bin_label(bin: usize) -> String {
    match bin {
        0 => "0".to_string(),
        reuse::COLD_BIN => "cold".to_string(),
        k => format!("<2^{k}"),
    }
}

/// Estimates, traces (cached, pool-parallel over inputs), merges, and
/// scores one program. Prints a table row (or a detailed per-object
/// breakdown). `None` on compile or runtime failure.
fn reuse_eval(
    name: &str,
    source: &str,
    inputs: Vec<Vec<u8>>,
    cache: Option<&cache::Cache>,
    detail: bool,
) -> Option<f64> {
    let module = match minic::compile(source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("sfe: {name}: {}", e.render(source));
            return None;
        }
    };
    let program = flowgraph::build_program(&module);
    let est = reuse::estimate(&program);

    let compiled = profiler::compile(&program);
    let objects = profiler::ObjectMap::for_module(&program.module);
    let mut slots: Vec<Option<Result<profiler::ReuseTrace, profiler::RuntimeError>>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    pool::global().scope(|s| {
        for (slot, input) in slots.iter_mut().zip(&inputs) {
            let compiled = &compiled;
            let objects = &objects;
            s.spawn(move |_| {
                let config = profiler::RunConfig::with_input(input.clone());
                let key = cache::ArtifactKey::derive_reuse(source, &config);
                if let Some(c) = cache {
                    if let Some(t) = c.load_reuse_profile(key) {
                        *slot = Some(Ok(t));
                        return;
                    }
                }
                *slot = Some(compiled.execute_traced(&config, objects).map(|(_, t)| {
                    if let Some(c) = cache {
                        c.store_batched(key, &cache::codec::Artifact::ReuseProfile(t.clone()));
                    }
                    t
                }));
            });
        }
    });
    let mut merged: Option<profiler::ReuseTrace> = None;
    for slot in slots {
        match slot.expect("pool task filled its slot") {
            Ok(t) => match &mut merged {
                None => merged = Some(t),
                Some(m) => m.merge(&t),
            },
            Err(e) => {
                eprintln!("sfe: {name}: runtime error while tracing: {e}");
                return None;
            }
        }
    }
    let trace = merged.expect("at least one input");
    let score = reuse::score(&est, &trace);

    if detail {
        println!("{name}: predicted vs traced reuse distances");
        println!(
            "{:<16} {:>12} {:>12} {:>10} {:>10}",
            "object", "predicted", "traced", "est.bin", "got.bin"
        );
        for (i, obj) in trace.objects.iter().enumerate() {
            let traced_total: u64 = obj.hist.iter().sum();
            let predicted_total: f64 = est.hists[i].iter().sum();
            if traced_total == 0 && predicted_total == 0.0 {
                continue;
            }
            let est_bin = est.hists[i]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(b, _)| b);
            let got_bin = obj
                .hist
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map_or(0, |(b, _)| b);
            println!(
                "{:<16} {:>12.0} {:>12} {:>10} {:>10}",
                obj.name,
                predicted_total,
                traced_total,
                bin_label(est_bin),
                bin_label(got_bin)
            );
        }
        println!(
            "[reuse weight-matching vs exact trace @25%: {:.0}%  ({} traced accesses)]",
            score * 100.0,
            trace.events
        );
    } else {
        println!(
            "{:<12} {:>8} {:>6} {:>12} {:>12}  {:>7.0}%",
            name,
            trace.objects.len(),
            est.hists
                .iter()
                .filter(|h| h.iter().sum::<f64>() > 0.0)
                .count(),
            trace.events,
            est.total().round(),
            score * 100.0
        );
    }
    Some(score)
}

/// `sfe fig10 [--json] [program]`: the measured Figure 10 experiment —
/// optimize the top-k functions under each ranking provider and report
/// the VM steps actually saved on a held-out input. `--json` swaps the
/// table for one machine-readable document (schema `fig10/v1`).
fn fig10_report(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut which: Option<&str> = None;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            name if which.is_none() && !name.starts_with('-') => which = Some(name),
            other => {
                eprintln!("sfe: fig10 does not understand `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let names: Vec<&'static str> = match which {
        None => bench::FIG10_PROGRAMS.to_vec(),
        Some(name) => match bench::FIG10_PROGRAMS.iter().find(|&&p| p == name) {
            Some(&p) => vec![p],
            None => {
                eprintln!(
                    "sfe: fig10 runs on {}; got `{name}`",
                    bench::FIG10_PROGRAMS.join(", ")
                );
                return ExitCode::from(2);
            }
        },
    };
    if json {
        return fig10_json(&names);
    }
    println!("Figure 10 (measured): speedup vs optimization budget, -O3, held-out input");
    for name in names {
        let n = suite::by_name(name)
            .expect("fig10 program in suite")
            .compile()
            .expect("suite program compiles")
            .defined_ids()
            .len();
        let ks: Vec<usize> = (0..=6).chain([n]).collect();
        let p = bench::fig10_measured_one(name, &ks);
        println!();
        println!(
            "{} (baseline {} steps on held-out input)",
            p.name, p.baseline_steps
        );
        print!("  {:<10}", "k");
        for k in &p.ks {
            print!(" {k:>7}");
        }
        println!();
        for c in &p.curves {
            print!("  {:<10}", c.ranking);
            for v in &c.speedups {
                print!(" {v:>7.3}");
            }
            println!();
        }
        print!("  {:<10}", "wall ms");
        let static_curve = &p.curves[0];
        for w in &static_curve.wall_ms {
            print!(" {w:>7.2}");
        }
        println!("  (static-ranked runs)");
        println!(
            "  static rank order: {}",
            p.static_order[..p.static_order.len().min(6)].join(", ")
        );
    }
    ExitCode::SUCCESS
}

/// The machine-readable half of `sfe fig10`: one JSON document with
/// every requested program's measured curves (schema `fig10/v1`).
fn fig10_json(names: &[&'static str]) -> ExitCode {
    use obs::json::Value;
    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let nums = |xs: &[f64]| Value::Arr(xs.iter().map(|&v| Value::Num(v)).collect());
    let programs: Vec<Value> = names
        .iter()
        .map(|&name| {
            let n = suite::by_name(name)
                .expect("fig10 program in suite")
                .compile()
                .expect("suite program compiles")
                .defined_ids()
                .len();
            let ks: Vec<usize> = (0..=6).chain([n]).collect();
            let p = bench::fig10_measured_one(name, &ks);
            let curves: Vec<Value> = p
                .curves
                .iter()
                .map(|c| {
                    obj(vec![
                        ("ranking", Value::Str(c.ranking.to_string())),
                        ("speedups", nums(&c.speedups)),
                        ("wall_ms", nums(&c.wall_ms)),
                    ])
                })
                .collect();
            obj(vec![
                ("baseline_steps", Value::Num(p.baseline_steps as f64)),
                ("curves", Value::Arr(curves)),
                (
                    "ks",
                    Value::Arr(p.ks.iter().map(|&k| Value::Num(k as f64)).collect()),
                ),
                ("name", Value::Str(p.name.to_string())),
                (
                    "static_order",
                    Value::Arr(
                        p.static_order
                            .iter()
                            .map(|f| Value::Str(f.clone()))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("programs", Value::Arr(programs)),
        ("schema", Value::Str("fig10/v1".to_string())),
    ]);
    println!("{doc}");
    ExitCode::SUCCESS
}

fn corpus_report(args: &[String], cache_dir: Option<&str>) -> ExitCode {
    use bench::corpus::{run_corpus, CorpusConfig, EngineMode, HEURISTICS};

    let mut cfg = CorpusConfig {
        cache_dir: cache_dir.map(std::path::PathBuf::from),
        ..CorpusConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> Result<u64, ExitCode> {
            it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                eprintln!("sfe: corpus {what} needs a number");
                ExitCode::from(2)
            })
        };
        match a.as_str() {
            "--count" => match num("--count") {
                Ok(n) => cfg.count = n,
                Err(c) => return c,
            },
            "--seed" => match num("--seed") {
                Ok(n) => cfg.first_seed = n,
                Err(c) => return c,
            },
            "--jobs" => match num("--jobs") {
                Ok(n) => cfg.jobs = Some((n as usize).clamp(1, 256)),
                Err(c) => return c,
            },
            "--mem-budget" => match num("--mem-budget") {
                Ok(mb) => cfg.mem_budget_bytes = mb.max(1) * 1024 * 1024,
                Err(c) => return c,
            },
            "--buckets" => match it.next().map(|s| bench::corpus::parse_buckets(s)) {
                Some(Ok(features)) => cfg.features = features,
                Some(Err(e)) => {
                    eprintln!("sfe: {e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("sfe: corpus --buckets needs a spec");
                    return ExitCode::from(2);
                }
            },
            "--naive" => cfg.mode = EngineMode::Naive,
            other => {
                eprintln!(
                    "sfe: unknown corpus flag `{other}` (see --count, --seed, --buckets, \
                     --jobs, --mem-budget, --naive)"
                );
                return ExitCode::from(2);
            }
        }
    }

    let r = run_corpus(&cfg);
    println!(
        "corpus: {} engine, {} programs (seeds {}..{})",
        r.mode.tag(),
        r.requested,
        cfg.first_seed,
        cfg.first_seed + cfg.count
    );
    println!(
        "  evaluated {} | duplicates {} | vm errors {}",
        r.evaluated, r.duplicates, r.errors
    );
    println!(
        "  {:.1} programs/sec over {:.2} s | latency p50 {:.2} ms p99 {:.2} ms",
        r.programs_per_sec, r.elapsed_s, r.p50_ms, r.p99_ms
    );
    let rss = r.peak_rss_bytes.map_or("n/a".to_string(), |b| {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    });
    println!(
        "  jobs {} (SFE_POOL_THREADS {}) | window {} | peak rss {}",
        r.jobs,
        r.pool_threads_env.as_deref().unwrap_or("unset"),
        r.window,
        rss
    );
    println!("  aggregate digest {:016x}", r.aggregate_digest());
    println!();
    print!("  {:<14} {:>6}", "bucket", "n");
    for h in HEURISTICS {
        print!(" {h:>12}");
    }
    println!("   (median weight-matching score)");
    for b in r.buckets.iter().chain(std::iter::once(&r.total)) {
        print!("  {:<14} {:>6}", b.label, b.count);
        for q in b.quantiles() {
            print!(" {:>12.3}", q[1]);
        }
        println!();
    }
    println!();
    println!("  quartiles over all programs (p25 / p50 / p75):");
    for (h, q) in HEURISTICS.iter().zip(r.total.quantiles()) {
        println!("    {h:<12} {:.3} / {:.3} / {:.3}", q[0], q[1], q[2]);
    }
    ExitCode::SUCCESS
}

/// `sfe serve`: run the resident estimator service (crate `serve`)
/// over stdin/stdout, or over TCP with `--addr`.
fn serve_cmd(args: &[String], cache_dir: Option<&str>, no_cache: bool) -> ExitCode {
    use serve::db::ServeDb;

    let mut addr: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut preload_suite = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => {
                    eprintln!("sfe: serve --addr needs host:port");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match it.next().map(|s| s.parse()) {
                Some(Ok(n)) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("sfe: serve --jobs needs a positive number");
                    return ExitCode::from(2);
                }
            },
            "--suite" => preload_suite = true,
            other => {
                eprintln!("sfe: unknown serve flag `{other}` (see --addr, --jobs, --suite)");
                return ExitCode::from(2);
            }
        }
    }

    let cache = match (no_cache, cache_dir) {
        (true, _) | (false, None) => None,
        (false, Some(dir)) => match cache::Cache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("sfe: cannot open cache {dir}: {e} (serving uncached)");
                None
            }
        },
    };
    let db = std::sync::Arc::new(ServeDb::new(jobs, cache));
    if preload_suite {
        for p in suite::all() {
            if let Err(e) = db.upsert_with_inputs(p.name, p.source, Some(p.inputs())) {
                eprintln!("sfe: suite preload failed for {}: {}", p.name, e.message());
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "sfe serve: preloaded {} suite programs",
            db.program_names().len()
        );
    }

    match addr {
        None => match serve::server::serve_stdio(&db) {
            Ok(n) => {
                db.flush_cache();
                eprintln!("sfe serve: handled {n} requests");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sfe serve: {e}");
                ExitCode::FAILURE
            }
        },
        Some(addr) => match serve::server::spawn_tcp(db, &addr) {
            Ok(server) => {
                // Parsed by scripts (the CI smoke step) to discover the
                // bound port when `:0` was requested.
                println!("sfe serve: listening on {}", server.addr());
                match server.join() {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("sfe serve: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("sfe serve: cannot bind {addr}: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

/// `sfe storm`: drive the service with the deterministic synthetic
/// workload and report q/s, latency percentiles, and digests. With
/// `--assert-qps` / `--assert-p99-ms` the exit code gates CI.
fn storm_cmd(args: &[String]) -> ExitCode {
    use serve::storm::{run_in_process, run_tcp, StormConfig};

    let mut config = StormConfig::default();
    let mut jobs: Option<usize> = None;
    let mut addr: Option<String> = None;
    let mut assert_qps: Option<f64> = None;
    let mut assert_p99_ms: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> Option<u64> {
            match it.next().map(|s| s.parse()) {
                Some(Ok(n)) => Some(n),
                _ => {
                    eprintln!("sfe: storm {what} needs a number");
                    None
                }
            }
        };
        match a.as_str() {
            "--clients" => match num("--clients") {
                Some(n) if n > 0 => config.clients = n as usize,
                _ => return ExitCode::from(2),
            },
            "--requests" => match num("--requests") {
                Some(n) => config.requests = n as usize,
                None => return ExitCode::from(2),
            },
            "--seed" => match num("--seed") {
                Some(n) => config.seed = n,
                None => return ExitCode::from(2),
            },
            "--update-pct" => match num("--update-pct") {
                Some(n) if n <= 100 => config.update_pct = n as u32,
                _ => return ExitCode::from(2),
            },
            "--jobs" => match num("--jobs") {
                Some(n) if n > 0 => jobs = Some(n as usize),
                _ => return ExitCode::from(2),
            },
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => {
                    eprintln!("sfe: storm --addr needs host:port");
                    return ExitCode::from(2);
                }
            },
            "--assert-qps" => match it.next().map(|s| s.parse()) {
                Some(Ok(x)) => assert_qps = Some(x),
                _ => {
                    eprintln!("sfe: storm --assert-qps needs a number");
                    return ExitCode::from(2);
                }
            },
            "--assert-p99-ms" => match it.next().map(|s| s.parse()) {
                Some(Ok(x)) => assert_p99_ms = Some(x),
                _ => {
                    eprintln!("sfe: storm --assert-p99-ms needs a number");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "sfe: unknown storm flag `{other}` (see --clients, --requests, --seed, \
                     --update-pct, --jobs, --addr, --assert-qps, --assert-p99-ms)"
                );
                return ExitCode::from(2);
            }
        }
    }

    let (report, jobs_used) = match addr {
        Some(addr) => match run_tcp(&config, &addr) {
            Ok(r) => (r, 0),
            Err(e) => {
                eprintln!("sfe storm: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let db = std::sync::Arc::new(serve::db::ServeDb::new(jobs, None));
            let jobs_used = db.workers();
            (run_in_process(&config, &db), jobs_used)
        }
    };

    println!("{}", report.to_value(&config, jobs_used));

    let mut ok = true;
    if report.errors > 0 {
        eprintln!("sfe storm: {} error responses", report.errors);
        ok = false;
    }
    if let Some(min) = assert_qps {
        if report.qps < min {
            eprintln!("sfe storm: qps {:.1} below floor {min}", report.qps);
            ok = false;
        }
    }
    if let Some(max) = assert_p99_ms {
        if report.p99_us as f64 / 1000.0 > max {
            eprintln!(
                "sfe storm: p99 {:.2} ms above ceiling {max} ms",
                report.p99_us as f64 / 1000.0
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
