//! The optimizer's ground rules, checked against the whole benchmark
//! suite:
//!
//! 1. Lift + lower with no passes (`roundtrip`) is observably
//!    identical to the original program — including `steps` and the
//!    complete profile.
//! 2. At every optimization level, output bytes, exit code, and all
//!    *count* profile counters (blocks, edges, branches, call sites,
//!    function entries) stay byte-identical; only `steps` and
//!    `func_cost` may change.
//! 3. Level 3 on `compress` actually pays: ≥1.25× fewer VM steps.

use opt::{optimize, roundtrip, OptPlan};
use profiler::bytecode::{compile, CompiledProgram};
use profiler::{Profile, RunConfig, RunOutcome};

fn run_cp(cp: &CompiledProgram, input: &[u8], max_steps: u64) -> RunOutcome {
    let config = RunConfig {
        input: input.to_vec(),
        max_steps,
        ..RunConfig::default()
    };
    cp.execute(&config).expect("suite programs run clean")
}

/// Everything except `steps`/`func_cost` — the optimizer's invariants.
#[allow(clippy::type_complexity)]
fn count_counters(p: &Profile) -> (&Vec<Vec<u64>>, &Vec<(u64, u64)>, &Vec<u64>, &Vec<u64>) {
    (
        &p.block_counts,
        &p.branch_counts,
        &p.call_site_counts,
        &p.func_counts,
    )
}

#[test]
fn roundtrip_is_identity_across_suite() {
    for bench in suite::all() {
        let program = bench.compile().unwrap();
        let cp = compile(&program);
        let rt = roundtrip(&cp);
        for input in bench.inputs() {
            let a = run_cp(&cp, &input, 400_000_000);
            let b = run_cp(&rt, &input, 400_000_000);
            assert_eq!(a.exit_code, b.exit_code, "{}: exit", bench.name);
            assert_eq!(a.output, b.output, "{}: output", bench.name);
            assert_eq!(a.steps, b.steps, "{}: steps", bench.name);
            assert_eq!(a.profile, b.profile, "{}: profile", bench.name);
        }
    }
}

#[test]
fn optimized_outputs_match_across_suite_and_levels() {
    for bench in suite::all() {
        let program = bench.compile().unwrap();
        let cp = compile(&program);
        let baselines: Vec<(Vec<u8>, RunOutcome)> = bench
            .inputs()
            .into_iter()
            .map(|input| {
                let out = run_cp(&cp, &input, 400_000_000);
                (input, out)
            })
            .collect();
        for level in 1..=3u8 {
            let (ocp, _stats) = optimize(&cp, &OptPlan::full(&cp, level));
            for (input, base) in &baselines {
                // 4× headroom: recosting may move a run across the
                // step limit in either direction near the boundary.
                let out = run_cp(&ocp, input, 1_600_000_000);
                let ctx = format!("{} @ O{level}", bench.name);
                assert_eq!(base.exit_code, out.exit_code, "{ctx}: exit");
                assert_eq!(base.output, out.output, "{ctx}: output");
                assert_eq!(
                    count_counters(&base.profile),
                    count_counters(&out.profile),
                    "{ctx}: count counters"
                );
            }
        }
    }
}

#[test]
fn compress_level3_speedup_at_least_1_25x() {
    let bench = suite::by_name("compress").unwrap();
    let program = bench.compile().unwrap();
    let cp = compile(&program);
    let (ocp, stats) = optimize(&cp, &OptPlan::full(&cp, 3));
    let input = bench.inputs().remove(0);
    let before = run_cp(&cp, &input, 400_000_000).steps;
    let after = run_cp(&ocp, &input, 1_600_000_000).steps;
    let speedup = before as f64 / after as f64;
    assert!(
        speedup >= 1.25,
        "compress speedup {speedup:.3} ({before} -> {after} steps, {stats:?})"
    );
}
