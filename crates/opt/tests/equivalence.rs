//! The optimizer's ground rules, checked against the whole benchmark
//! suite:
//!
//! 1. Lift + lower with no passes (`roundtrip`) is observably
//!    identical to the original program — including `steps` and the
//!    complete profile.
//! 2. At every optimization level, output bytes, exit code, and all
//!    *count* profile counters (blocks, edges, branches, call sites,
//!    function entries) stay byte-identical; only `steps` and
//!    `func_cost` may change.
//! 3. Level 3 on `compress` actually pays: ≥1.90× fewer VM steps
//!    (measured 1.98× with the full pipeline; the floor keeps ~4%
//!    margin for op-stream jitter).

use opt::{optimize, roundtrip, OptPlan};
use profiler::bytecode::{compile, CompiledProgram};
use profiler::{Profile, RunConfig, RunOutcome};

fn run_cp(cp: &CompiledProgram, input: &[u8], max_steps: u64) -> RunOutcome {
    let config = RunConfig {
        input: input.to_vec(),
        max_steps,
        ..RunConfig::default()
    };
    cp.execute(&config).expect("suite programs run clean")
}

/// Everything except `steps`/`func_cost` — the optimizer's invariants.
#[allow(clippy::type_complexity)]
fn count_counters(p: &Profile) -> (&Vec<Vec<u64>>, &Vec<(u64, u64)>, &Vec<u64>, &Vec<u64>) {
    (
        &p.block_counts,
        &p.branch_counts,
        &p.call_site_counts,
        &p.func_counts,
    )
}

#[test]
fn roundtrip_is_identity_across_suite() {
    for bench in suite::all() {
        let program = bench.compile().unwrap();
        let cp = compile(&program);
        let rt = roundtrip(&cp);
        for input in bench.inputs() {
            let a = run_cp(&cp, &input, 400_000_000);
            let b = run_cp(&rt, &input, 400_000_000);
            assert_eq!(a.exit_code, b.exit_code, "{}: exit", bench.name);
            assert_eq!(a.output, b.output, "{}: output", bench.name);
            assert_eq!(a.steps, b.steps, "{}: steps", bench.name);
            assert_eq!(a.profile, b.profile, "{}: profile", bench.name);
        }
    }
}

#[test]
fn optimized_outputs_match_across_suite_and_levels() {
    for bench in suite::all() {
        let program = bench.compile().unwrap();
        let cp = compile(&program);
        let baselines: Vec<(Vec<u8>, RunOutcome)> = bench
            .inputs()
            .into_iter()
            .map(|input| {
                let out = run_cp(&cp, &input, 400_000_000);
                (input, out)
            })
            .collect();
        for level in 1..=3u8 {
            let (ocp, _stats) = optimize(&cp, &OptPlan::full(&cp, level));
            for (input, base) in &baselines {
                // 4× headroom: recosting may move a run across the
                // step limit in either direction near the boundary.
                let out = run_cp(&ocp, input, 1_600_000_000);
                let ctx = format!("{} @ O{level}", bench.name);
                assert_eq!(base.exit_code, out.exit_code, "{ctx}: exit");
                assert_eq!(base.output, out.output, "{ctx}: output");
                assert_eq!(
                    count_counters(&base.profile),
                    count_counters(&out.profile),
                    "{ctx}: count counters"
                );
            }
        }
    }
}

#[test]
fn hot_functions_pack_first_in_the_op_stream() {
    let bench = suite::by_name("compress").unwrap();
    let program = bench.compile().unwrap();
    let cp = compile(&program);
    // Mark the last defined function as by far the hottest; layout
    // must move its body to the front of the flat op stream without
    // disturbing observable behavior.
    let hot = (0..cp.funcs.len())
        .rev()
        .find(|&f| cp.funcs[f].code.1 > cp.funcs[f].code.0)
        .expect("compress has defined functions");
    let mut plan = OptPlan::full(&cp, 2);
    plan.block_freqs[hot] = vec![1e6];
    let (ocp, _) = optimize(&cp, &plan);
    for f in (0..ocp.funcs.len()).filter(|&f| f != hot) {
        if ocp.funcs[f].code.1 > ocp.funcs[f].code.0 {
            assert!(
                ocp.funcs[hot].code.0 < ocp.funcs[f].code.0,
                "hot {} at {} must precede {} at {}",
                ocp.funcs[hot].name,
                ocp.funcs[hot].code.0,
                ocp.funcs[f].name,
                ocp.funcs[f].code.0,
            );
        }
    }
    let input = bench.inputs().remove(0);
    let base = run_cp(&cp, &input, 400_000_000);
    let out = run_cp(&ocp, &input, 1_600_000_000);
    assert_eq!(base.exit_code, out.exit_code);
    assert_eq!(base.output, out.output);
    assert_eq!(count_counters(&base.profile), count_counters(&out.profile));
}

#[test]
fn multi_level_inlining_terminates_on_mutual_recursion() {
    // A call cycle with no non-recursive leaves: the iterative
    // inliner must stop on its depth/cycle guards rather than chase
    // the cycle until the budget is gone, and the result must still
    // behave identically.
    let src = r#"
        int is_even(int n);
        int is_odd(int n) {
            if (n == 0) return 0;
            return is_even(n - 1);
        }
        int is_even(int n) {
            if (n == 0) return 1;
            return is_odd(n - 1);
        }
        int main() {
            int acc = 0;
            int i = 0;
            while (i < 40) {
                acc = acc + is_even(i);
                i = i + 1;
            }
            printf("%d\n", acc);
            return 0;
        }
    "#;
    let module = minic::compile(src).expect("test program compiles");
    let cp = compile(&flowgraph::build_program(&module));
    let mut plan = OptPlan::full(&cp, 3);
    // Pretend every call site is scorching and the budget is
    // effectively unlimited; the depth and cycle guards alone must
    // bound the work.
    plan.site_freqs = vec![1e9; plan.site_freqs.len()];
    plan.inline_budget = 100_000;
    let (ocp, stats) = optimize(&cp, &plan);
    assert!(stats.inlined_calls > 0, "recursive sites admitted");
    let base = run_cp(&cp, &[], 400_000_000);
    let out = run_cp(&ocp, &[], 1_600_000_000);
    assert_eq!(base.exit_code, out.exit_code);
    assert_eq!(base.output, out.output);
    assert_eq!(count_counters(&base.profile), count_counters(&out.profile));
}

#[test]
fn compress_level3_speedup_at_least_1_90x() {
    let bench = suite::by_name("compress").unwrap();
    let program = bench.compile().unwrap();
    let cp = compile(&program);
    let (ocp, stats) = optimize(&cp, &OptPlan::full(&cp, 3));
    let input = bench.inputs().remove(0);
    let before = run_cp(&cp, &input, 400_000_000).steps;
    let after = run_cp(&ocp, &input, 1_600_000_000).steps;
    let speedup = before as f64 / after as f64;
    assert!(
        speedup >= 1.90,
        "compress speedup {speedup:.3} ({before} -> {after} steps, {stats:?})"
    );
}
