//! Frame-slot alias analysis: proves a callee's address-taken locals
//! never escape, so its frame can be merged into a caller's by the
//! inliner.
//!
//! Splicing a callee relocates its locals from a fresh frame at the
//! top of the stack to a bump-allocated region inside the caller's
//! frame. Every *direct* slot access (`LoadLocal`, `StoreLocal`, …)
//! is rebased by the splice and keeps working; the hazard is a
//! *materialized* frame address (`LeaLocal`, `IndexAddrLeaL`): its
//! numeric value differs between the two layouts, so any operation
//! that observes that value — or lets it outlive the inlined body —
//! can diverge from the unoptimized run.
//!
//! The analysis is a flow-insensitive taint fixpoint over the callee's
//! op range. Frame-address materializations seed the taint; taint
//! propagates through copies, pointer arithmetic with clean offsets,
//! and stores into statically-addressed frame slots. The callee is
//! *contained* (inlinable) iff no tainted value ever:
//!
//! - has its numeric value observed: converted to an int/float class,
//!   compared against a clean value, fed to `Num`-mode arithmetic or
//!   a `SwitchJump`, or negated/complemented;
//! - escapes the activation: stored through a pointer or into a
//!   global, returned, or passed to any call (direct, indirect, or
//!   builtin).
//!
//! Two *tainted* operands may be compared or differenced freely: all
//! tainted values in one activation are addresses into the same frame
//! region, and the splice shifts them uniformly, so their ordering and
//! differences are invariant. Likewise truthiness tests are safe — a
//! frame address is a large nonzero word in both layouts — and plain
//! dereference through a tainted pointer is safe because the pointee
//! slot moves together with the address.
//!
//! Flow-insensitivity is sound here (taint only ever grows along any
//! path) and cheap: inlinable callees are at most `MAX_INLINE_OPS`
//! ops, and the fixpoint is quadratic in that bound at worst.

use profiler::bytecode::{ArithMode, Op};
use profiler::interp::TyClass;
use std::collections::HashSet;

/// Whether any op in `ops` materializes a frame address at all. When
/// false the taint analysis is vacuous and the body trivially safe.
pub fn takes_frame_address(ops: &[Op]) -> bool {
    ops.iter().any(|op| {
        matches!(
            op,
            Op::LeaLocal { .. } | Op::IndexAddrLeaL { .. } | Op::LoadIdxLeaL { .. }
        )
    })
}

/// The arithmetic-mode taint rule: given the operands' taint, either
/// the result's taint, or `None` when the combination observes a
/// tainted address (escape).
fn mode_rule(mode: ArithMode, ta: bool, tb: bool) -> Option<bool> {
    match mode {
        // Comparing two tainted addresses is shift-invariant;
        // tainted-vs-clean observes the absolute value.
        ArithMode::Cmp(_) => (ta == tb).then_some(false),
        ArithMode::PtrDiff(_) => (ta == tb).then_some(false),
        // ptr ± int derives a pointer in the same frame region; a
        // tainted integer operand would observe an address.
        ArithMode::PtrAddL(_) => (!tb).then_some(ta),
        ArithMode::PtrAddR(_) => (!ta).then_some(tb),
        ArithMode::PtrSubInt(_) => (!tb).then_some(ta),
        // Plain numeric arithmetic observes operand values.
        ArithMode::Num(_) => (!ta && !tb).then_some(false),
    }
}

/// A store class that preserves pointer values verbatim. `Int`/`Float`
/// conversion of a tainted pointer observes its numeric value.
fn class_preserves_ptr(class: TyClass) -> bool {
    !matches!(class, TyClass::Int | TyClass::Float)
}

struct Taint {
    regs: HashSet<u16>,
    slots: HashSet<u32>,
}

impl Taint {
    fn r(&self, r: u16) -> bool {
        self.regs.contains(&r)
    }
    fn s(&self, off: u32) -> bool {
        self.slots.contains(&off)
    }
    /// Any frame slot tainted — the conservative answer for
    /// dynamically indexed frame reads.
    fn any_slot(&self) -> bool {
        !self.slots.is_empty()
    }
    fn taint_reg(&mut self, r: u16, t: bool) -> bool {
        t && self.regs.insert(r)
    }
    fn taint_slot(&mut self, off: u32, t: bool) -> bool {
        t && self.slots.insert(off)
    }
}

/// Runs taint propagation over `ops` to a fixpoint.
fn propagate(ops: &[Op]) -> Taint {
    let mut t = Taint {
        regs: HashSet::new(),
        slots: HashSet::new(),
    };
    loop {
        let mut changed = false;
        for op in ops {
            changed |= match *op {
                Op::LeaLocal { dst, .. } => t.taint_reg(dst, true),
                Op::IndexAddrLeaL { dst, idx_off, .. } => {
                    // Seeds taint regardless of the index slot; the
                    // escape pass rejects a tainted index.
                    let _ = idx_off;
                    t.taint_reg(dst, true)
                }
                Op::Mov { dst, src } | Op::ToPtr { dst, src } => t.taint_reg(dst, t.r(src)),
                Op::Conv { dst, src, .. } => t.taint_reg(dst, t.r(src)),
                Op::LoadLocal { dst, off } => t.taint_reg(dst, t.s(off)),
                Op::LoadLocal2 { dst, off_a, off_b } => {
                    let a = t.taint_reg(dst, t.s(off_a));
                    let b = t.taint_reg(dst + 1, t.s(off_b));
                    a | b
                }
                Op::LoadLocalImm { dst, off, .. } => t.taint_reg(dst, t.s(off)),
                Op::StoreLocal { off, src, dst, .. } => {
                    let v = t.r(src);
                    t.taint_slot(off, v) | t.taint_reg(dst, v)
                }
                // Deref through a tainted pointer reads a frame slot,
                // which may hold a tainted value stored by aliasing.
                Op::Load { dst, addr, .. } => t.taint_reg(dst, t.r(addr) && t.any_slot()),
                Op::LoadIdx { dst, base, .. } => t.taint_reg(dst, t.r(base) && t.any_slot()),
                Op::LoadIdxLL { dst, off_a, .. } => t.taint_reg(dst, t.s(off_a) && t.any_slot()),
                Op::LoadIdxLeaL { dst, .. } => t.taint_reg(dst, t.any_slot()),
                Op::IndexAddr { dst, base, .. } => t.taint_reg(dst, t.r(base)),
                Op::IndexAddrLL { dst, off_a, .. } => t.taint_reg(dst, t.s(off_a)),
                Op::MemberAddr { dst, src, .. } => t.taint_reg(dst, t.r(src)),
                Op::IncDecLocal { dst, off, .. } => t.taint_reg(dst, t.s(off)),
                Op::IncDec { dst, addr, .. } => t.taint_reg(dst, t.r(addr) && t.any_slot()),
                Op::CopyWords { dst, dst_addr, .. } => t.taint_reg(dst, t.r(dst_addr)),
                Op::Arith {
                    dst, a, b, mode, ..
                } => {
                    let v = mode_rule(mode, t.r(a), t.r(b)).unwrap_or(false);
                    t.taint_reg(dst, v)
                }
                Op::ArithLL {
                    dst,
                    off_a,
                    off_b,
                    mode,
                    ..
                } => {
                    let v = mode_rule(mode, t.s(off_a), t.s(off_b)).unwrap_or(false);
                    t.taint_reg(dst, v)
                }
                Op::ArithLI { dst, off, mode, .. } => {
                    let v = mode_rule(mode, t.s(off), false).unwrap_or(false);
                    t.taint_reg(dst, v)
                }
                Op::ArithRL { dst, off, mode, .. } => {
                    let v = mode_rule(mode, t.r(dst), t.s(off)).unwrap_or(false);
                    t.taint_reg(dst, v)
                }
                Op::ArithRI { dst, mode, .. } => {
                    let v = mode_rule(mode, t.r(dst), false).unwrap_or(false);
                    t.taint_reg(dst, v)
                }
                Op::StoreRR {
                    off,
                    a,
                    b,
                    mode,
                    dst,
                    ..
                } => {
                    let v = mode_rule(mode, t.r(a), t.r(b)).unwrap_or(false);
                    t.taint_slot(off, v) | t.taint_reg(dst, v)
                }
                Op::StoreLL {
                    off,
                    off_a,
                    off_b,
                    mode,
                    dst,
                    ..
                } => {
                    let v = mode_rule(mode, t.s(off_a), t.s(off_b)).unwrap_or(false);
                    t.taint_slot(off, v) | t.taint_reg(dst, v)
                }
                Op::StoreLI {
                    off,
                    off_a,
                    mode,
                    dst,
                    ..
                } => {
                    let v = mode_rule(mode, t.s(off_a), false).unwrap_or(false);
                    t.taint_slot(off, v) | t.taint_reg(dst, v)
                }
                Op::StoreRL {
                    off,
                    off_b,
                    mode,
                    dst,
                    ..
                } => {
                    let v = mode_rule(mode, t.r(dst), t.s(off_b)).unwrap_or(false);
                    t.taint_slot(off, v) | t.taint_reg(dst, v)
                }
                Op::StoreRI { off, mode, dst, .. } => {
                    let v = mode_rule(mode, t.r(dst), false).unwrap_or(false);
                    t.taint_slot(off, v) | t.taint_reg(dst, v)
                }
                Op::RmwLocal {
                    off,
                    src,
                    mode,
                    dst,
                    ..
                } => {
                    let v = mode_rule(mode, t.s(off), t.r(src)).unwrap_or(false);
                    t.taint_slot(off, v) | t.taint_reg(dst, v)
                }
                _ => false,
            };
        }
        if !changed {
            return t;
        }
    }
}

/// Whether a tainted value escapes or is observed anywhere in `ops`,
/// under the final taint assignment `t`.
fn escapes(ops: &[Op], t: &Taint) -> bool {
    let call_args_tainted = |argbase: u16, nargs: u16| (argbase..argbase + nargs).any(|r| t.r(r));
    ops.iter().any(|op| match *op {
        // Value observation.
        Op::Neg { src, .. } | Op::BitNot { src, .. } => t.r(src),
        Op::Conv { src, class, .. } => t.r(src) && !class_preserves_ptr(class),
        Op::SwitchJump { src, .. } => t.r(src),
        Op::Arith { a, b, mode, .. } => mode_rule(mode, t.r(a), t.r(b)).is_none(),
        Op::ArithLL {
            off_a, off_b, mode, ..
        } => mode_rule(mode, t.s(off_a), t.s(off_b)).is_none(),
        Op::ArithLI { off, mode, .. } => mode_rule(mode, t.s(off), false).is_none(),
        Op::ArithRL { dst, off, mode, .. } => mode_rule(mode, t.r(dst), t.s(off)).is_none(),
        Op::ArithRI { dst, mode, .. } => mode_rule(mode, t.r(dst), false).is_none(),
        Op::CmpBranchLL { off_a, off_b, .. } => t.s(off_a) != t.s(off_b),
        Op::CmpBranchLI { off, .. } => t.s(off),
        Op::CmpBranchRR { a, b, .. } => t.r(a) != t.r(b),
        Op::CmpBranchRL { a, off, .. } => t.r(a) != t.s(off),
        Op::CmpBranchRI { a, .. } => t.r(a),
        // Indexing by an address observes it.
        Op::IndexAddr { idx, .. } | Op::LoadIdx { idx, .. } => t.r(idx),
        Op::IndexAddrLL { off_b, .. } | Op::LoadIdxLL { off_b, .. } => t.s(off_b),
        Op::IndexAddrPL { idx_off, .. }
        | Op::IndexAddrLeaL { idx_off, .. }
        | Op::LoadIdxPL { idx_off, .. }
        | Op::LoadIdxLeaL { idx_off, .. } => t.s(idx_off),
        // Escape beyond the activation.
        Op::StoreLocal { src, class, .. } => t.r(src) && !class_preserves_ptr(class),
        Op::StoreGlobal { src, .. } => t.r(src),
        Op::Store { src, .. } => t.r(src),
        Op::Rmw { addr, src, .. } => t.r(src) || (t.r(addr) && t.any_slot()),
        Op::RmwLocal {
            off,
            src,
            mode,
            class,
            ..
        } => mode_rule(mode, t.s(off), t.r(src))
            .map(|v| v && !class_preserves_ptr(class))
            .unwrap_or(true),
        Op::RmwGlobal { src, mode, .. } => mode_rule(mode, false, t.r(src)) != Some(false),
        Op::StoreRR {
            a, b, mode, class, ..
        } => mode_rule(mode, t.r(a), t.r(b))
            .map(|v| v && !class_preserves_ptr(class))
            .unwrap_or(true),
        Op::StoreLL {
            off_a,
            off_b,
            mode,
            class,
            ..
        } => mode_rule(mode, t.s(off_a), t.s(off_b))
            .map(|v| v && !class_preserves_ptr(class))
            .unwrap_or(true),
        Op::StoreLI {
            off_a, mode, class, ..
        } => mode_rule(mode, t.s(off_a), false)
            .map(|v| v && !class_preserves_ptr(class))
            .unwrap_or(true),
        Op::StoreRL {
            dst,
            off_b,
            mode,
            class,
            ..
        } => mode_rule(mode, t.r(dst), t.s(off_b))
            .map(|v| v && !class_preserves_ptr(class))
            .unwrap_or(true),
        Op::StoreRI {
            dst, mode, class, ..
        } => mode_rule(mode, t.r(dst), false)
            .map(|v| v && !class_preserves_ptr(class))
            .unwrap_or(true),
        // A tainted value copied wholesale could smuggle a frame
        // address out through the destination pointer.
        Op::CopyWords { dst_addr, src, .. } => (t.r(dst_addr) || t.r(src)) && t.any_slot(),
        Op::Ret { src, .. } => t.r(src),
        Op::CallDirect { argbase, nargs, .. } => call_args_tainted(argbase, nargs),
        Op::CallBuiltin { argbase, nargs, .. } => call_args_tainted(argbase, nargs),
        Op::CallIndirect {
            callee,
            argbase,
            nargs,
            ..
        } => t.r(callee) || call_args_tainted(argbase, nargs),
        _ => false,
    })
}

/// Whether a callee body's frame addresses are *contained*: every
/// materialized frame address is only ever dereferenced, compared
/// against sibling frame addresses, or offset by clean integers —
/// never observed numerically, stored beyond the frame, returned, or
/// passed onward. Contained callees are safe to inline even though
/// the splice relocates their frame.
pub fn frame_contained(ops: &[Op]) -> bool {
    if !takes_frame_address(ops) {
        return true;
    }
    let t = propagate(ops);
    !escapes(ops, &t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::ast::BinOp;

    fn lea(dst: u16) -> Op {
        Op::LeaLocal { dst, off: 0 }
    }

    #[test]
    fn no_address_taken_is_trivially_contained() {
        let ops = [
            Op::LoadLocal { dst: 0, off: 0 },
            Op::Ret { src: 0, tick: 1 },
        ];
        assert!(frame_contained(&ops));
    }

    #[test]
    fn deref_only_is_contained() {
        let ops = [
            lea(0),
            Op::Load {
                dst: 1,
                addr: 0,
                tick: 1,
            },
            Op::Store {
                addr: 0,
                src: 2,
                class: TyClass::Int,
                dst: 2,
                tick: 1,
            },
            Op::Ret { src: 1, tick: 1 },
        ];
        assert!(frame_contained(&ops));
    }

    #[test]
    fn returning_frame_address_escapes() {
        let ops = [lea(0), Op::Ret { src: 0, tick: 1 }];
        assert!(!frame_contained(&ops));
    }

    #[test]
    fn passing_frame_address_to_call_escapes() {
        let ops = [
            lea(3),
            Op::CallDirect {
                func: 7,
                argbase: 3,
                nargs: 1,
                dst: 3,
                tick: 1,
            },
            Op::Ret { src: 3, tick: 1 },
        ];
        assert!(!frame_contained(&ops));
    }

    #[test]
    fn tainted_vs_tainted_compare_is_contained() {
        let ops = [
            lea(0),
            Op::Mov { dst: 1, src: 0 },
            Op::Arith {
                dst: 2,
                a: 0,
                b: 1,
                mode: ArithMode::Cmp(BinOp::Lt),
                tick: 1,
            },
            Op::Ret { src: 2, tick: 1 },
        ];
        assert!(frame_contained(&ops));
    }

    #[test]
    fn tainted_vs_clean_compare_escapes() {
        let ops = [
            lea(0),
            Op::Const {
                dst: 1,
                v: profiler::Value::Int(0),
            },
            Op::Arith {
                dst: 2,
                a: 0,
                b: 1,
                mode: ArithMode::Cmp(BinOp::Eq),
                tick: 1,
            },
            Op::Ret { src: 2, tick: 1 },
        ];
        assert!(!frame_contained(&ops));
    }

    #[test]
    fn pointer_walk_with_clean_offset_is_contained() {
        let ops = [
            lea(0),
            Op::Const {
                dst: 1,
                v: profiler::Value::Int(1),
            },
            Op::Arith {
                dst: 0,
                a: 0,
                b: 1,
                mode: ArithMode::PtrAddL(1),
                tick: 1,
            },
            Op::Load {
                dst: 2,
                addr: 0,
                tick: 1,
            },
            Op::Ret { src: 2, tick: 1 },
        ];
        assert!(frame_contained(&ops));
    }

    #[test]
    fn frame_address_through_slot_roundtrip_tracked() {
        // &x stored into a (Ptr-class) local, reloaded, returned: the
        // taint survives the slot round-trip and the Ret rejects it.
        let ops = [
            lea(0),
            Op::StoreLocal {
                off: 4,
                src: 0,
                class: TyClass::Ptr,
                dst: 0,
            },
            Op::LoadLocal { dst: 1, off: 4 },
            Op::Ret { src: 1, tick: 1 },
        ];
        assert!(!frame_contained(&ops));
    }

    #[test]
    fn numeric_observation_escapes() {
        let ops = [
            lea(0),
            Op::Conv {
                dst: 1,
                src: 0,
                class: TyClass::Int,
            },
            Op::Ret { src: 1, tick: 1 },
        ];
        assert!(!frame_contained(&ops));
    }
}
