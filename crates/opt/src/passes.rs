//! The scalar pass pipeline over chunk IR: constant
//! folding/propagation with branch simplification, dead-code
//! elimination, hot-chunk superinstruction fusion, hot-path layout,
//! and dispatch-cost recosting.
//!
//! All passes run only on budgeted functions and assume the recost
//! pass follows: they drop or rewrite batched-tick payloads freely,
//! because [`recost`] re-derives every tick under the dispatch-cost
//! model (one step per executed op, counter bumps free). Observable
//! behaviour — output bytes, exit state, and every *count* profile
//! counter — is preserved exactly; only `steps` and `func_cost`
//! change, which is the optimization being measured.

use crate::ir::{drop_redundant_jumps, FuncIr};
use crate::ops_info;
use profiler::bytecode::{arith, cmp_vals, CompiledProgram, Op, SwitchTable, NONE32};
use profiler::interp::convert_for_class;
use profiler::Value;
use std::collections::{HashMap, HashSet, VecDeque};

/// Frame-slot ranges larger than this are invalidated rather than
/// tracked word-by-word when zeroed (keeps the fold maps small).
const MAX_TRACKED_ZERO: u32 = 64;

/// Chunk-local constant folding, propagation, and branch
/// simplification. Returns the number of folds (constant rewrites and
/// statically resolved branches).
///
/// Tracking is killed conservatively: any op that can write memory
/// through a pointer — or call code that might — forgets every frame
/// slot, because frame addresses escape via `LeaLocal`. Resolved
/// counted branches are replaced by [`Op::BumpBranch`], so the branch
/// profile stays byte-identical.
pub fn fold(ir: &mut FuncIr, cp: &CompiledProgram) -> u64 {
    let mut folded = 0;
    for chunk in ir.chunks.iter_mut().filter(|c| !c.dead) {
        let mut regs: HashMap<u16, Value> = HashMap::new();
        let mut slots: HashMap<u32, Value> = HashMap::new();
        let mut out = Vec::with_capacity(chunk.ops.len());
        // A statically resolved branch truncates the chunk: the ops
        // after it are unreachable, and since resolution is
        // input-independent they never execute unoptimized either.
        'ops: for &op in &chunk.ops {
            match op {
                Op::Const { dst, v } => {
                    regs.insert(dst, v);
                    out.push(op);
                }
                Op::Mov { dst, src } => match regs.get(&src).copied() {
                    Some(v) => {
                        regs.insert(dst, v);
                        out.push(Op::Const { dst, v });
                        folded += 1;
                    }
                    None => {
                        regs.remove(&dst);
                        out.push(op);
                    }
                },
                Op::LoadLocal { dst, off } => match slots.get(&off).copied() {
                    Some(v) => {
                        regs.insert(dst, v);
                        out.push(Op::Const { dst, v });
                        folded += 1;
                    }
                    None => {
                        regs.remove(&dst);
                        out.push(op);
                    }
                },
                Op::LoadLocal2 { dst, off_a, off_b } => {
                    upsert(&mut regs, dst, slots.get(&off_a).copied());
                    upsert(&mut regs, dst + 1, slots.get(&off_b).copied());
                    out.push(op);
                }
                Op::LoadLocalImm { dst, off, imm } => {
                    upsert(&mut regs, dst, slots.get(&off).copied());
                    regs.insert(dst + 1, Value::Int(imm));
                    out.push(op);
                }
                Op::StoreLocal {
                    off,
                    src,
                    class,
                    dst,
                } => {
                    let v = regs.get(&src).map(|&v| convert_for_class(class, v));
                    upsert(&mut slots, off, v);
                    upsert(&mut regs, dst, v);
                    out.push(op);
                }
                Op::StoreGlobal {
                    src, class, dst, ..
                } => {
                    let v = regs.get(&src).map(|&v| convert_for_class(class, v));
                    upsert(&mut regs, dst, v);
                    out.push(op);
                }
                Op::InitWordsLocal { off, img } => {
                    for (i, &v) in cp.images[img as usize].iter().enumerate() {
                        slots.insert(off + i as u32, v);
                    }
                    out.push(op);
                }
                Op::ZeroLocal { off, len } => {
                    if len <= MAX_TRACKED_ZERO {
                        for i in 0..len {
                            slots.insert(off + i, Value::Int(0));
                        }
                    } else {
                        slots.retain(|&o, _| o < off || o >= off + len);
                    }
                    out.push(op);
                }
                Op::ToPtr { dst, src } => {
                    fold_unary(&mut regs, &mut out, &mut folded, op, dst, src, |v| {
                        Value::Ptr(v.to_ptr())
                    });
                }
                Op::Bool { dst, src } => {
                    fold_unary(&mut regs, &mut out, &mut folded, op, dst, src, |v| {
                        Value::Int(v.truthy() as i64)
                    });
                }
                Op::LogicNot { dst, src } => {
                    fold_unary(&mut regs, &mut out, &mut folded, op, dst, src, |v| {
                        Value::Int(!v.truthy() as i64)
                    });
                }
                Op::Neg { dst, src } => {
                    fold_unary(
                        &mut regs,
                        &mut out,
                        &mut folded,
                        op,
                        dst,
                        src,
                        |v| match v {
                            Value::Float(f) => Value::Float(-f),
                            other => Value::Int(other.to_int().wrapping_neg()),
                        },
                    );
                }
                Op::BitNot { dst, src } => {
                    fold_unary(&mut regs, &mut out, &mut folded, op, dst, src, |v| {
                        Value::Int(!v.to_int())
                    });
                }
                Op::Conv { dst, src, class } => {
                    fold_unary(&mut regs, &mut out, &mut folded, op, dst, src, |v| {
                        convert_for_class(class, v)
                    });
                }
                Op::Arith {
                    dst, a, b, mode, ..
                } => {
                    let v = binop(regs.get(&a).copied(), regs.get(&b).copied(), |x, y| {
                        arith(mode, x, y).ok()
                    });
                    fold_result(&mut regs, &mut out, &mut folded, op, dst, v);
                }
                Op::ArithLL {
                    dst,
                    off_a,
                    off_b,
                    mode,
                    ..
                } => {
                    let v = binop(
                        slots.get(&off_a).copied(),
                        slots.get(&off_b).copied(),
                        |x, y| arith(mode, x, y).ok(),
                    );
                    fold_result(&mut regs, &mut out, &mut folded, op, dst, v);
                }
                Op::ArithLI {
                    dst,
                    off,
                    imm,
                    mode,
                    ..
                } => {
                    let v = slots
                        .get(&off)
                        .and_then(|&x| arith(mode, x, Value::Int(imm as i64)).ok());
                    fold_result(&mut regs, &mut out, &mut folded, op, dst, v);
                }
                Op::ArithRL { dst, off, mode, .. } => {
                    let v = binop(regs.get(&dst).copied(), slots.get(&off).copied(), |x, y| {
                        arith(mode, x, y).ok()
                    });
                    fold_result(&mut regs, &mut out, &mut folded, op, dst, v);
                }
                Op::ArithRI { dst, imm, mode, .. } => {
                    let v = regs
                        .get(&dst)
                        .and_then(|&x| arith(mode, x, Value::Int(imm as i64)).ok());
                    fold_result(&mut regs, &mut out, &mut folded, op, dst, v);
                }
                Op::StoreRR {
                    off,
                    a,
                    b,
                    mode,
                    class,
                    dst,
                } => {
                    let v = binop(regs.get(&a).copied(), regs.get(&b).copied(), |x, y| {
                        arith(mode, x, y).ok().map(|v| convert_for_class(class, v))
                    });
                    upsert(&mut slots, off, v);
                    upsert(&mut regs, dst, v);
                    out.push(op);
                }
                Op::StoreLL {
                    off,
                    off_a,
                    off_b,
                    mode,
                    class,
                    dst,
                } => {
                    let v = binop(
                        slots.get(&off_a).copied(),
                        slots.get(&off_b).copied(),
                        |x, y| arith(mode, x, y).ok().map(|v| convert_for_class(class, v)),
                    );
                    upsert(&mut slots, off, v);
                    upsert(&mut regs, dst, v);
                    out.push(op);
                }
                Op::StoreLI {
                    off,
                    off_a,
                    imm,
                    mode,
                    class,
                    dst,
                } => {
                    let v = slots.get(&off_a).and_then(|&x| {
                        arith(mode, x, Value::Int(imm as i64))
                            .ok()
                            .map(|v| convert_for_class(class, v))
                    });
                    upsert(&mut slots, off, v);
                    upsert(&mut regs, dst, v);
                    out.push(op);
                }
                Op::StoreRL {
                    off,
                    off_b,
                    mode,
                    class,
                    dst,
                } => {
                    let v = binop(
                        regs.get(&dst).copied(),
                        slots.get(&off_b).copied(),
                        |x, y| arith(mode, x, y).ok().map(|v| convert_for_class(class, v)),
                    );
                    upsert(&mut slots, off, v);
                    upsert(&mut regs, dst, v);
                    out.push(op);
                }
                Op::StoreRI {
                    off,
                    imm,
                    mode,
                    class,
                    dst,
                } => {
                    let v = regs.get(&dst).and_then(|&x| {
                        arith(mode, x, Value::Int(imm as i64))
                            .ok()
                            .map(|v| convert_for_class(class, v))
                    });
                    upsert(&mut slots, off, v);
                    upsert(&mut regs, dst, v);
                    out.push(op);
                }
                Op::RmwLocal {
                    off,
                    src,
                    mode,
                    class,
                    dst,
                    ..
                } => {
                    let v = binop(slots.get(&off).copied(), regs.get(&src).copied(), |x, y| {
                        arith(mode, x, y).ok().map(|v| convert_for_class(class, v))
                    });
                    upsert(&mut slots, off, v);
                    upsert(&mut regs, dst, v);
                    out.push(op);
                }
                Op::IncDecLocal { dst, off, .. } => {
                    slots.remove(&off);
                    regs.remove(&dst);
                    out.push(op);
                }
                // Statically resolvable control flow.
                Op::JumpIfFalse { src, target, tick } => match regs.get(&src) {
                    Some(v) => {
                        folded += 1;
                        if !v.truthy() {
                            out.push(Op::Jump { target, tick });
                            break 'ops;
                        } // else: fall through, op deleted
                    }
                    None => out.push(op),
                },
                Op::JumpIfTrue { src, target, tick } => match regs.get(&src) {
                    Some(v) => {
                        folded += 1;
                        if v.truthy() {
                            out.push(Op::Jump { target, tick });
                            break 'ops;
                        }
                    }
                    None => out.push(op),
                },
                Op::CondBranch {
                    src,
                    branch,
                    else_target,
                    tick,
                } => match regs.get(&src) {
                    Some(v) => {
                        let taken = v.truthy();
                        folded += 1;
                        if branch != NONE32 {
                            out.push(Op::BumpBranch { branch, taken });
                        }
                        if !taken {
                            out.push(Op::Jump {
                                target: else_target,
                                tick,
                            });
                            break 'ops;
                        }
                    }
                    None => out.push(op),
                },
                Op::CmpBranchLL {
                    off_a,
                    off_b,
                    op: cmp,
                    branch,
                    else_target,
                    tick,
                } => {
                    match binop(
                        slots.get(&off_a).copied(),
                        slots.get(&off_b).copied(),
                        |x, y| Some(cmp_vals(cmp, x, y)),
                    ) {
                        Some(taken) => {
                            folded += 1;
                            if branch != NONE32 {
                                out.push(Op::BumpBranch { branch, taken });
                            }
                            if !taken {
                                out.push(Op::Jump {
                                    target: else_target,
                                    tick,
                                });
                                break 'ops;
                            }
                        }
                        None => out.push(op),
                    }
                }
                Op::CmpBranchLI {
                    off,
                    imm,
                    op: cmp,
                    branch,
                    else_target,
                    tick,
                } => {
                    match slots
                        .get(&off)
                        .map(|&x| cmp_vals(cmp, x, Value::Int(imm as i64)))
                    {
                        Some(taken) => {
                            folded += 1;
                            if branch != NONE32 {
                                out.push(Op::BumpBranch { branch, taken });
                            }
                            if !taken {
                                out.push(Op::Jump {
                                    target: else_target,
                                    tick,
                                });
                                break 'ops;
                            }
                        }
                        None => out.push(op),
                    }
                }
                Op::CmpBranchRR {
                    a,
                    b,
                    op: cmp,
                    branch,
                    else_target,
                    tick,
                } => {
                    match binop(regs.get(&a).copied(), regs.get(&b).copied(), |x, y| {
                        Some(cmp_vals(cmp, x, y))
                    }) {
                        Some(taken) => {
                            folded += 1;
                            if branch != NONE32 {
                                out.push(Op::BumpBranch { branch, taken });
                            }
                            if !taken {
                                out.push(Op::Jump {
                                    target: else_target,
                                    tick,
                                });
                                break 'ops;
                            }
                        }
                        None => out.push(op),
                    }
                }
                Op::CmpBranchRL {
                    a,
                    off,
                    op: cmp,
                    branch,
                    else_target,
                    tick,
                } => {
                    match binop(regs.get(&a).copied(), slots.get(&off).copied(), |x, y| {
                        Some(cmp_vals(cmp, x, y))
                    }) {
                        Some(taken) => {
                            folded += 1;
                            if branch != NONE32 {
                                out.push(Op::BumpBranch { branch, taken });
                            }
                            if !taken {
                                out.push(Op::Jump {
                                    target: else_target,
                                    tick,
                                });
                                break 'ops;
                            }
                        }
                        None => out.push(op),
                    }
                }
                Op::CmpBranchRI {
                    a,
                    imm,
                    op: cmp,
                    branch,
                    else_target,
                    tick,
                } => {
                    match regs
                        .get(&a)
                        .map(|&x| cmp_vals(cmp, x, Value::Int(imm as i64)))
                    {
                        Some(taken) => {
                            folded += 1;
                            if branch != NONE32 {
                                out.push(Op::BumpBranch { branch, taken });
                            }
                            if !taken {
                                out.push(Op::Jump {
                                    target: else_target,
                                    tick,
                                });
                                break 'ops;
                            }
                        }
                        None => out.push(op),
                    }
                }
                Op::SwitchJump { src, table, tick } => match regs.get(&src) {
                    Some(v) => {
                        let target = lookup_switch(&ir.tables[table as usize], v.to_int());
                        folded += 1;
                        out.push(Op::Jump { target, tick });
                        break 'ops;
                    }
                    None => out.push(op),
                },
                // Everything else: generic invalidation.
                _ => {
                    if ops_info::clobbers_frame(&op) {
                        slots.clear();
                    }
                    let uses = ops_info::reg_uses(&op);
                    for w in uses.writes {
                        regs.remove(&w);
                    }
                    out.push(op);
                }
            }
        }
        chunk.ops = out;
    }
    folded
}

fn upsert<K: std::hash::Hash + Eq>(map: &mut HashMap<K, Value>, k: K, v: Option<Value>) {
    match v {
        Some(v) => {
            map.insert(k, v);
        }
        None => {
            map.remove(&k);
        }
    }
}

fn binop<T>(
    a: Option<Value>,
    b: Option<Value>,
    f: impl FnOnce(Value, Value) -> Option<T>,
) -> Option<T> {
    match (a, b) {
        (Some(x), Some(y)) => f(x, y),
        _ => None,
    }
}

fn fold_unary(
    regs: &mut HashMap<u16, Value>,
    out: &mut Vec<Op>,
    folded: &mut u64,
    op: Op,
    dst: u16,
    src: u16,
    f: impl FnOnce(Value) -> Value,
) {
    match regs.get(&src).copied() {
        Some(v) => {
            let v = f(v);
            regs.insert(dst, v);
            out.push(Op::Const { dst, v });
            *folded += 1;
        }
        None => {
            regs.remove(&dst);
            out.push(op);
        }
    }
}

fn fold_result(
    regs: &mut HashMap<u16, Value>,
    out: &mut Vec<Op>,
    folded: &mut u64,
    op: Op,
    dst: u16,
    v: Option<Value>,
) {
    match v {
        Some(v) => {
            regs.insert(dst, v);
            out.push(Op::Const { dst, v });
            *folded += 1;
        }
        None => {
            regs.remove(&dst);
            out.push(op);
        }
    }
}

/// Replays the VM's switch lookup on a known scrutinee (chunk-id
/// domain).
fn lookup_switch(table: &SwitchTable, v: i64) -> u32 {
    match table {
        SwitchTable::Dense {
            min,
            targets,
            default,
        } => {
            let off = v as i128 - *min as i128;
            if off >= 0 && (off as usize) < targets.len() {
                let t = targets[off as usize];
                if t == NONE32 {
                    *default
                } else {
                    t
                }
            } else {
                *default
            }
        }
        SwitchTable::Sorted {
            keys,
            targets,
            default,
        } => match keys.binary_search(&v) {
            Ok(i) => targets[i],
            Err(_) => *default,
        },
    }
}

/// Dead-code elimination: drops unreachable chunks, then deletes pure
/// register writes that are overwritten before any read within their
/// chunk. Returns `(dropped chunks, deleted ops)`.
///
/// Dropping an unreachable chunk is profile-sound: chunks only become
/// unreachable through input-independent branch resolution, so their
/// counters are zero in the unoptimized run too.
pub fn dce(ir: &mut FuncIr) -> (u64, u64) {
    // Reachability over explicit targets (all fallthroughs are still
    // materialized as jumps at this point).
    let mut seen = HashSet::from([ir.entry]);
    let mut work = VecDeque::from([ir.entry]);
    while let Some(c) = work.pop_front() {
        let mut succs = Vec::new();
        for op in &ir.chunks[c as usize].ops {
            succs.extend(ops_info::targets(op));
            if let Op::SwitchJump { table, .. } = op {
                match &ir.tables[*table as usize] {
                    SwitchTable::Dense {
                        targets, default, ..
                    } => {
                        succs.extend(targets.iter().copied().filter(|&t| t != NONE32));
                        succs.push(*default);
                    }
                    SwitchTable::Sorted {
                        targets, default, ..
                    } => {
                        succs.extend(targets.iter().copied());
                        succs.push(*default);
                    }
                }
            }
        }
        for s in succs {
            if seen.insert(s) {
                work.push_back(s);
            }
        }
    }
    let mut dropped = 0;
    for (i, chunk) in ir.chunks.iter_mut().enumerate() {
        if !chunk.dead && !seen.contains(&(i as u32)) {
            chunk.dead = true;
            dropped += 1;
        }
    }
    ir.order.retain(|c| seen.contains(c));

    // Chunk-local dead pure writes (fold residue): walk backward,
    // tracking registers certain to be overwritten before any read.
    let mut deleted = 0;
    for chunk in ir.chunks.iter_mut().filter(|c| !c.dead) {
        let mut dead: HashSet<u16> = HashSet::new();
        let mut keep = vec![true; chunk.ops.len()];
        for (i, op) in chunk.ops.iter().enumerate().rev() {
            let uses = ops_info::reg_uses(op);
            if uses.pure && !uses.writes.is_empty() && uses.writes.iter().all(|w| dead.contains(w))
            {
                keep[i] = false;
                deleted += 1;
                continue;
            }
            for &w in &uses.writes {
                dead.insert(w);
            }
            for &r in &uses.reads {
                dead.remove(&r);
            }
            if let Some((base, len)) = uses.read_range {
                for r in base..base + len {
                    dead.remove(&r);
                }
            }
        }
        if deleted > 0 {
            let mut it = keep.iter();
            chunk.ops.retain(|_| *it.next().unwrap());
        }
    }
    (dropped, deleted)
}

/// Superinstruction selection on hot chunks: re-runs the compiler's
/// provably safe fusion patterns on code shapes exposed by inlining
/// and folding. A chunk is hot when its frequency is at least the
/// mean over the function's live chunks. Returns the number of fused
/// pairs.
pub fn fuse(ir: &mut FuncIr) -> u64 {
    let live: Vec<_> = ir.chunks.iter().filter(|c| !c.dead).collect();
    if live.is_empty() {
        return 0;
    }
    let threshold = live.iter().map(|c| c.freq).sum::<f64>() / live.len() as f64;
    drop(live);
    let mut fused = 0;
    for chunk in ir
        .chunks
        .iter_mut()
        .filter(|c| !c.dead && c.freq >= threshold)
    {
        let ops = &mut chunk.ops;
        let mut i = 0;
        while i + 1 < ops.len() {
            let pair = fuse_pair(ops[i], ops[i + 1]);
            if let Some(op) = pair {
                ops[i] = op;
                ops.remove(i + 1);
                fused += 1;
                // A fused op can seed another pattern (rare); rescan
                // from the previous position.
                i = i.saturating_sub(1);
            } else {
                i += 1;
            }
        }
    }
    fused
}

/// Mined-superinstruction selection: fuses the digram patterns
/// harvested from estimator frequencies across the benchmark corpus
/// (see `mined_pair`), as opposed to [`fuse`]'s emitter pairs. Runs
/// on the same hot-chunk threshold so cold code keeps its shape.
pub fn mine(ir: &mut FuncIr) -> u64 {
    let live: Vec<_> = ir.chunks.iter().filter(|c| !c.dead).collect();
    if live.is_empty() {
        return 0;
    }
    let threshold = live.iter().map(|c| c.freq).sum::<f64>() / live.len() as f64;
    drop(live);
    let mut mined = 0;
    for chunk in ir
        .chunks
        .iter_mut()
        .filter(|c| !c.dead && c.freq >= threshold)
    {
        let ops = &mut chunk.ops;
        let mut i = 0;
        while i + 1 < ops.len() {
            if let Some(op) = mined_pair(ops[i], ops[i + 1]) {
                ops[i] = op;
                ops.remove(i + 1);
                mined += 1;
                i = i.saturating_sub(1);
            } else {
                i += 1;
            }
        }
    }
    mined
}

/// The mined fusion patterns — digrams measured hottest over the
/// post-pipeline IR of the benchmark suite, weighted by estimator
/// block frequencies (`opt::digram_stats`). Same safety argument as
/// [`fuse_pair`]: the fused op writes exactly what the pair wrote.
fn mined_pair(a: Op, b: Op) -> Option<Op> {
    match (a, b) {
        // Address ops always produce `Value::Ptr`, on which `to_ptr`
        // is the identity — a following same-register `ToPtr` is a
        // pure dispatch tax and is dropped outright.
        (
            Op::IndexAddr { dst, .. }
            | Op::IndexAddrLL { dst, .. }
            | Op::IndexAddrPL { dst, .. }
            | Op::IndexAddrLeaL { dst, .. }
            | Op::LeaLocal { dst, .. }
            | Op::MemberAddr { dst, .. },
            Op::ToPtr { dst: d2, src },
        ) if src == dst && d2 == dst => Some(a),
        (
            Op::Const {
                dst,
                v: Value::Int(imm),
            },
            Op::Jump { target, tick },
        ) if i32::try_from(imm).is_ok() => Some(Op::ConstJump {
            dst,
            imm: imm as i32,
            target,
            tick,
        }),
        (
            Op::Const {
                dst,
                v: Value::Int(imm),
            },
            Op::Ret { src, tick },
        ) if src == dst && i32::try_from(imm).is_ok() => Some(Op::ConstRet {
            imm: imm as i32,
            tick,
        }),
        (
            Op::StoreLocal {
                off,
                src,
                class,
                dst,
            },
            Op::EdgeJump {
                edge,
                block,
                target,
                tick,
            },
        ) if dst == src => Some(Op::StoreLEdge {
            off,
            src,
            class,
            edge,
            block,
            target,
            tick,
        }),
        (
            Op::IncDecLocal {
                dst,
                off,
                delta,
                post: false,
            },
            Op::EdgeJump {
                edge,
                block,
                target,
                tick,
            },
        ) if i8::try_from(delta).is_ok() => Some(Op::IncDecLEdge {
            off,
            dst,
            delta: delta as i8,
            edge,
            block,
            target,
            tick,
        }),
        (
            Op::LoadLocal { dst, off },
            Op::CondBranch {
                src,
                branch,
                else_target,
                tick,
            },
        ) if src == dst => Some(Op::LoadLBranch {
            off,
            dst,
            branch,
            else_target,
            tick,
        }),
        (
            Op::LoadGlobal { dst, idx },
            Op::ArithRI {
                dst: d2,
                imm,
                mode,
                tick,
            },
        ) if d2 == dst => Some(Op::ArithGI {
            dst,
            idx,
            imm,
            mode,
            tick,
        }),
        (
            Op::Const {
                dst,
                v: Value::Int(imm),
            },
            Op::CmpBranchRR {
                a,
                b,
                op,
                branch,
                else_target,
                tick,
            },
        ) if b == dst && i32::try_from(imm).is_ok() => Some(Op::CmpBranchRCI {
            a,
            dst,
            imm: imm as i32,
            op,
            branch,
            else_target,
            tick,
        }),
        (
            Op::ArithRL {
                dst,
                off,
                mode,
                tick: _,
            },
            Op::JumpIfFalse { src, target, tick },
        ) if src == dst => Some(Op::ArithRLJumpF {
            dst,
            off,
            mode,
            target,
            tick,
        }),
        (
            Op::LoadLocal { dst, off },
            Op::LoadIdx {
                dst: d2,
                base,
                idx,
                elem,
                tick,
            },
        ) if base == dst && d2 == dst && idx != dst => Some(Op::LoadIdxLR {
            dst,
            off,
            idx,
            elem,
            tick,
        }),
        _ => None,
    }
}

/// The fusion patterns. Each is safe unconditionally: every register
/// the pair wrote is written identically by the fused op, and the
/// intermediate register was immediately overwritten.
fn fuse_pair(a: Op, b: Op) -> Option<Op> {
    match (a, b) {
        (
            Op::LoadLocal { dst, off },
            Op::LoadLocal {
                dst: d2,
                off: off_b,
            },
        ) if d2 == dst + 1 => Some(Op::LoadLocal2 {
            dst,
            off_a: off,
            off_b,
        }),
        (
            Op::LoadLocal { dst, off },
            Op::Const {
                dst: d2,
                v: Value::Int(imm),
            },
        ) if d2 == dst + 1 => Some(Op::LoadLocalImm { dst, off, imm }),
        (
            Op::IndexAddr {
                dst,
                base,
                idx,
                elem,
            },
            Op::Load {
                dst: d2,
                addr,
                tick,
            },
        ) if addr == dst && d2 == dst => Some(Op::LoadIdx {
            dst,
            base,
            idx,
            elem,
            tick,
        }),
        (
            Op::IndexAddrLL {
                dst,
                off_a,
                off_b,
                elem,
            },
            Op::Load {
                dst: d2,
                addr,
                tick,
            },
        ) if addr == dst && d2 == dst => Some(Op::LoadIdxLL {
            dst,
            off_a,
            off_b,
            elem,
            tick,
        }),
        (
            Op::IndexAddrPL {
                dst,
                base,
                idx_off,
                elem,
            },
            Op::Load {
                dst: d2,
                addr,
                tick,
            },
        ) if addr == dst && d2 == dst => Some(Op::LoadIdxPL {
            dst,
            base,
            idx_off,
            elem,
            tick,
        }),
        (
            Op::IndexAddrLeaL {
                dst,
                lea_off,
                idx_off,
                elem,
            },
            Op::Load {
                dst: d2,
                addr,
                tick,
            },
        ) if addr == dst && d2 == dst => Some(Op::LoadIdxLeaL {
            dst,
            lea_off,
            idx_off,
            elem,
            tick,
        }),
        (
            Op::Arith {
                dst, a, b, mode, ..
            },
            Op::StoreLocal {
                off,
                src,
                class,
                dst: d2,
            },
        ) if src == dst && d2 == dst => Some(Op::StoreRR {
            off,
            a,
            b,
            mode,
            class,
            dst,
        }),
        (
            Op::ArithLL {
                dst,
                off_a,
                off_b,
                mode,
                ..
            },
            Op::StoreLocal {
                off,
                src,
                class,
                dst: d2,
            },
        ) if src == dst && d2 == dst => Some(Op::StoreLL {
            off,
            off_a,
            off_b,
            mode,
            class,
            dst,
        }),
        (
            Op::ArithLI {
                dst,
                off: off_a,
                imm,
                mode,
                ..
            },
            Op::StoreLocal {
                off,
                src,
                class,
                dst: d2,
            },
        ) if src == dst && d2 == dst => Some(Op::StoreLI {
            off,
            off_a,
            imm,
            mode,
            class,
            dst,
        }),
        (
            Op::ArithRL {
                dst,
                off: off_b,
                mode,
                ..
            },
            Op::StoreLocal {
                off,
                src,
                class,
                dst: d2,
            },
        ) if src == dst && d2 == dst => Some(Op::StoreRL {
            off,
            off_b,
            mode,
            class,
            dst,
        }),
        (
            Op::ArithRI { dst, imm, mode, .. },
            Op::StoreLocal {
                off,
                src,
                class,
                dst: d2,
            },
        ) if src == dst && d2 == dst => Some(Op::StoreRI {
            off,
            imm,
            mode,
            class,
            dst,
        }),
        _ => None,
    }
}

/// Hot-path chunk layout: a greedy trace from the entry that always
/// extends with the hottest unplaced successor, then the hottest
/// unplaced chunk overall. Jumps to the next chunk in the final order
/// become implicit fallthroughs (one dispatch saved per execution).
pub fn layout(ir: &mut FuncIr) {
    let live: HashSet<u32> = ir.order.iter().copied().collect();
    let mut placed: HashSet<u32> = HashSet::new();
    let mut order = Vec::with_capacity(ir.order.len());
    let mut cur = Some(ir.entry);
    loop {
        let c = match cur {
            Some(c) => c,
            None => match ir
                .order
                .iter()
                .copied()
                .filter(|c| !placed.contains(c))
                .max_by(|a, b| {
                    let fa = ir.chunks[*a as usize].freq;
                    let fb = ir.chunks[*b as usize].freq;
                    fa.total_cmp(&fb)
                }) {
                Some(c) => c,
                None => break,
            },
        };
        placed.insert(c);
        order.push(c);
        // Hottest unplaced successor continues the trace.
        let mut succs = Vec::new();
        for op in &ir.chunks[c as usize].ops {
            succs.extend(ops_info::targets(op));
        }
        cur = succs
            .into_iter()
            .filter(|s| live.contains(s) && !placed.contains(s))
            .max_by(|a, b| {
                let fa = ir.chunks[*a as usize].freq;
                let fb = ir.chunks[*b as usize].freq;
                fa.total_cmp(&fb)
            });
    }
    ir.order = order;
    drop_redundant_jumps(ir);
}

/// Replaces the AST-mirroring tick payloads with the dispatch-cost
/// model: every executed op charges one step, counter bumps charge
/// none, and charges batch onto the next tick-carrying op exactly as
/// the compiler batches AST ticks. This is where the measured speedup
/// comes from: a fused superinstruction, an inlined call, or a
/// constant-folded subexpression now costs what it dispatches, not
/// what the source AST would have ticked.
pub fn recost(ir: &mut FuncIr) {
    for chunk in ir.chunks.iter_mut().filter(|c| !c.dead) {
        let mut out = Vec::with_capacity(chunk.ops.len());
        let mut pending: u32 = 0;
        for &op in &chunk.ops {
            let mut op = op;
            match op {
                Op::Tick(_) => continue, // AST-cost artifact
                Op::Fail(_) => {
                    if pending > 0 {
                        out.push(Op::Tick(pending));
                        pending = 0;
                    }
                    out.push(op);
                }
                _ if ops_info::is_zero_cost(&op) => out.push(op),
                _ => {
                    match ops_info::tick_mut(&mut op) {
                        Some(t) => {
                            *t = pending + 1;
                            pending = 0;
                        }
                        None => pending += 1,
                    }
                    out.push(op);
                }
            }
        }
        if pending > 0 {
            out.push(Op::Tick(pending));
        }
        chunk.ops = out;
    }
}
