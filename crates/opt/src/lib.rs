//! Estimator-guided optimizing backend for the bytecode VM.
//!
//! The paper's Fig 10 experiment recompiles a program's functions in
//! estimated-hotness order and measures the speedup after each
//! increment. This crate is the "recompile" half: it lifts compiled
//! bytecode into a chunk IR ([`ir`]), runs a classic scalar pipeline
//! over the functions selected by an [`OptPlan`] — inlining, constant
//! folding and branch simplification, dead-code elimination,
//! superinstruction fusion, hot-path layout ([`passes`],
//! [`inline`]) — and recosts the result under a dispatch-cost model so
//! the VM's `steps` counter measures what the optimizer saved.
//!
//! The contract with the unoptimized program is exact: byte-identical
//! output, exit state, and *count* profile counters (blocks, edges,
//! branches, call sites, function entries). Only `steps` and
//! `func_cost` — the quantities being optimized — change. The fuzzer's
//! differential oracle holds every optimized program to that contract.
//!
//! Pass order: inline → fold → dce → fuse → layout → recost → lower.
//! Inlining first exposes the callee body to the caller's folding;
//! layout runs before recost so dropped fallthrough jumps are never
//! charged; recost runs last over the final op sequence.

#![warn(missing_docs)]

pub mod alias;
pub mod inline;
pub mod ir;
pub mod ops_info;
pub mod passes;

use profiler::bytecode::{CompiledProgram, NONE32};

/// Version of the pass pipeline, part of every optimized-artifact
/// cache key: bump when a pass changes observable shape or costs.
/// Version 2: alias-admitted inlining, multi-level inlining, mined
/// superinstructions, cross-function hot packing.
pub const PASS_PIPELINE_VERSION: u32 = 2;

/// What to optimize and how hard — produced by a ranking provider
/// (static estimates, measured profiles, or the held-out oracle).
#[derive(Debug, Clone)]
pub struct OptPlan {
    /// Optimization level: 0 = identity, 1 = fold + branch
    /// simplification + DCE + recost, 2 = + fusion + layout,
    /// 3 = + inlining.
    pub level: u8,
    /// Per-`FuncId` budget membership: only these functions are
    /// transformed (the rest are relocated verbatim).
    pub budgeted: Vec<bool>,
    /// Per-function, per-block execution frequencies (estimated or
    /// measured, whole-run scale). Empty vectors mean "unknown".
    pub block_freqs: Vec<Vec<f64>>,
    /// Per-call-site execution frequencies, indexed by `CallSiteId`.
    pub site_freqs: Vec<f64>,
    /// Global code-growth budget for inlining, in ops.
    pub inline_budget: u32,
}

impl OptPlan {
    /// A plan that optimizes every defined function at `level`, with
    /// no frequency information (all chunks equally hot).
    pub fn full(cp: &CompiledProgram, level: u8) -> OptPlan {
        OptPlan {
            level,
            budgeted: cp.funcs.iter().map(|f| f.entry != NONE32).collect(),
            block_freqs: vec![Vec::new(); cp.funcs.len()],
            site_freqs: vec![0.0; cp.n_sites],
            inline_budget: default_inline_budget(cp),
        }
    }
}

/// The default global inlining budget: a quarter of the program's
/// original code size.
pub fn default_inline_budget(cp: &CompiledProgram) -> u32 {
    (cp.ops.len() / 4) as u32
}

/// Per-pass work counters for one [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Call sites inlined.
    pub inlined_calls: u64,
    /// Constants folded and branches statically resolved.
    pub folded: u64,
    /// Unreachable chunks dropped.
    pub dce_blocks: u64,
    /// Dead register writes deleted.
    pub dce_ops: u64,
    /// Superinstruction pairs fused (emitter-pair patterns).
    pub fused: u64,
    /// Mined superinstruction pairs fused (frequency-harvested
    /// digram patterns).
    pub mined: u64,
}

/// Optimizes `cp` according to `plan`, returning the rewritten
/// program and what each pass did. The input is never mutated; at
/// level 0 (or an empty budget) the result is a verbatim clone.
pub fn optimize(cp: &CompiledProgram, plan: &OptPlan) -> (CompiledProgram, OptStats) {
    let _sp = obs::span("opt.optimize");
    let Some((mut irs, stats)) = run_passes(cp, plan) else {
        return (cp.clone(), OptStats::default());
    };
    for f_ir in irs.iter_mut().flatten() {
        passes::recost(f_ir);
    }
    let out = ir::lower(cp, &irs, &pack_order(cp, plan));

    if obs::enabled() {
        obs::counter_add("opt.inlined_calls", stats.inlined_calls);
        obs::counter_add("opt.folded", stats.folded);
        obs::counter_add("opt.dce_blocks", stats.dce_blocks);
        obs::counter_add("opt.dce_ops", stats.dce_ops);
        obs::counter_add("opt.fused", stats.fused);
        obs::counter_add("opt.mined", stats.mined);
    }
    (out, stats)
}

/// Lift + scalar passes up to layout (everything except recost and
/// lowering). `None` means the plan is an identity transform.
fn run_passes(cp: &CompiledProgram, plan: &OptPlan) -> Option<(Vec<Option<ir::FuncIr>>, OptStats)> {
    let mut stats = OptStats::default();
    let budgeted = |f: usize| {
        plan.level >= 1
            && plan.budgeted.get(f).copied().unwrap_or(false)
            && cp.funcs[f].entry != NONE32
            && cp.funcs[f].code.1 > cp.funcs[f].code.0
    };
    if plan.level == 0 || !(0..cp.funcs.len()).any(budgeted) {
        return None;
    }

    let mut irs: Vec<Option<ir::FuncIr>> = (0..cp.funcs.len())
        .map(|f| {
            budgeted(f).then(|| {
                let freqs = plan.block_freqs.get(f).map(Vec::as_slice).unwrap_or(&[]);
                ir::lift(cp, f, freqs)
            })
        })
        .collect();

    if plan.level >= 3 {
        stats.inlined_calls = run_inliner(cp, plan, &mut irs);
    }
    for f_ir in irs.iter_mut().flatten() {
        stats.folded += passes::fold(f_ir, cp);
        let (blocks, ops) = passes::dce(f_ir);
        stats.dce_blocks += blocks;
        stats.dce_ops += ops;
        if plan.level >= 2 {
            stats.fused += passes::fuse(f_ir);
            stats.mined += passes::mine(f_ir);
            passes::layout(f_ir);
        } else {
            ir::drop_redundant_jumps(f_ir);
        }
    }
    Some((irs, stats))
}

/// Lowered, executable snapshots after each pipeline stage, for
/// per-pass step attribution (the bench trajectory's `opt/v2` rows).
///
/// Stages are applied cumulatively — each snapshot includes every
/// stage before it — and run stage-wise across all budgeted functions
/// rather than function-wise; since the scalar passes never look
/// across function boundaries (inlining has already happened), the
/// final snapshot is identical to [`optimize`]'s output. Stages the
/// plan's level disables are simply absent. Every snapshot is
/// recosted, so step deltas between consecutive snapshots attribute
/// saved VM steps to exactly one pass.
pub fn stage_snapshots(
    cp: &CompiledProgram,
    plan: &OptPlan,
) -> Vec<(&'static str, CompiledProgram)> {
    let budgeted = |f: usize| {
        plan.level >= 1
            && plan.budgeted.get(f).copied().unwrap_or(false)
            && cp.funcs[f].entry != NONE32
            && cp.funcs[f].code.1 > cp.funcs[f].code.0
    };
    if plan.level == 0 || !(0..cp.funcs.len()).any(budgeted) {
        return Vec::new();
    }
    let mut irs: Vec<Option<ir::FuncIr>> = (0..cp.funcs.len())
        .map(|f| {
            budgeted(f).then(|| {
                let freqs = plan.block_freqs.get(f).map(Vec::as_slice).unwrap_or(&[]);
                ir::lift(cp, f, freqs)
            })
        })
        .collect();
    let identity: Vec<usize> = (0..cp.funcs.len()).collect();
    let snap = |irs: &[Option<ir::FuncIr>], order: &[usize]| {
        let mut copy: Vec<Option<ir::FuncIr>> = irs.to_vec();
        for f_ir in copy.iter_mut().flatten() {
            passes::recost(f_ir);
        }
        ir::lower(cp, &copy, order)
    };

    let mut out = Vec::new();
    if plan.level >= 3 {
        run_inliner(cp, plan, &mut irs);
        out.push(("inline", snap(&irs, &identity)));
    }
    for f_ir in irs.iter_mut().flatten() {
        passes::fold(f_ir, cp);
    }
    out.push(("fold", snap(&irs, &identity)));
    for f_ir in irs.iter_mut().flatten() {
        passes::dce(f_ir);
    }
    out.push(("dce", snap(&irs, &identity)));
    if plan.level >= 2 {
        for f_ir in irs.iter_mut().flatten() {
            passes::fuse(f_ir);
        }
        out.push(("fuse", snap(&irs, &identity)));
        for f_ir in irs.iter_mut().flatten() {
            passes::mine(f_ir);
        }
        out.push(("mine", snap(&irs, &identity)));
        for f_ir in irs.iter_mut().flatten() {
            passes::layout(f_ir);
        }
        out.push(("layout", snap(&irs, &pack_order(cp, plan))));
    } else {
        for f_ir in irs.iter_mut().flatten() {
            ir::drop_redundant_jumps(f_ir);
        }
        out.push(("layout", snap(&irs, &identity)));
    }
    out
}

/// Function emission order for cross-function hot packing: bodies of
/// hot functions cluster at the front of the flat op stream (bytecode
/// locality; `FuncId` indexing is unaffected). Heat is the plan's
/// whole-run block-frequency mass; functions without frequency
/// information keep their relative program order at the back.
fn pack_order(cp: &CompiledProgram, plan: &OptPlan) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cp.funcs.len()).collect();
    if plan.level < 2 {
        return order;
    }
    let heat = |f: usize| -> f64 {
        plan.block_freqs
            .get(f)
            .map(|b| b.iter().sum())
            .unwrap_or(0.0)
    };
    order.sort_by(|&a, &b| heat(b).total_cmp(&heat(a)).then(a.cmp(&b)));
    order
}

/// Frequency-weighted adjacent-op digram statistics over the
/// post-pass IR (pre-recost), aggregated across budgeted functions —
/// the data the superinstruction miner ranks, exposed for reports.
/// Keys are `"A+B"` variant-name pairs, hottest first.
pub fn digram_stats(cp: &CompiledProgram, plan: &OptPlan) -> Vec<(String, f64)> {
    use std::collections::HashMap;
    let Some((irs, _)) = run_passes(cp, plan) else {
        return Vec::new();
    };
    let mut acc: HashMap<String, f64> = HashMap::new();
    for f_ir in irs.iter().flatten() {
        for chunk in f_ir.chunks.iter().filter(|c| !c.dead) {
            for w in chunk.ops.windows(2) {
                if ops_info::is_zero_cost(&w[0]) || ops_info::is_zero_cost(&w[1]) {
                    continue;
                }
                let name = |op: &profiler::bytecode::Op| {
                    let full = format!("{op:?}");
                    full.split([' ', '{', '('])
                        .next()
                        .unwrap_or_default()
                        .to_string()
                };
                *acc.entry(format!("{}+{}", name(&w[0]), name(&w[1])))
                    .or_default() += chunk.freq;
            }
        }
    }
    let mut out: Vec<(String, f64)> = acc.into_iter().collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Lift + lower with no passes: the optimizer's machinery shakedown.
/// The result must behave identically to `cp` *including* steps and
/// profiles (the only difference is zero-tick fallthrough jumps and
/// relocation).
pub fn roundtrip(cp: &CompiledProgram) -> CompiledProgram {
    let irs: Vec<Option<ir::FuncIr>> = (0..cp.funcs.len())
        .map(|f| {
            let meta = &cp.funcs[f];
            (meta.entry != NONE32 && meta.code.1 > meta.code.0).then(|| ir::lift(cp, f, &[]))
        })
        .collect();
    ir::lower(cp, &irs, &(0..cp.funcs.len()).collect::<Vec<_>>())
}

/// Depth bound for multi-level inlining: call sites exposed by a
/// splice can themselves be inlined, at most this many levels deep.
const MAX_INLINE_DEPTH: usize = 4;

/// Global hottest-first inlining over every budgeted function, bounded
/// by the plan's code-growth budget, iterated to a fixed point: every
/// splice re-enters the callee body's own call sites as candidates
/// (with frequencies rescaled to this instance's share), so hot call
/// chains collapse level by level until the budget runs out or no
/// admissible site remains. An ancestor-chain check plus the depth
/// bound keeps (mutual) recursion from cycling; the monotonically
/// shrinking budget guarantees termination regardless.
fn run_inliner(cp: &CompiledProgram, plan: &OptPlan, irs: &mut [Option<ir::FuncIr>]) -> u64 {
    struct Cand {
        fid: usize,
        site: ir::CallSite,
        freq: f64,
        /// Callee fids of the splices that exposed this site —
        /// inlining a callee already on the chain would cycle.
        path: Vec<u32>,
        done: bool,
    }
    let site_freq = |site: &ir::CallSite| {
        if site.site == NONE32 {
            0.0
        } else {
            plan.site_freqs
                .get(site.site as usize)
                .copied()
                .unwrap_or(0.0)
        }
    };
    let mut cands = Vec::new();
    for (fid, f_ir) in irs.iter().enumerate() {
        let Some(f_ir) = f_ir else { continue };
        for site in &f_ir.call_sites {
            cands.push(Cand {
                fid,
                site: *site,
                freq: site_freq(site),
                path: Vec::new(),
                done: false,
            });
        }
    }

    let mut budget = plan.inline_budget as i64;
    let mut inlined = 0;
    // Hottest remaining site first, across rounds: freshly exposed
    // sites compete with the original ones on equal footing.
    while let Some(i) = {
        // First among equals, so zero-frequency plans (no profile
        // information) fall back to stable program order.
        let mut best: Option<usize> = None;
        for (j, c) in cands.iter().enumerate() {
            if !c.done && best.is_none_or(|b| c.freq > cands[b].freq) {
                best = Some(j);
            }
        }
        best
    } {
        cands[i].done = true;
        let (fid, site) = (cands[i].fid, cands[i].site);
        if cands[i].path.len() >= MAX_INLINE_DEPTH || cands[i].path.contains(&site.callee) {
            continue;
        }
        let f_ir = irs[fid].as_mut().expect("candidate from a budgeted fn");
        if !inline::can_inline(cp, f_ir, &site) {
            continue;
        }
        if inline::growth_estimate(cp, &site) as i64 > budget {
            continue;
        }
        let callee_freqs = plan
            .block_freqs
            .get(site.callee as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let spliced = inline::inline_site(f_ir, cp, &site, callee_freqs);
        budget -= spliced.growth as i64;
        inlined += 1;
        // Candidates in the calling chunk after the call moved into
        // the continuation chunk; retarget their coordinates.
        for later in cands.iter_mut().filter(|c| !c.done) {
            if later.fid == fid && later.site.chunk == site.chunk && later.site.idx > site.idx {
                later.site.chunk = spliced.post_chunk;
                later.site.idx -= site.idx + 1;
            }
        }
        // The spliced body's call sites become candidates one level
        // deeper, ranked by the heat of the chunk they landed in.
        let mut path = cands[i].path.clone();
        path.push(site.callee);
        let f_ir = irs[fid].as_ref().expect("just spliced into it");
        for s in spliced.new_sites {
            cands.push(Cand {
                fid,
                site: s,
                freq: site_freq(&s).min(f_ir.chunks[s.chunk as usize].freq),
                path: path.clone(),
                done: false,
            });
        }
    }
    inlined
}
