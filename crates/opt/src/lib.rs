//! Estimator-guided optimizing backend for the bytecode VM.
//!
//! The paper's Fig 10 experiment recompiles a program's functions in
//! estimated-hotness order and measures the speedup after each
//! increment. This crate is the "recompile" half: it lifts compiled
//! bytecode into a chunk IR ([`ir`]), runs a classic scalar pipeline
//! over the functions selected by an [`OptPlan`] — inlining, constant
//! folding and branch simplification, dead-code elimination,
//! superinstruction fusion, hot-path layout ([`passes`],
//! [`inline`]) — and recosts the result under a dispatch-cost model so
//! the VM's `steps` counter measures what the optimizer saved.
//!
//! The contract with the unoptimized program is exact: byte-identical
//! output, exit state, and *count* profile counters (blocks, edges,
//! branches, call sites, function entries). Only `steps` and
//! `func_cost` — the quantities being optimized — change. The fuzzer's
//! differential oracle holds every optimized program to that contract.
//!
//! Pass order: inline → fold → dce → fuse → layout → recost → lower.
//! Inlining first exposes the callee body to the caller's folding;
//! layout runs before recost so dropped fallthrough jumps are never
//! charged; recost runs last over the final op sequence.

#![warn(missing_docs)]

pub mod inline;
pub mod ir;
pub mod ops_info;
pub mod passes;

use profiler::bytecode::{CompiledProgram, NONE32};

/// Version of the pass pipeline, part of every optimized-artifact
/// cache key: bump when a pass changes observable shape or costs.
pub const PASS_PIPELINE_VERSION: u32 = 1;

/// What to optimize and how hard — produced by a ranking provider
/// (static estimates, measured profiles, or the held-out oracle).
#[derive(Debug, Clone)]
pub struct OptPlan {
    /// Optimization level: 0 = identity, 1 = fold + branch
    /// simplification + DCE + recost, 2 = + fusion + layout,
    /// 3 = + inlining.
    pub level: u8,
    /// Per-`FuncId` budget membership: only these functions are
    /// transformed (the rest are relocated verbatim).
    pub budgeted: Vec<bool>,
    /// Per-function, per-block execution frequencies (estimated or
    /// measured, whole-run scale). Empty vectors mean "unknown".
    pub block_freqs: Vec<Vec<f64>>,
    /// Per-call-site execution frequencies, indexed by `CallSiteId`.
    pub site_freqs: Vec<f64>,
    /// Global code-growth budget for inlining, in ops.
    pub inline_budget: u32,
}

impl OptPlan {
    /// A plan that optimizes every defined function at `level`, with
    /// no frequency information (all chunks equally hot).
    pub fn full(cp: &CompiledProgram, level: u8) -> OptPlan {
        OptPlan {
            level,
            budgeted: cp.funcs.iter().map(|f| f.entry != NONE32).collect(),
            block_freqs: vec![Vec::new(); cp.funcs.len()],
            site_freqs: vec![0.0; cp.n_sites],
            inline_budget: default_inline_budget(cp),
        }
    }
}

/// The default global inlining budget: a quarter of the program's
/// original code size.
pub fn default_inline_budget(cp: &CompiledProgram) -> u32 {
    (cp.ops.len() / 4) as u32
}

/// Per-pass work counters for one [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Call sites inlined.
    pub inlined_calls: u64,
    /// Constants folded and branches statically resolved.
    pub folded: u64,
    /// Unreachable chunks dropped.
    pub dce_blocks: u64,
    /// Dead register writes deleted.
    pub dce_ops: u64,
    /// Superinstruction pairs fused.
    pub fused: u64,
}

/// Optimizes `cp` according to `plan`, returning the rewritten
/// program and what each pass did. The input is never mutated; at
/// level 0 (or an empty budget) the result is a verbatim clone.
pub fn optimize(cp: &CompiledProgram, plan: &OptPlan) -> (CompiledProgram, OptStats) {
    let _sp = obs::span("opt.optimize");
    let mut stats = OptStats::default();
    let budgeted = |f: usize| {
        plan.level >= 1
            && plan.budgeted.get(f).copied().unwrap_or(false)
            && cp.funcs[f].entry != NONE32
            && cp.funcs[f].code.1 > cp.funcs[f].code.0
    };
    if plan.level == 0 || !(0..cp.funcs.len()).any(budgeted) {
        return (cp.clone(), stats);
    }

    let mut irs: Vec<Option<ir::FuncIr>> = (0..cp.funcs.len())
        .map(|f| {
            budgeted(f).then(|| {
                let freqs = plan.block_freqs.get(f).map(Vec::as_slice).unwrap_or(&[]);
                ir::lift(cp, f, freqs)
            })
        })
        .collect();

    if plan.level >= 3 {
        stats.inlined_calls = run_inliner(cp, plan, &mut irs);
    }
    for f_ir in irs.iter_mut().flatten() {
        stats.folded += passes::fold(f_ir, cp);
        let (blocks, ops) = passes::dce(f_ir);
        stats.dce_blocks += blocks;
        stats.dce_ops += ops;
        if plan.level >= 2 {
            stats.fused += passes::fuse(f_ir);
            passes::layout(f_ir);
        } else {
            ir::drop_redundant_jumps(f_ir);
        }
        passes::recost(f_ir);
    }
    let out = ir::lower(cp, &irs);

    if obs::enabled() {
        obs::counter_add("opt.inlined_calls", stats.inlined_calls);
        obs::counter_add("opt.folded", stats.folded);
        obs::counter_add("opt.dce_blocks", stats.dce_blocks);
        obs::counter_add("opt.dce_ops", stats.dce_ops);
        obs::counter_add("opt.fused", stats.fused);
    }
    (out, stats)
}

/// Lift + lower with no passes: the optimizer's machinery shakedown.
/// The result must behave identically to `cp` *including* steps and
/// profiles (the only difference is zero-tick fallthrough jumps and
/// relocation).
pub fn roundtrip(cp: &CompiledProgram) -> CompiledProgram {
    let irs: Vec<Option<ir::FuncIr>> = (0..cp.funcs.len())
        .map(|f| {
            let meta = &cp.funcs[f];
            (meta.entry != NONE32 && meta.code.1 > meta.code.0).then(|| ir::lift(cp, f, &[]))
        })
        .collect();
    ir::lower(cp, &irs)
}

/// Global hottest-first inlining over every budgeted function, bounded
/// by the plan's code-growth budget.
fn run_inliner(cp: &CompiledProgram, plan: &OptPlan, irs: &mut [Option<ir::FuncIr>]) -> u64 {
    // Collect candidates across functions with their site frequencies.
    struct Cand {
        fid: usize,
        site: ir::CallSite,
        freq: f64,
    }
    let mut cands = Vec::new();
    for (fid, f_ir) in irs.iter().enumerate() {
        let Some(f_ir) = f_ir else { continue };
        for site in &f_ir.call_sites {
            let freq = if site.site == NONE32 {
                0.0
            } else {
                plan.site_freqs
                    .get(site.site as usize)
                    .copied()
                    .unwrap_or(0.0)
            };
            cands.push(Cand {
                fid,
                site: *site,
                freq,
            });
        }
    }
    cands.sort_by(|a, b| b.freq.total_cmp(&a.freq));

    let mut budget = plan.inline_budget as i64;
    let mut inlined = 0;
    for i in 0..cands.len() {
        let Cand { fid, site, .. } = cands[i];
        let f_ir = irs[fid].as_mut().expect("candidate from a budgeted fn");
        if !inline::can_inline(cp, f_ir, &site) {
            continue;
        }
        if inline::growth_estimate(cp, &site) as i64 > budget {
            continue;
        }
        let spliced = inline::inline_site(f_ir, cp, &site);
        budget -= spliced.growth as i64;
        inlined += 1;
        // Later candidates in the same chunk moved into the
        // continuation chunk; retarget their coordinates.
        for later in cands[i + 1..].iter_mut() {
            if later.fid == fid && later.site.chunk == site.chunk && later.site.idx > site.idx {
                later.site.chunk = spliced.post_chunk;
                later.site.idx -= site.idx + 1;
            }
        }
    }
    inlined
}
