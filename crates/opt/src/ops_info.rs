//! Structural metadata about [`Op`]s: which fields are jump targets,
//! register operands, frame offsets, or tick payloads.
//!
//! The optimizer rewrites ops generically (retargeting jumps when
//! chunks move, rebasing registers and frame slots when a callee is
//! spliced into its caller), so every field of every op must be
//! classified exactly once, here. Fields that *look* like offsets but
//! are not frame-relative — [`Op::MemberAddr`]'s struct-member offset,
//! the static-data indices of the `*Global` ops, the absolute data
//! addresses in [`Op::IndexAddrPL`]/[`Op::LoadIdxPL`] — are
//! deliberately left untouched by the rebase helpers.

use profiler::bytecode::Op;

/// Register operands of one op, for chunk-local liveness.
#[derive(Debug, Default)]
pub struct RegUses {
    /// Registers read individually.
    pub reads: Vec<u16>,
    /// A contiguous read range `(base, len)` — call arguments.
    pub read_range: Option<(u16, u16)>,
    /// Registers written (always written on success).
    pub writes: Vec<u16>,
    /// No side effect beyond `writes`, and infallible: the op can be
    /// deleted when every written register is overwritten before any
    /// read.
    pub pure: bool,
}

/// Classifies one op's register operands.
pub fn reg_uses(op: &Op) -> RegUses {
    let mut u = RegUses::default();
    match *op {
        Op::Tick(_)
        | Op::BumpSite(_)
        | Op::BumpFunc(_)
        | Op::BumpBranch { .. }
        | Op::InitWordsLocal { .. }
        | Op::ZeroLocal { .. }
        | Op::Jump { .. }
        | Op::CmpBranchLL { .. }
        | Op::CmpBranchLI { .. }
        | Op::EdgeJump { .. }
        | Op::Fail(_) => {}
        Op::Mov { dst, src } => {
            u.reads.push(src);
            u.writes.push(dst);
            u.pure = true;
        }
        Op::Const { dst, .. } => {
            u.writes.push(dst);
            u.pure = true;
        }
        Op::LeaLocal { dst, .. } | Op::LoadLocal { dst, .. } | Op::LoadGlobal { dst, .. } => {
            u.writes.push(dst);
            u.pure = true;
        }
        Op::LoadLocal2 { dst, .. } | Op::LoadLocalImm { dst, .. } => {
            u.writes.push(dst);
            u.writes.push(dst + 1);
            u.pure = true;
        }
        Op::StoreLocal { src, dst, .. } | Op::StoreGlobal { src, dst, .. } => {
            u.reads.push(src);
            u.writes.push(dst);
        }
        Op::Load { dst, addr, .. } => {
            u.reads.push(addr);
            u.writes.push(dst);
        }
        Op::Store { addr, src, dst, .. } => {
            u.reads.push(addr);
            u.reads.push(src);
            u.writes.push(dst);
        }
        Op::CopyWords {
            dst_addr, src, dst, ..
        } => {
            u.reads.push(dst_addr);
            u.reads.push(src);
            u.writes.push(dst);
        }
        Op::ToPtr { dst, src }
        | Op::Bool { dst, src }
        | Op::LogicNot { dst, src }
        | Op::Neg { dst, src }
        | Op::BitNot { dst, src }
        | Op::Conv { dst, src, .. } => {
            u.reads.push(src);
            u.writes.push(dst);
            u.pure = true;
        }
        Op::IndexAddr { dst, base, idx, .. } => {
            u.reads.push(base);
            u.reads.push(idx);
            u.writes.push(dst);
            u.pure = true;
        }
        Op::IndexAddrLL { dst, .. }
        | Op::IndexAddrPL { dst, .. }
        | Op::IndexAddrLeaL { dst, .. } => {
            u.writes.push(dst);
            u.pure = true;
        }
        Op::LoadIdx { dst, base, idx, .. } => {
            u.reads.push(base);
            u.reads.push(idx);
            u.writes.push(dst);
        }
        Op::LoadIdxLL { dst, .. } | Op::LoadIdxPL { dst, .. } | Op::LoadIdxLeaL { dst, .. } => {
            u.writes.push(dst);
        }
        Op::MemberAddr { dst, src, .. } => {
            u.reads.push(src);
            u.writes.push(dst);
        }
        Op::IncDecLocal { dst, .. } | Op::IncDecGlobal { dst, .. } => {
            u.writes.push(dst);
        }
        Op::IncDec { dst, addr, .. } => {
            u.reads.push(addr);
            u.writes.push(dst);
        }
        Op::Arith {
            dst, a, b, mode, ..
        } => {
            u.reads.push(a);
            u.reads.push(b);
            u.writes.push(dst);
            u.pure = !mode.fallible();
        }
        Op::ArithLL { dst, mode, .. } | Op::ArithLI { dst, mode, .. } => {
            u.writes.push(dst);
            u.pure = !mode.fallible();
        }
        Op::ArithRL { dst, mode, .. } | Op::ArithRI { dst, mode, .. } => {
            u.reads.push(dst);
            u.writes.push(dst);
            u.pure = !mode.fallible();
        }
        Op::StoreRR { a, b, dst, .. } => {
            u.reads.push(a);
            u.reads.push(b);
            u.writes.push(dst);
        }
        Op::StoreLL { dst, .. } | Op::StoreLI { dst, .. } => {
            u.writes.push(dst);
        }
        Op::StoreRL { dst, .. } | Op::StoreRI { dst, .. } => {
            u.reads.push(dst);
            u.writes.push(dst);
        }
        Op::RmwLocal { src, dst, .. } | Op::RmwGlobal { src, dst, .. } => {
            u.reads.push(src);
            u.writes.push(dst);
        }
        Op::Rmw { addr, src, dst, .. } => {
            u.reads.push(addr);
            u.reads.push(src);
            u.writes.push(dst);
        }
        Op::JumpIfFalse { src, .. }
        | Op::JumpIfTrue { src, .. }
        | Op::CondBranch { src, .. }
        | Op::SwitchJump { src, .. }
        | Op::CheckFn { src, .. }
        | Op::Ret { src, .. } => {
            u.reads.push(src);
        }
        Op::CmpBranchRR { a, b, .. } => {
            u.reads.push(a);
            u.reads.push(b);
        }
        Op::CmpBranchRL { a, .. } | Op::CmpBranchRI { a, .. } => {
            u.reads.push(a);
        }
        Op::CallDirect {
            argbase,
            nargs,
            dst,
            ..
        } => {
            u.read_range = Some((argbase, nargs));
            u.writes.push(dst);
        }
        Op::CallIndirect {
            callee,
            argbase,
            nargs,
            dst,
            ..
        } => {
            u.reads.push(callee);
            u.read_range = Some((argbase, nargs));
            u.writes.push(dst);
        }
        Op::CallBuiltin {
            argbase,
            nargs,
            dst,
            ..
        } => {
            u.read_range = Some((argbase, nargs));
            u.writes.push(dst);
        }
        Op::ConstRet { .. } => {}
        Op::ConstJump { dst, .. }
        | Op::IncDecLEdge { dst, .. }
        | Op::LoadLBranch { dst, .. }
        | Op::ArithGI { dst, .. } => {
            u.writes.push(dst);
        }
        Op::StoreLEdge { src, .. } => {
            u.reads.push(src);
            u.writes.push(src);
        }
        Op::CmpBranchRCI { a, dst, .. } => {
            u.reads.push(a);
            u.writes.push(dst);
        }
        Op::ArithRLJumpF { dst, .. } => {
            u.reads.push(dst);
            u.writes.push(dst);
        }
        Op::LoadIdxLR { dst, idx, .. } => {
            u.reads.push(idx);
            u.writes.push(dst);
        }
    }
    u
}

/// Applies `f` to every jump-target field of `op`. `SwitchJump`
/// targets live in the side table and are retargeted separately.
pub fn for_each_target(op: &mut Op, mut f: impl FnMut(&mut u32)) {
    match op {
        Op::Jump { target, .. }
        | Op::JumpIfFalse { target, .. }
        | Op::JumpIfTrue { target, .. }
        | Op::EdgeJump { target, .. } => f(target),
        Op::CondBranch { else_target, .. }
        | Op::CmpBranchLL { else_target, .. }
        | Op::CmpBranchLI { else_target, .. }
        | Op::CmpBranchRR { else_target, .. }
        | Op::CmpBranchRL { else_target, .. }
        | Op::CmpBranchRI { else_target, .. } => f(else_target),
        Op::ConstJump { target, .. }
        | Op::StoreLEdge { target, .. }
        | Op::IncDecLEdge { target, .. }
        | Op::ArithRLJumpF { target, .. } => f(target),
        Op::LoadLBranch { else_target, .. } | Op::CmpBranchRCI { else_target, .. } => {
            f(else_target)
        }
        _ => {}
    }
}

/// The jump targets of `op` (not counting switch tables).
pub fn targets(op: &Op) -> Vec<u32> {
    let mut out = Vec::new();
    let mut copy = *op;
    for_each_target(&mut copy, |t| out.push(*t));
    out
}

/// Whether `op` unconditionally transfers control (ends a chunk).
pub fn is_terminator(op: &Op) -> bool {
    matches!(
        op,
        Op::Jump { .. }
            | Op::SwitchJump { .. }
            | Op::EdgeJump { .. }
            | Op::Ret { .. }
            | Op::Fail(_)
            | Op::ConstJump { .. }
            | Op::ConstRet { .. }
            | Op::StoreLEdge { .. }
            | Op::IncDecLEdge { .. }
    )
}

/// The op's batched-tick payload, if it carries one.
pub fn tick_mut(op: &mut Op) -> Option<&mut u32> {
    match op {
        Op::Load { tick, .. }
        | Op::Store { tick, .. }
        | Op::CopyWords { tick, .. }
        | Op::LoadIdx { tick, .. }
        | Op::LoadIdxLL { tick, .. }
        | Op::LoadIdxPL { tick, .. }
        | Op::LoadIdxLeaL { tick, .. }
        | Op::MemberAddr { tick, .. }
        | Op::IncDec { tick, .. }
        | Op::Arith { tick, .. }
        | Op::ArithLL { tick, .. }
        | Op::ArithLI { tick, .. }
        | Op::ArithRL { tick, .. }
        | Op::ArithRI { tick, .. }
        | Op::RmwLocal { tick, .. }
        | Op::RmwGlobal { tick, .. }
        | Op::Rmw { tick, .. }
        | Op::Jump { tick, .. }
        | Op::JumpIfFalse { tick, .. }
        | Op::JumpIfTrue { tick, .. }
        | Op::CondBranch { tick, .. }
        | Op::CmpBranchLL { tick, .. }
        | Op::CmpBranchLI { tick, .. }
        | Op::CmpBranchRR { tick, .. }
        | Op::CmpBranchRL { tick, .. }
        | Op::CmpBranchRI { tick, .. }
        | Op::SwitchJump { tick, .. }
        | Op::EdgeJump { tick, .. }
        | Op::CheckFn { tick, .. }
        | Op::CallDirect { tick, .. }
        | Op::CallIndirect { tick, .. }
        | Op::CallBuiltin { tick, .. }
        | Op::Ret { tick, .. }
        | Op::ConstJump { tick, .. }
        | Op::ConstRet { tick, .. }
        | Op::StoreLEdge { tick, .. }
        | Op::IncDecLEdge { tick, .. }
        | Op::LoadLBranch { tick, .. }
        | Op::ArithGI { tick, .. }
        | Op::CmpBranchRCI { tick, .. }
        | Op::ArithRLJumpF { tick, .. }
        | Op::LoadIdxLR { tick, .. } => Some(tick),
        _ => None,
    }
}

/// Ops that only bump profile counters: free under the dispatch-cost
/// model (and zero-tick in the original stream).
pub fn is_zero_cost(op: &Op) -> bool {
    matches!(
        op,
        Op::BumpSite(_) | Op::BumpFunc(_) | Op::BumpBranch { .. }
    )
}

/// Whether `op` can write memory through a pointer or run arbitrary
/// code — anything after which no frame-slot value can be assumed
/// (frame addresses escape via `LeaLocal`, so stores through pointers
/// and calls may alias any slot).
pub fn clobbers_frame(op: &Op) -> bool {
    matches!(
        op,
        Op::Store { .. }
            | Op::CopyWords { .. }
            | Op::IncDec { .. }
            | Op::Rmw { .. }
            | Op::CallDirect { .. }
            | Op::CallIndirect { .. }
            | Op::CallBuiltin { .. }
            | Op::StoreLEdge { .. }
            | Op::IncDecLEdge { .. }
    )
}

/// Adds `rb` to every register field (inlining a callee at register
/// base `rb`).
pub fn rebase_regs(op: &mut Op, rb: u16) {
    match op {
        Op::Mov { dst, src }
        | Op::ToPtr { dst, src }
        | Op::Bool { dst, src }
        | Op::LogicNot { dst, src }
        | Op::Neg { dst, src }
        | Op::BitNot { dst, src }
        | Op::Conv { dst, src, .. }
        | Op::MemberAddr { dst, src, .. } => {
            *dst += rb;
            *src += rb;
        }
        Op::Const { dst, .. }
        | Op::LeaLocal { dst, .. }
        | Op::LoadLocal { dst, .. }
        | Op::LoadLocal2 { dst, .. }
        | Op::LoadLocalImm { dst, .. }
        | Op::LoadGlobal { dst, .. }
        | Op::IndexAddrLL { dst, .. }
        | Op::IndexAddrPL { dst, .. }
        | Op::IndexAddrLeaL { dst, .. }
        | Op::LoadIdxLL { dst, .. }
        | Op::LoadIdxPL { dst, .. }
        | Op::LoadIdxLeaL { dst, .. }
        | Op::IncDecLocal { dst, .. }
        | Op::IncDecGlobal { dst, .. }
        | Op::ArithLL { dst, .. }
        | Op::ArithLI { dst, .. }
        | Op::ArithRL { dst, .. }
        | Op::ArithRI { dst, .. }
        | Op::StoreLL { dst, .. }
        | Op::StoreLI { dst, .. }
        | Op::StoreRL { dst, .. }
        | Op::StoreRI { dst, .. } => *dst += rb,
        Op::StoreLocal { src, dst, .. }
        | Op::StoreGlobal { src, dst, .. }
        | Op::RmwLocal { src, dst, .. }
        | Op::RmwGlobal { src, dst, .. } => {
            *src += rb;
            *dst += rb;
        }
        Op::Load { dst, addr, .. } | Op::IncDec { dst, addr, .. } => {
            *dst += rb;
            *addr += rb;
        }
        Op::Store { addr, src, dst, .. } | Op::Rmw { addr, src, dst, .. } => {
            *addr += rb;
            *src += rb;
            *dst += rb;
        }
        Op::CopyWords {
            dst_addr, src, dst, ..
        } => {
            *dst_addr += rb;
            *src += rb;
            *dst += rb;
        }
        Op::IndexAddr { dst, base, idx, .. } => {
            *dst += rb;
            *base += rb;
            *idx += rb;
        }
        Op::LoadIdx { dst, base, idx, .. } => {
            *dst += rb;
            *base += rb;
            *idx += rb;
        }
        Op::Arith { dst, a, b, .. } | Op::StoreRR { a, b, dst, .. } => {
            *dst += rb;
            *a += rb;
            *b += rb;
        }
        Op::JumpIfFalse { src, .. }
        | Op::JumpIfTrue { src, .. }
        | Op::CondBranch { src, .. }
        | Op::SwitchJump { src, .. }
        | Op::CheckFn { src, .. }
        | Op::Ret { src, .. } => *src += rb,
        Op::CmpBranchRR { a, b, .. } => {
            *a += rb;
            *b += rb;
        }
        Op::CmpBranchRL { a, .. } | Op::CmpBranchRI { a, .. } => *a += rb,
        Op::ConstJump { dst, .. }
        | Op::StoreLEdge { src: dst, .. }
        | Op::IncDecLEdge { dst, .. }
        | Op::LoadLBranch { dst, .. }
        | Op::ArithGI { dst, .. }
        | Op::ArithRLJumpF { dst, .. } => *dst += rb,
        Op::CmpBranchRCI { a, dst, .. } => {
            *a += rb;
            *dst += rb;
        }
        Op::LoadIdxLR { dst, idx, .. } => {
            *dst += rb;
            *idx += rb;
        }
        Op::ConstRet { .. } => {}
        Op::CallDirect { argbase, dst, .. } | Op::CallBuiltin { argbase, dst, .. } => {
            *argbase += rb;
            *dst += rb;
        }
        Op::CallIndirect {
            callee,
            argbase,
            dst,
            ..
        } => {
            *callee += rb;
            *argbase += rb;
            *dst += rb;
        }
        Op::Tick(_)
        | Op::BumpSite(_)
        | Op::BumpFunc(_)
        | Op::BumpBranch { .. }
        | Op::InitWordsLocal { .. }
        | Op::ZeroLocal { .. }
        | Op::Jump { .. }
        | Op::CmpBranchLL { .. }
        | Op::CmpBranchLI { .. }
        | Op::EdgeJump { .. }
        | Op::Fail(_) => {}
    }
}

/// Adds `fb` to every frame-offset field (inlining a callee at frame
/// base `fb`). Struct-member offsets, static-data indices, and
/// absolute data addresses are not frame-relative and stay put.
pub fn rebase_frame(op: &mut Op, fb: u32) {
    match op {
        Op::LeaLocal { off, .. }
        | Op::LoadLocal { off, .. }
        | Op::LoadLocalImm { off, .. }
        | Op::StoreLocal { off, .. }
        | Op::InitWordsLocal { off, .. }
        | Op::ZeroLocal { off, .. }
        | Op::IncDecLocal { off, .. }
        | Op::ArithLI { off, .. }
        | Op::ArithRL { off, .. }
        | Op::RmwLocal { off, .. }
        | Op::CmpBranchLI { off, .. }
        | Op::CmpBranchRL { off, .. } => *off += fb,
        Op::LoadLocal2 { off_a, off_b, .. }
        | Op::IndexAddrLL { off_a, off_b, .. }
        | Op::LoadIdxLL { off_a, off_b, .. }
        | Op::ArithLL { off_a, off_b, .. }
        | Op::CmpBranchLL { off_a, off_b, .. } => {
            *off_a += fb;
            *off_b += fb;
        }
        Op::IndexAddrPL { idx_off, .. } | Op::LoadIdxPL { idx_off, .. } => *idx_off += fb,
        Op::IndexAddrLeaL {
            lea_off, idx_off, ..
        }
        | Op::LoadIdxLeaL {
            lea_off, idx_off, ..
        } => {
            *lea_off += fb;
            *idx_off += fb;
        }
        Op::StoreRR { off, .. } | Op::StoreRI { off, .. } => *off += fb,
        Op::StoreLL {
            off, off_a, off_b, ..
        } => {
            *off += fb;
            *off_a += fb;
            *off_b += fb;
        }
        Op::StoreLI { off, off_a, .. } => {
            *off += fb;
            *off_a += fb;
        }
        Op::StoreRL { off, off_b, .. } => {
            *off += fb;
            *off_b += fb;
        }
        Op::StoreLEdge { off, .. }
        | Op::IncDecLEdge { off, .. }
        | Op::LoadLBranch { off, .. }
        | Op::ArithRLJumpF { off, .. }
        | Op::LoadIdxLR { off, .. } => *off += fb,
        _ => {}
    }
}
