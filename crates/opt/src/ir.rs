//! The optimizer's chunk IR: lifting a function's contiguous op range
//! into relocatable straight-line chunks, and lowering the whole
//! program back to one flat stream.
//!
//! A *chunk* is a maximal straight-line run of ops: it starts at a
//! jump target (or the op after an unconditional transfer) and ends
//! with an unconditional transfer — lifting appends an explicit
//! `Jump { tick: 0 }` where the original code fell through, so chunks
//! can be reordered, spliced, and dropped freely. Inside the IR every
//! jump-target field holds a `ChunkId` (an index into
//! [`FuncIr::chunks`]); switch tables are cloned per function with
//! `ChunkId` targets. Lowering emits chunks in [`FuncIr::order`],
//! patches targets back to absolute pcs, and rebuilds the side tables.
//!
//! Functions outside the optimization budget are copied verbatim with
//! their jump targets shifted by the relocation delta, so an optimized
//! program always contains every function.

use crate::ops_info;
use profiler::bytecode::{CompiledProgram, FuncMeta, Op, SwitchTable, NONE32};

/// One straight-line run of ops, relocatable as a unit.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Original pc of the first op (`NONE32` for synthesized chunks);
    /// used to map the chunk back to its flowgraph block.
    pub start_pc: u32,
    /// The ops; jump-target fields hold `ChunkId`s.
    pub ops: Vec<Op>,
    /// Estimated (or measured) executions per program run.
    pub freq: f64,
    /// Unreachable — skipped at lowering.
    pub dead: bool,
}

/// A direct-call site found during lifting, for the inliner.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Containing chunk.
    pub chunk: u32,
    /// Op index of the `CallDirect` within the chunk.
    pub idx: u32,
    /// The call-site counter index (`CallSiteId`), or `NONE32` when
    /// the pairing scan could not attribute one.
    pub site: u32,
    /// Callee `FuncId`.
    pub callee: u32,
}

/// One function lifted to chunks.
#[derive(Debug, Clone)]
pub struct FuncIr {
    /// The function's id.
    pub fid: usize,
    /// All chunks; indexed by `ChunkId`.
    pub chunks: Vec<Chunk>,
    /// Entry `ChunkId`.
    pub entry: u32,
    /// Emission order (live chunks only after layout/DCE prune it).
    pub order: Vec<u32>,
    /// Per-function switch tables with `ChunkId` targets.
    pub tables: Vec<SwitchTable>,
    /// Frame size in words (grows under inlining).
    pub frame_size: u32,
    /// Register-window size (grows under inlining).
    pub max_regs: u32,
    /// Direct-call sites eligible for inlining, in op order.
    pub call_sites: Vec<CallSite>,
}

/// Lifts one function into chunk IR. `block_freqs` is the function's
/// per-block frequency vector (estimated or measured); pass `&[]` for
/// an all-zero profile.
pub fn lift(cp: &CompiledProgram, fid: usize, block_freqs: &[f64]) -> FuncIr {
    let meta = &cp.funcs[fid];
    let (start, end) = meta.code;
    debug_assert_ne!(meta.entry, NONE32, "lifting a bodiless prototype");

    // Leaders: the range start, every jump target, and the op after
    // every unconditional transfer.
    let mut leaders = vec![start, meta.entry];
    for pc in start..end {
        let op = &cp.ops[pc as usize];
        for t in ops_info::targets(op) {
            leaders.push(t);
        }
        if let Op::SwitchJump { table, .. } = op {
            push_table_targets(&cp.switch_tables[*table as usize], &mut leaders);
        }
        if ops_info::is_terminator(op) && pc + 1 < end {
            leaders.push(pc + 1);
        }
    }
    leaders.sort_unstable();
    leaders.dedup();
    debug_assert!(leaders.iter().all(|&pc| pc >= start && pc < end));
    let chunk_of = |pc: u32| -> u32 {
        debug_assert!(leaders.binary_search(&pc).is_ok(), "jump into mid-chunk");
        leaders.partition_point(|&l| l <= pc) as u32 - 1
    };

    // Pair each call op with its `BumpSite`: the compiler emits the
    // site bump before the arguments and the call after them, so
    // pushes and pops nest in layout order. (Used only to *rank*
    // sites; the counters themselves are never touched.)
    let mut site_stack = Vec::new();
    let mut site_of_pc = vec![NONE32; (end - start) as usize];
    for pc in start..end {
        match cp.ops[pc as usize] {
            Op::BumpSite(s) => site_stack.push(s),
            Op::CallDirect { .. } => {
                site_of_pc[(pc - start) as usize] = site_stack.pop().unwrap_or(NONE32);
            }
            Op::CallIndirect { .. } | Op::CallBuiltin { .. } => {
                site_stack.pop();
            }
            _ => {}
        }
    }

    let mut chunks = Vec::with_capacity(leaders.len());
    let mut tables = Vec::new();
    let mut call_sites = Vec::new();
    for (i, &lead) in leaders.iter().enumerate() {
        let chunk_end = leaders.get(i + 1).copied().unwrap_or(end);
        let mut ops = Vec::with_capacity((chunk_end - lead + 1) as usize);
        for pc in lead..chunk_end {
            let mut op = cp.ops[pc as usize];
            ops_info::for_each_target(&mut op, |t| *t = chunk_of(*t));
            if let Op::SwitchJump { table, .. } = &mut op {
                let mut t = cp.switch_tables[*table as usize].clone();
                retarget_table(&mut t, &chunk_of);
                *table = tables.len() as u32;
                tables.push(t);
            }
            if let Op::CallDirect { func, .. } = op {
                call_sites.push(CallSite {
                    chunk: i as u32,
                    idx: ops.len() as u32,
                    site: site_of_pc[(pc - start) as usize],
                    callee: func,
                });
            }
            ops.push(op);
        }
        // Materialize the fallthrough so chunk order is semantically
        // free; a zero tick keeps the step count unchanged.
        if !ops.last().is_some_and(ops_info::is_terminator) {
            debug_assert!(i + 1 < leaders.len(), "function falls off its end");
            ops.push(Op::Jump {
                target: i as u32 + 1,
                tick: 0,
            });
        }
        let freq = block_of_pc(&meta.block_pc, lead)
            .and_then(|b| block_freqs.get(b).copied())
            .unwrap_or(0.0);
        chunks.push(Chunk {
            start_pc: lead,
            ops,
            freq,
            dead: false,
        });
    }

    let order = (0..chunks.len() as u32).collect();
    FuncIr {
        fid,
        entry: chunk_of(meta.entry),
        chunks,
        order,
        tables,
        frame_size: meta.frame_size,
        max_regs: meta.max_regs,
        call_sites,
    }
}

/// The flowgraph block containing `pc`, from the function's sorted
/// per-block start pcs.
pub fn block_of_pc(block_pc: &[u32], pc: u32) -> Option<usize> {
    let i = block_pc.partition_point(|&p| p <= pc);
    i.checked_sub(1)
}

fn push_table_targets(table: &SwitchTable, out: &mut Vec<u32>) {
    match table {
        SwitchTable::Dense {
            targets, default, ..
        } => {
            out.extend(targets.iter().copied().filter(|&t| t != NONE32));
            out.push(*default);
        }
        SwitchTable::Sorted {
            targets, default, ..
        } => {
            out.extend(targets.iter().copied());
            out.push(*default);
        }
    }
}

/// Rewrites every jump target of a switch table (the Dense `NONE32`
/// hole meaning "default" is preserved).
fn retarget_table(table: &mut SwitchTable, mut f: impl FnMut(u32) -> u32) {
    match table {
        SwitchTable::Dense {
            targets, default, ..
        } => {
            for t in targets.iter_mut().filter(|t| **t != NONE32) {
                *t = f(*t);
            }
            *default = f(*default);
        }
        SwitchTable::Sorted {
            targets, default, ..
        } => {
            for t in targets.iter_mut() {
                *t = f(*t);
            }
            *default = f(*default);
        }
    }
}

/// Drops a trailing `Jump` whose target is the next chunk in emission
/// order (the jump becomes an implicit fallthrough). Ticks carried by
/// dropped jumps are re-derived by recosting, which always follows.
pub fn drop_redundant_jumps(ir: &mut FuncIr) {
    for w in 0..ir.order.len() {
        let id = ir.order[w] as usize;
        let next = ir.order.get(w + 1).copied();
        if let Some(Op::Jump { target, .. }) = ir.chunks[id].ops.last() {
            if Some(*target) == next && ir.chunks[id].ops.len() > 1 {
                ir.chunks[id].ops.pop();
            }
        }
    }
}

/// Lowers the whole program back to a flat op stream. `irs` holds the
/// transformed IR for budgeted functions (`None` entries are copied
/// verbatim, relocated). `order` is the emission order of function
/// bodies in the flat stream — cross-function hot packing clusters
/// hot bodies together; the `funcs` table stays `FuncId`-indexed and
/// every body stays contiguous, so jump closure is preserved.
pub fn lower(cp: &CompiledProgram, irs: &[Option<FuncIr>], order: &[usize]) -> CompiledProgram {
    debug_assert_eq!(order.len(), cp.funcs.len());
    let mut ops = Vec::with_capacity(cp.ops.len());
    let mut switch_tables = Vec::with_capacity(cp.switch_tables.len());
    let mut funcs: Vec<Option<FuncMeta>> = vec![None; cp.funcs.len()];

    for &fid in order {
        let meta = &cp.funcs[fid];
        let new_start = ops.len() as u32;
        let (start, end) = meta.code;
        match &irs[fid] {
            None => {
                // Verbatim copy, shifted by the relocation delta.
                let delta = new_start.wrapping_sub(start);
                for pc in start..end {
                    let mut op = cp.ops[pc as usize];
                    ops_info::for_each_target(&mut op, |t| *t = t.wrapping_add(delta));
                    if let Op::SwitchJump { table, .. } = &mut op {
                        let mut t = cp.switch_tables[*table as usize].clone();
                        retarget_table(&mut t, |pc| pc.wrapping_add(delta));
                        *table = switch_tables.len() as u32;
                        switch_tables.push(t);
                    }
                    ops.push(op);
                }
                funcs[fid] = Some(FuncMeta {
                    entry: if meta.entry == NONE32 {
                        NONE32
                    } else {
                        meta.entry.wrapping_add(delta)
                    },
                    code: (new_start, ops.len() as u32),
                    block_pc: meta
                        .block_pc
                        .iter()
                        .map(|p| p.wrapping_add(delta))
                        .collect(),
                    ..meta.clone()
                });
            }
            Some(ir) => {
                // Chunk start pcs, in emission order.
                let mut chunk_pc = vec![NONE32; ir.chunks.len()];
                let mut at = new_start;
                for &id in &ir.order {
                    debug_assert!(!ir.chunks[id as usize].dead);
                    chunk_pc[id as usize] = at;
                    at += ir.chunks[id as usize].ops.len() as u32;
                }
                for &id in &ir.order {
                    for op in &ir.chunks[id as usize].ops {
                        let mut op = *op;
                        ops_info::for_each_target(&mut op, |t| {
                            debug_assert_ne!(chunk_pc[*t as usize], NONE32, "jump to dead chunk");
                            *t = chunk_pc[*t as usize];
                        });
                        if let Op::SwitchJump { table, .. } = &mut op {
                            let mut t = ir.tables[*table as usize].clone();
                            retarget_table(&mut t, |c| chunk_pc[c as usize]);
                            *table = switch_tables.len() as u32;
                            switch_tables.push(t);
                        }
                        ops.push(op);
                    }
                }
                funcs[fid] = Some(FuncMeta {
                    entry: chunk_pc[ir.entry as usize],
                    code: (new_start, ops.len() as u32),
                    // Optimized functions are not re-liftable; the
                    // block map is only meaningful for original code.
                    block_pc: Vec::new(),
                    frame_size: ir.frame_size,
                    max_regs: ir.max_regs,
                    ..meta.clone()
                });
            }
        }
    }

    CompiledProgram {
        ops,
        funcs: funcs
            .into_iter()
            .map(|f| f.expect("every function emitted exactly once"))
            .collect(),
        switch_tables,
        main: cp.main,
        images: cp.images.clone(),
        fails: cp.fails.clone(),
        data_image: cp.data_image.clone(),
        block_base: cp.block_base.clone(),
        block_lens: cp.block_lens.clone(),
        edge_keys: cp.edge_keys.clone(),
        n_branches: cp.n_branches,
        n_sites: cp.n_sites,
    }
}
