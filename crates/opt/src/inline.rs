//! Frequency-guided function inlining by chunk splicing.
//!
//! An inlined call replicates `enter()`/`Ret` inline: the callee's
//! frame is bump-allocated at the end of the caller's (so the caller's
//! single frame allocation covers it), its registers are rebased onto
//! the call's destination window (compiler invariant: `argbase == dst`
//! and every register at or above `dst` is dead after the call), and
//! its original chunks are spliced in with `Ret` rewritten to a move
//! plus a jump to the split-off continuation. A zero-cost
//! [`Op::BumpFunc`] replicates the function-entry counter bumps and a
//! `ZeroLocal` replicates the per-call frame zero-fill, so every
//! *count* profile counter stays byte-identical; only `CALL_COST`
//! attribution (`func_cost`) and step accounting change.
//!
//! Candidates may materialize frame addresses (`LeaLocal` and
//! friends) as long as the [`crate::alias`] analysis proves those
//! addresses stay contained in the activation: dereferences relocate
//! together with the frame, so merging it into the caller's cannot
//! change what any runtime pointer observes.

use crate::ir::{lift, CallSite, FuncIr};
use crate::ops_info;
use profiler::bytecode::{CompiledProgram, Op, ParamBind, SwitchTable, NONE32};

/// Upper bound on callee size (ops) for inlining.
pub const MAX_INLINE_OPS: u32 = 96;

/// Why a call site cannot be inlined (or `None` if it can).
fn reject(cp: &CompiledProgram, caller: usize, site: &CallSite) -> bool {
    let callee = &cp.funcs[site.callee as usize];
    let (start, end) = callee.code;
    if callee.entry == NONE32 || site.callee as usize == caller || end - start > MAX_INLINE_OPS {
        return true;
    }
    if !callee
        .params
        .iter()
        .all(|p| matches!(p, ParamBind::Scalar { .. }))
    {
        return true;
    }
    // Address-taken locals are fine as long as the alias analysis
    // proves every materialized frame address stays contained in the
    // activation: the splice relocates the frame, so an escaping or
    // numerically-observed address could diverge.
    !crate::alias::frame_contained(&cp.ops[start as usize..end as usize])
}

/// The result of one successful splice, for call-site fixups.
pub struct Spliced {
    /// Chunk holding the caller ops after the call.
    pub post_chunk: u32,
    /// Ops added to the caller (code growth).
    pub growth: u32,
    /// The callee body's own call sites, now in caller coordinates —
    /// candidates for further (multi-level) inlining.
    pub new_sites: Vec<CallSite>,
}

/// Conservative pre-splice growth estimate, for budget checks.
pub fn growth_estimate(cp: &CompiledProgram, site: &CallSite) -> u32 {
    let callee = &cp.funcs[site.callee as usize];
    let (start, end) = callee.code;
    end - start + callee.params.len() as u32 + 4
}

/// Whether `site` can be inlined into `caller` at all (size, shape,
/// and register-window checks; the budget is the caller's concern).
pub fn can_inline(cp: &CompiledProgram, ir: &FuncIr, site: &CallSite) -> bool {
    if reject(cp, ir.fid, site) {
        return false;
    }
    let Op::CallDirect {
        func, argbase, dst, ..
    } = ir.chunks[site.chunk as usize].ops[site.idx as usize]
    else {
        return false;
    };
    debug_assert_eq!(func, site.callee);
    if argbase != dst {
        // The splice relies on the compiler's argbase == dst layout
        // (arguments live at the destination window).
        return false;
    }
    let callee = &cp.funcs[site.callee as usize];
    // The rebased callee window must stay within u16 registers.
    (dst as u32 + callee.max_regs) <= u16::MAX as u32
}

/// Splices `site`'s callee into the caller. The caller must have
/// checked [`can_inline`] first.
///
/// `callee_freqs` are the callee's whole-run per-block frequencies
/// (empty when unknown): the spliced chunks inherit the callee's
/// *shape* of heat, rescaled so the entry matches the calling chunk's
/// frequency — downstream fusion and layout then see this instance's
/// share rather than the callee's all-callers total.
pub fn inline_site(
    ir: &mut FuncIr,
    cp: &CompiledProgram,
    site: &CallSite,
    callee_freqs: &[f64],
) -> Spliced {
    let Op::CallDirect { dst: rb, nargs, .. } =
        ir.chunks[site.chunk as usize].ops[site.idx as usize]
    else {
        unreachable!("call site coordinates went stale");
    };
    let callee_fid = site.callee as usize;
    let callee = &cp.funcs[callee_fid];
    let fb = ir.frame_size;
    ir.frame_size += callee.frame_size;
    ir.max_regs = ir.max_regs.max(rb as u32 + callee.max_regs);

    let mut body = lift(cp, callee_fid, callee_freqs);
    let base = ir.chunks.len() as u32;
    let table_base = ir.tables.len() as u32;
    let post_chunk = base + body.chunks.len() as u32;
    let site_freq = ir.chunks[site.chunk as usize].freq;
    let entry_freq = body.chunks[body.entry as usize].freq;
    if callee_freqs.is_empty() || entry_freq <= 0.0 {
        for chunk in &mut body.chunks {
            chunk.freq = site_freq;
        }
    } else {
        let scale = site_freq / entry_freq;
        for chunk in &mut body.chunks {
            chunk.freq *= scale;
        }
    }
    let new_sites = body
        .call_sites
        .iter()
        .map(|s| CallSite {
            chunk: s.chunk + base,
            ..*s
        })
        .collect();
    let mut growth = 0u32;

    // Split the calling chunk: the continuation becomes its own chunk.
    let caller_chunk = &mut ir.chunks[site.chunk as usize];
    let post_ops = caller_chunk.ops.split_off(site.idx as usize + 1);
    caller_chunk.ops.pop(); // the CallDirect itself

    // Prologue: zero the callee frame region (enter() zero-fills on
    // every call — the body may run many times), bump the entry
    // counters, bind parameters. `StoreLocal`'s register write-back
    // clobbers the argument register with the converted value, which
    // is fine: registers at or above `rb` are dead in the caller.
    if callee.frame_size > 0 {
        caller_chunk.ops.push(Op::ZeroLocal {
            off: fb,
            len: callee.frame_size,
        });
    }
    caller_chunk.ops.push(Op::BumpFunc(site.callee));
    for (i, p) in callee
        .params
        .iter()
        .enumerate()
        .take((nargs as usize).min(callee.params.len()))
    {
        let ParamBind::Scalar { off, class } = *p else {
            unreachable!("can_inline requires scalar params");
        };
        caller_chunk.ops.push(Op::StoreLocal {
            off: off + fb,
            src: rb + i as u16,
            class,
            dst: rb + i as u16,
        });
    }
    caller_chunk.ops.push(Op::Jump {
        target: base + body.entry,
        tick: 0,
    });
    growth += caller_chunk.ops.len() as u32 - site.idx - 1;

    // Splice the callee body, rebased and retargeted.
    for chunk in body.chunks {
        let mut ops = Vec::with_capacity(chunk.ops.len() + 1);
        for op in chunk.ops {
            let mut op = op;
            ops_info::rebase_regs(&mut op, rb);
            ops_info::rebase_frame(&mut op, fb);
            ops_info::for_each_target(&mut op, |t| *t += base);
            if let Op::SwitchJump { table, .. } = &mut op {
                *table += table_base;
            }
            if let Op::Ret { src, .. } = op {
                // `Ret` writes the call destination and resumes the
                // caller; the frame shrink is the caller's eventual
                // `Ret`'s job now.
                if src != rb {
                    ops.push(Op::Mov { dst: rb, src });
                }
                ops.push(Op::Jump {
                    target: post_chunk,
                    tick: 0,
                });
            } else {
                ops.push(op);
            }
        }
        growth += ops.len() as u32;
        ir.chunks.push(crate::ir::Chunk {
            start_pc: NONE32,
            ops,
            freq: site_freq,
            dead: false,
        });
    }
    for table in body.tables {
        let mut table = table;
        retarget(&mut table, base);
        ir.tables.push(table);
    }

    // The continuation chunk.
    ir.chunks.push(crate::ir::Chunk {
        start_pc: NONE32,
        ops: post_ops,
        freq: site_freq,
        dead: false,
    });

    // Keep emission order local: caller chunk, body, continuation.
    let pos = ir
        .order
        .iter()
        .position(|&c| c == site.chunk)
        .expect("calling chunk is live");
    ir.order
        .splice(pos + 1..pos + 1, (base..=post_chunk).collect::<Vec<_>>());

    Spliced {
        post_chunk,
        growth,
        new_sites,
    }
}

fn retarget(table: &mut SwitchTable, base: u32) {
    match table {
        SwitchTable::Dense {
            targets, default, ..
        } => {
            for t in targets.iter_mut().filter(|t| **t != NONE32) {
                *t += base;
            }
            *default += base;
        }
        SwitchTable::Sorted {
            targets, default, ..
        } => {
            for t in targets.iter_mut() {
                *t += base;
            }
            *default += base;
        }
    }
}
