//! Singular and degenerate flow systems: hand-built cases where `I − Wᵀ`
//! has no unique solution and both solver paths must fall back to the
//! damped truncation — and agree with each other.
//!
//! The damped model computes `x = Σ_k (0.999·Wᵀ)^k b`, so for any
//! system with non-negative weights and injection the fallback is
//! finite and non-negative by construction; these tests pin that down
//! on the shapes the fuzzer's closed-CFG oracle generates (see
//! `crates/fuzzgen`).

use linsolve::{FlowSystem, Matrix, SolveError};

/// The damped iteration stops when the max-norm step drops below 1e-9;
/// the remaining distance to the fixed point is about `step/(1−d)`, so
/// answers of magnitude ~1000 agree to ~1e-6 at best.
const DAMPED_TOL: f64 = 1e-4;

/// When only part of the graph is singular the two paths model it
/// differently: dense damping scales *every* arc by `d = 0.999`, while
/// the sparse path damps only inside the singular component. Arcs
/// crossing into or out of the damped region therefore differ by a
/// factor of `d`, i.e. one part in a thousand.
const MIXED_TOL: f64 = 5e-3;

fn assert_close(sparse: &[f64], dense: &[f64], tol: f64) {
    assert_eq!(sparse.len(), dense.len());
    for (i, (a, b)) in sparse.iter().zip(dense).enumerate() {
        assert!(a.is_finite() && *a >= 0.0, "sparse[{i}] = {a}");
        assert!(b.is_finite() && *b >= 0.0, "dense[{i}] = {b}");
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= tol * scale,
            "node {i}: sparse {a} vs dense {b}"
        );
    }
}

#[test]
fn zero_row_matrix_reports_singular() {
    // A row of zeros: no pivot anywhere in that column's elimination.
    let m = Matrix::from_rows(&[
        vec![1.0, 2.0, 0.0],
        vec![0.0, 0.0, 0.0],
        vec![0.0, 1.0, 1.0],
    ]);
    let err = m.solve(&[1.0, 1.0, 1.0]).expect_err("zero row is singular");
    assert!(matches!(err, SolveError::Singular { .. }));
}

#[test]
fn inescapable_self_loop_matches_dense() {
    // Probability-1 self loop: (I − Wᵀ) has a zero row, so the direct
    // solve fails on both paths. The sparse path uses the damped closed
    // form 1/(1 − 0.999) = 1000; the dense path iterates to the same
    // fixed point.
    let mut sys = FlowSystem::new(1);
    sys.inject(0, 1.0);
    sys.add_arc(0, 0, 1.0);
    let sparse = sys.solve().expect("damped closed form");
    let dense = sys.solve_dense().expect("damped iteration converges");
    assert!((sparse[0] - 1000.0).abs() < 1e-6, "got {}", sparse[0]);
    assert_close(&sparse, &dense, DAMPED_TOL);
}

#[test]
fn closed_two_cycle_matches_dense() {
    // 0 ⇄ 1 with weight 1 each way and injection at 0: one singular
    // SCC covering the whole graph. The sparse path's local damped
    // solve and the dense path's global damped solve are the same
    // iteration, so they must agree tightly.
    let mut sys = FlowSystem::new(2);
    sys.inject(0, 1.0);
    sys.add_arc(0, 1, 1.0);
    sys.add_arc(1, 0, 1.0);
    let sparse = sys.solve().expect("sparse converges");
    let dense = sys.solve_dense().expect("dense converges");
    // x0 = 1 + d²·x0 → x0 = 1/(1 − d²) ≈ 500.25.
    assert!((sparse[0] - 1.0 / (1.0 - 0.999 * 0.999)).abs() < 1e-3);
    assert_close(&sparse, &dense, DAMPED_TOL);
}

#[test]
fn chain_feeding_a_closed_cycle_matches_dense() {
    // An acyclic prefix (0 → 1) ending in an inescapable 2-cycle
    // (1 ⇄ 2): the sparse path solves the chain exactly and only damps
    // the cycle, while the dense path damps globally. They must still
    // land on the same fixed point within the damped tolerance.
    let mut sys = FlowSystem::new(3);
    sys.inject(0, 1.0);
    sys.add_arc(0, 1, 1.0);
    sys.add_arc(1, 2, 1.0);
    sys.add_arc(2, 1, 1.0);
    let sparse = sys.solve().expect("sparse converges");
    let dense = sys.solve_dense().expect("dense converges");
    assert!((sparse[0] - 1.0).abs() < 1e-12, "chain head is exact");
    assert!(sparse[1] > 100.0, "cycle members amplify: {}", sparse[1]);
    assert_close(&sparse, &dense, MIXED_TOL);
}

#[test]
fn disconnected_node_with_no_injection_stays_zero() {
    // Node 2 has no arcs and no injection: its equation is the identity
    // row x = 0, which must survive both paths even when the rest of
    // the system is singular.
    let mut sys = FlowSystem::new(3);
    sys.inject(0, 1.0);
    sys.add_arc(0, 0, 1.0); // singular self-loop elsewhere
    sys.add_arc(0, 1, 0.5);
    let sparse = sys.solve().expect("sparse converges");
    let dense = sys.solve_dense().expect("dense converges");
    assert_eq!(sparse[2], 0.0);
    assert!(dense[2].abs() < 1e-12);
    assert_close(&sparse, &dense, MIXED_TOL);
}

#[test]
fn closed_stochastic_diamond_matches_dense() {
    // The fuzzer's closed-CFG shape in miniature: entry splits 50/50,
    // both arms rejoin, and the exit feeds back into the entry with
    // weight 1. Every out-weight sums to 1, so the system is a closed
    // recurrent chain — singular, but with a non-negative damped
    // solution on both paths.
    let mut sys = FlowSystem::new(4);
    sys.inject(0, 1.0);
    sys.add_arc(0, 1, 0.5);
    sys.add_arc(0, 2, 0.5);
    sys.add_arc(1, 3, 1.0);
    sys.add_arc(2, 3, 1.0);
    sys.add_arc(3, 0, 1.0); // exit -> entry back edge closes the chain
    let sparse = sys.solve().expect("sparse converges");
    let dense = sys.solve_dense().expect("dense converges");
    // The whole graph is one SCC of effective cycle weight 1: every
    // node's frequency is ~1/(1 − d²)-scale, far above 1.
    assert!(sparse[0] > 100.0, "entry: {}", sparse[0]);
    // The two arms split the entry's flow evenly.
    assert!((sparse[1] - sparse[2]).abs() < 1e-6 * sparse[1]);
    assert_close(&sparse, &dense, DAMPED_TOL);
}
