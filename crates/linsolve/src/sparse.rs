//! Sparse, SCC-aware solving of flow systems.
//!
//! Flow graphs from CFGs and call graphs are extremely sparse (most
//! blocks have out-degree ≤ 2), so the dense `O(n³)` elimination in
//! [`crate::Matrix::solve`] wastes nearly all of its work. This module
//! exploits the graph structure instead:
//!
//! 1. the arc list is compiled into a CSR adjacency ([`Csr`]);
//! 2. the graph is condensed into strongly connected components with
//!    an iterative Tarjan pass ([`tarjan_scc`]);
//! 3. components are solved in topological order — a trivial SCC is a
//!    single substitution over its incoming arcs (`O(in-degree)`),
//!    and a nontrivial SCC becomes a *local* dense solve (or, if that
//!    local matrix is singular, a damped fixed-point iteration
//!    confined to the component).
//!
//! Acyclic regions therefore solve in `O(V + E)` with `O(V + E)`
//! memory, and the cubic cost is paid only per cyclic component — in
//! practice loops and recursion cliques of a handful of nodes.

use crate::solve::FlowSolveError;
use crate::Matrix;

/// Compressed sparse row adjacency of a weighted directed graph,
/// indexed by *destination*: `incoming(v)` lists the `(src, weight)`
/// arcs flowing into `v`, which is the orientation the flow equation
/// `x[v] = inject[v] + Σ w·x[src]` consumes.
#[derive(Debug, Clone)]
pub struct Csr {
    n: usize,
    /// Row offsets into `arcs`, length `n + 1`.
    row: Vec<u32>,
    /// `(src, weight)` pairs grouped by destination.
    arcs: Vec<(u32, f64)>,
}

impl Csr {
    /// Builds the incoming-arc CSR for `n` nodes from an arc list of
    /// `(src, dst, weight)` triples. Parallel arcs are kept; they sum
    /// naturally during propagation.
    ///
    /// # Errors
    ///
    /// Returns [`FlowSolveError::NodeOutOfRange`] if any arc endpoint
    /// is `>= n`.
    pub fn from_arcs(n: usize, arcs: &[(usize, usize, f64)]) -> Result<Self, FlowSolveError> {
        let mut counts = vec![0u32; n + 1];
        for &(src, dst, _) in arcs {
            if src >= n || dst >= n {
                return Err(FlowSolveError::NodeOutOfRange {
                    node: src.max(dst),
                    len: n,
                });
            }
            counts[dst + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row = counts;
        let mut next = row.clone();
        let mut packed = vec![(0u32, 0.0f64); arcs.len()];
        for &(src, dst, w) in arcs {
            let slot = next[dst] as usize;
            packed[slot] = (src as u32, w);
            next[dst] += 1;
        }
        Ok(Csr {
            n,
            row,
            arcs: packed,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The `(src, weight)` arcs flowing into `v`.
    pub fn incoming(&self, v: usize) -> &[(u32, f64)] {
        &self.arcs[self.row[v] as usize..self.row[v + 1] as usize]
    }
}

/// Iterative Tarjan: partitions `0..adj.len()` into strongly connected
/// components. Components are returned in *reverse topological* order
/// of the condensation (every component precedes the components that
/// point into it), which is the natural emission order of the
/// algorithm; callers wanting sources-first order reverse the list.
pub fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: u32 = u32::MAX;
    let n = adj.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// Damping factor shared with the historical dense fallback: the
/// fixed-point iteration computes `x ← b + damping·Wᵀx`, which
/// truncates the infinite execution of an inescapable cycle after
/// roughly `1/(1−damping)` effective traversals.
pub(crate) const DAMPING: f64 = 0.999;
/// Iteration budget for one damped component solve.
pub(crate) const MAX_ITERS: usize = 60_000;
/// Convergence threshold on the max-norm step size.
pub(crate) const TOLERANCE: f64 = 1e-9;
/// Pivots below this are treated as singular, matching [`Matrix::solve`].
const SINGULAR_TOL: f64 = 1e-12;

/// Solves `x[v] = inject[v] + Σ_{arc src→v} w·x[src]` for every node,
/// exploiting sparsity and SCC structure as described in the module
/// docs.
///
/// # Errors
///
/// Returns [`FlowSolveError::NodeOutOfRange`] for malformed arcs and
/// [`FlowSolveError::DidNotConverge`] if a singular cyclic component's
/// damped iteration fails to settle.
pub fn solve_sparse(
    n: usize,
    arcs: &[(usize, usize, f64)],
    inject: &[f64],
) -> Result<Vec<f64>, FlowSolveError> {
    debug_assert_eq!(inject.len(), n);
    if n == 0 {
        return Ok(Vec::new());
    }
    let _sp = obs::span("linsolve.solve");
    // Telemetry accumulates in locals and is recorded once on exit, so
    // the per-component loop takes no locks even while tracing.
    let mut stat_trivial = 0u64;
    let mut stat_dense = 0u64;
    let mut stat_damped = 0u64;
    let incoming = Csr::from_arcs(n, arcs)?;

    // Outgoing adjacency for the condensation (weights irrelevant).
    let mut out_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(src, dst, _) in arcs {
        out_adj[src].push(dst);
    }

    // Tarjan emits components sinks-first; reverse for sources-first.
    let mut sccs = tarjan_scc(&out_adj);
    sccs.reverse();

    let mut comp_of = vec![0u32; n];
    for (ci, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v] = ci as u32;
        }
    }

    let mut x = vec![0.0f64; n];
    // Scratch buffers reused across nontrivial components.
    let mut local_index = vec![u32::MAX; n];

    for (ci, comp) in sccs.iter().enumerate() {
        // External inflow: arcs from earlier components are final.
        // (Arcs from *this* component are the unknowns handled below.)
        if let [v] = comp[..] {
            // Trivial SCC: x[v] = (b[v]) / (1 - self_weight).
            let mut b = inject[v];
            let mut self_w = 0.0;
            for &(src, w) in incoming.incoming(v) {
                if src as usize == v {
                    self_w += w;
                } else {
                    b += w * x[src as usize];
                }
            }
            if self_w == 0.0 {
                x[v] = b;
            } else {
                let denom = 1.0 - self_w;
                if denom.abs() > SINGULAR_TOL {
                    x[v] = b / denom;
                } else {
                    // Inescapable self-loop: damped closed form,
                    // identical to the fixed point of the damped
                    // iteration (converges because DAMPING·w < 1).
                    x[v] = b / (1.0 - DAMPING * self_w);
                }
            }
            stat_trivial += 1;
            continue;
        }

        // Nontrivial SCC: local dense solve over the members.
        let k = comp.len();
        for (i, &v) in comp.iter().enumerate() {
            local_index[v] = i as u32;
        }
        let mut m = Matrix::identity(k);
        let mut b = vec![0.0f64; k];
        for (i, &v) in comp.iter().enumerate() {
            b[i] = inject[v];
            for &(src, w) in incoming.incoming(v) {
                let src = src as usize;
                if comp_of[src] as usize == ci {
                    m[(i, local_index[src] as usize)] -= w;
                } else {
                    b[i] += w * x[src];
                }
            }
        }
        let _scc = obs::span("linsolve.scc");
        match m.solve(&b) {
            Ok(local) => {
                stat_dense += 1;
                for (i, &v) in comp.iter().enumerate() {
                    x[v] = local[i];
                }
            }
            Err(_) => {
                // Singular component (e.g. a cycle that can never
                // exit): damped fixed point confined to the SCC.
                stat_damped += 1;
                let local =
                    solve_damped_component(comp, &local_index, ci, &comp_of, &incoming, &b)?;
                for (i, &v) in comp.iter().enumerate() {
                    x[v] = local[i];
                }
            }
        }
        drop(_scc);
        for &v in comp {
            local_index[v] = u32::MAX;
        }
    }
    if obs::enabled() {
        obs::counter_add("linsolve.solves", 1);
        obs::counter_add("linsolve.scc.trivial", stat_trivial);
        obs::counter_add("linsolve.scc.dense", stat_dense);
        obs::counter_add("linsolve.scc.damped_fallback", stat_damped);
    }
    Ok(x)
}

/// Damped fixed-point iteration over one singular component:
/// `y ← b + DAMPING·W_localᵀ y` until the max-norm step drops below
/// [`TOLERANCE`].
fn solve_damped_component(
    comp: &[usize],
    local_index: &[u32],
    ci: usize,
    comp_of: &[u32],
    incoming: &Csr,
    b: &[f64],
) -> Result<Vec<f64>, FlowSolveError> {
    let k = comp.len();
    let mut y = b.to_vec();
    let mut next = vec![0.0f64; k];
    let mut residual = f64::INFINITY;
    for _ in 0..MAX_ITERS {
        next.copy_from_slice(b);
        for (i, &v) in comp.iter().enumerate() {
            for &(src, w) in incoming.incoming(v) {
                let src = src as usize;
                if comp_of[src] as usize == ci {
                    next[i] += DAMPING * w * y[local_index[src] as usize];
                }
            }
        }
        residual = y
            .iter()
            .zip(&next)
            .map(|(a, c)| (a - c).abs())
            .fold(0.0, f64::max);
        std::mem::swap(&mut y, &mut next);
        if residual < TOLERANCE {
            obs::gauge_max("linsolve.damped.residual.max", residual);
            return Ok(y);
        }
    }
    obs::gauge_max("linsolve.damped.residual.max", residual);
    Err(FlowSolveError::DidNotConverge {
        iterations: MAX_ITERS,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_groups_by_destination() {
        let csr = Csr::from_arcs(3, &[(0, 1, 0.5), (2, 1, 0.25), (1, 2, 1.0)]).unwrap();
        assert_eq!(csr.len(), 3);
        assert!(csr.incoming(0).is_empty());
        let mut into1: Vec<(u32, f64)> = csr.incoming(1).to_vec();
        into1.sort_by_key(|&(s, _)| s);
        assert_eq!(into1, vec![(0, 0.5), (2, 0.25)]);
        assert_eq!(csr.incoming(2), &[(1, 1.0)]);
    }

    #[test]
    fn csr_rejects_out_of_range() {
        assert!(matches!(
            Csr::from_arcs(2, &[(0, 5, 1.0)]),
            Err(FlowSolveError::NodeOutOfRange { node: 5, len: 2 })
        ));
    }

    #[test]
    fn tarjan_finds_components_in_reverse_topo_order() {
        // 0 -> 1 <-> 2 -> 3, 3 -> 3 (self loop).
        let adj = vec![vec![1], vec![2], vec![1, 3], vec![3]];
        let sccs = tarjan_scc(&adj);
        let mut sorted: Vec<Vec<usize>> = sccs
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect();
        // Emission order: {3} first (sink), then {1,2}, then {0}.
        assert_eq!(sorted.remove(0), vec![3]);
        assert_eq!(sorted.remove(0), vec![1, 2]);
        assert_eq!(sorted.remove(0), vec![0]);
    }

    #[test]
    fn tarjan_handles_disconnected_graphs() {
        let adj = vec![vec![], vec![], vec![]];
        assert_eq!(tarjan_scc(&adj).len(), 3);
    }

    #[test]
    fn acyclic_chain_is_exact() {
        let arcs: Vec<(usize, usize, f64)> = (0..99).map(|i| (i, i + 1, 0.5)).collect();
        let mut inject = vec![0.0; 100];
        inject[0] = 1.0;
        let x = solve_sparse(100, &arcs, &inject).unwrap();
        for (i, v) in x.iter().enumerate() {
            assert!((v - 0.5f64.powi(i as i32)).abs() < 1e-12, "node {i}: {v}");
        }
    }

    #[test]
    fn two_node_cycle_matches_closed_form() {
        // 0 -> 1 (1.0), 1 -> 0 (0.5): x0 = 1 + 0.5 x1, x1 = x0.
        let x = solve_sparse(2, &[(0, 1, 1.0), (1, 0, 0.5)], &[1.0, 0.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn inescapable_cycle_uses_damped_fallback() {
        // 0 <-> 1 with probability 1: singular, damped result is large
        // but finite and symmetric.
        let x = solve_sparse(2, &[(0, 1, 1.0), (1, 0, 1.0)], &[1.0, 0.0]).unwrap();
        assert!(x[0] > 100.0 && x[0].is_finite());
        assert!((x[0] - x[1]).abs() / x[0] < 0.01);
    }
}
