//! Flow-system solving on top of the sparse SCC solver (with the dense
//! [`Matrix`] path retained as a reference baseline).
//!
//! Both Markov models in the paper have the same shape: a directed graph
//! whose arcs carry multipliers, plus an *injection* (the entry block gets
//! frequency 1; `main` gets invocation count 1). The frequency of every
//! node satisfies
//!
//! ```text
//! freq(n) = inject(n) + Σ_{arc a: src→n} weight(a) · freq(src)
//! ```
//!
//! i.e. `(I − Wᵀ) x = inject` where `W[s][t]` is the total arc weight from
//! `s` to `t`. [`FlowSystem`] builds and solves that system. The default
//! [`FlowSystem::solve`] exploits the graph's sparsity and SCC structure
//! (see [`crate::sparse`]); [`FlowSystem::solve_dense`] is the original
//! `O(n³)` Gaussian elimination, kept as the oracle the property tests
//! and the `solver_scaling` bench compare against.

use std::error::Error;
use std::fmt;

use crate::sparse;
use crate::Matrix;

/// Error returned by [`Matrix::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No pivot above the numerical tolerance exists in `column`; the
    /// system has no unique solution.
    Singular {
        /// The elimination column at which the zero pivot appeared.
        column: usize,
    },
    /// The matrix is not square, or the right-hand side has the wrong length.
    DimensionMismatch {
        /// Matrix row count.
        rows: usize,
        /// Matrix column count.
        cols: usize,
        /// Right-hand-side length.
        rhs: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular { column } => {
                write!(f, "singular system: no usable pivot in column {column}")
            }
            SolveError::DimensionMismatch { rows, cols, rhs } => write!(
                f,
                "dimension mismatch: {rows}x{cols} matrix with rhs of length {rhs}"
            ),
        }
    }
}

impl Error for SolveError {}

/// Error returned by [`FlowSystem::solve`] and [`solve_flow`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlowSolveError {
    /// The direct solve failed and the damped iteration did not converge.
    DidNotConverge {
        /// Iterations attempted before giving up.
        iterations: usize,
        /// The max-norm step size at the final iteration — how far the
        /// fixed point still was when the budget ran out. Useful for
        /// diagnosing pathological systems (e.g. the Figure 8
        /// recursion): a residual just above tolerance means "almost
        /// settled", a huge one means genuine divergence.
        residual: f64,
    },
    /// An arc or injection referenced a node index out of range.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the system.
        len: usize,
    },
}

impl fmt::Display for FlowSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowSolveError::DidNotConverge {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "flow iteration did not converge after {iterations} rounds \
                     (final residual {residual:.3e})"
                )
            }
            FlowSolveError::NodeOutOfRange { node, len } => {
                write!(f, "arc references node {node} but system has {len} nodes")
            }
        }
    }
}

impl Error for FlowSolveError {}

/// A weighted flow graph together with an injection vector.
///
/// # Examples
///
/// A two-block loop whose back edge has probability 0.8 executes the body
/// five times per entry:
///
/// ```
/// use linsolve::FlowSystem;
///
/// let mut sys = FlowSystem::new(2);
/// sys.inject(0, 1.0);
/// sys.add_arc(0, 1, 1.0); // entry -> header
/// sys.add_arc(1, 1, 0.8); // header -> header (back edge)
/// let freq = sys.solve().unwrap();
/// assert!((freq[1] - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowSystem {
    n: usize,
    arcs: Vec<(usize, usize, f64)>,
    inject: Vec<f64>,
    /// First out-of-range node passed to [`FlowSystem::inject`];
    /// reported by [`FlowSystem::solve`] like a malformed arc.
    bad_inject: Option<usize>,
}

impl FlowSystem {
    /// Creates a system with `n` nodes, no arcs, and zero injection.
    pub fn new(n: usize) -> Self {
        FlowSystem {
            n,
            arcs: Vec::new(),
            inject: vec![0.0; n],
            bad_inject: None,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `amount` of external flow into `node` (e.g. 1.0 for the entry).
    ///
    /// An out-of-range `node` is recorded and reported as
    /// [`FlowSolveError::NodeOutOfRange`] by [`FlowSystem::solve`],
    /// matching how [`FlowSystem::add_arc`] treats bad indices.
    ///
    /// ```
    /// use linsolve::{FlowSolveError, FlowSystem};
    ///
    /// let mut sys = FlowSystem::new(2);
    /// sys.inject(7, 1.0); // out of range: deferred, not a panic
    /// assert!(matches!(
    ///     sys.solve(),
    ///     Err(FlowSolveError::NodeOutOfRange { node: 7, len: 2 })
    /// ));
    /// ```
    pub fn inject(&mut self, node: usize, amount: f64) {
        if node >= self.n {
            self.bad_inject.get_or_insert(node);
            return;
        }
        self.inject[node] += amount;
    }

    /// Adds an arc carrying `weight` times the source's frequency into `dst`.
    /// Parallel arcs accumulate.
    pub fn add_arc(&mut self, src: usize, dst: usize, weight: f64) {
        self.arcs.push((src, dst, weight));
    }

    /// Iterates over the (src, dst, accumulated weight) arcs.
    pub fn arcs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.arcs.iter().copied()
    }

    /// Checks indices recorded by [`FlowSystem::inject`].
    fn validate(&self) -> Result<(), FlowSolveError> {
        match self.bad_inject {
            Some(node) => Err(FlowSolveError::NodeOutOfRange { node, len: self.n }),
            None => Ok(()),
        }
    }

    /// Builds the dense `(I − Wᵀ)` matrix of the system.
    fn system_matrix(&self) -> Result<Matrix, FlowSolveError> {
        let mut m = Matrix::identity(self.n);
        for &(src, dst, w) in &self.arcs {
            if src >= self.n || dst >= self.n {
                return Err(FlowSolveError::NodeOutOfRange {
                    node: src.max(dst),
                    len: self.n,
                });
            }
            m[(dst, src)] -= w;
        }
        Ok(m)
    }

    /// Solves for the frequency of every node.
    ///
    /// The graph is condensed into strongly connected components and
    /// solved component-by-component in topological order: acyclic
    /// regions cost `O(V + E)`, and each cyclic component gets a small
    /// local direct solve, with a damped fixed-point iteration (the
    /// truncation of the infinite execution) only when that component
    /// is singular — e.g. a loop that can never exit. See
    /// [`crate::sparse`] for the full architecture.
    ///
    /// # Errors
    ///
    /// Returns [`FlowSolveError::NodeOutOfRange`] for malformed arcs or
    /// injections and [`FlowSolveError::DidNotConverge`] if a singular
    /// component's fallback iteration fails to settle.
    pub fn solve(&self) -> Result<Vec<f64>, FlowSolveError> {
        self.validate()?;
        sparse::solve_sparse(self.n, &self.arcs, &self.inject)
    }

    /// Solves the system with the original dense `O(n³)` elimination,
    /// falling back to a globally damped fixed-point iteration when the
    /// matrix is singular.
    ///
    /// [`FlowSystem::solve`] is faster on every graph and identical in
    /// result up to floating-point reassociation; this path is kept as
    /// the reference implementation the property tests oracle against
    /// and the `solver_scaling` bench uses as its baseline.
    ///
    /// # Errors
    ///
    /// See [`FlowSystem::solve`].
    pub fn solve_dense(&self) -> Result<Vec<f64>, FlowSolveError> {
        self.validate()?;
        if self.n == 0 {
            return Ok(Vec::new());
        }
        let m = self.system_matrix()?;
        match m.solve(&self.inject) {
            Ok(x) => Ok(x),
            Err(SolveError::Singular { .. }) => self.solve_damped(sparse::DAMPING),
            Err(SolveError::DimensionMismatch { .. }) => {
                unreachable!("system_matrix is square by construction")
            }
        }
    }

    /// Damped fixed-point iteration: `x ← inject + damping · Wᵀ x`.
    fn solve_damped(&self, damping: f64) -> Result<Vec<f64>, FlowSolveError> {
        let mut x = self.inject.clone();
        let mut residual = f64::INFINITY;
        for _ in 0..sparse::MAX_ITERS {
            let mut next = self.inject.clone();
            for &(src, dst, w) in &self.arcs {
                next[dst] += damping * w * x[src];
            }
            residual = next
                .iter()
                .zip(&x)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            x = next;
            if residual < sparse::TOLERANCE {
                return Ok(x);
            }
        }
        Err(FlowSolveError::DidNotConverge {
            iterations: sparse::MAX_ITERS,
            residual,
        })
    }
}

/// Convenience wrapper: solves a flow system given as arc and injection lists.
///
/// # Errors
///
/// See [`FlowSystem::solve`].
pub fn solve_flow(
    n: usize,
    arcs: &[(usize, usize, f64)],
    inject: &[(usize, f64)],
) -> Result<Vec<f64>, FlowSolveError> {
    let mut sys = FlowSystem::new(n);
    for &(s, d, w) in arcs {
        sys.add_arc(s, d, w);
    }
    for &(node, amount) in inject {
        sys.inject(node, amount);
    }
    sys.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_flow() {
        // entry -> a -> b, all probability 1: every node runs once.
        let x = solve_flow(3, &[(0, 1, 1.0), (1, 2, 1.0)], &[(0, 1.0)]).unwrap();
        for v in x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diamond_splits_flow() {
        // 0 -> {1: .8, 2: .2} -> 3
        let x = solve_flow(
            4,
            &[(0, 1, 0.8), (0, 2, 0.2), (1, 3, 1.0), (2, 3, 1.0)],
            &[(0, 1.0)],
        )
        .unwrap();
        assert!((x[1] - 0.8).abs() < 1e-12);
        assert!((x[2] - 0.2).abs() < 1e-12);
        assert!((x[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_amplifies() {
        // Geometric series: 1 / (1 - 0.8) = 5.
        let x = solve_flow(1, &[(0, 0, 0.8)], &[(0, 1.0)]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn inescapable_loop_falls_back_to_damped() {
        // Probability-1 self loop: the direct treatment is singular; the
        // damped model yields a large but finite frequency.
        let x = solve_flow(1, &[(0, 0, 1.0)], &[(0, 1.0)]).unwrap();
        assert!(x[0] > 100.0);
        assert!(x[0].is_finite());
    }

    #[test]
    fn out_of_range_arc_is_an_error() {
        let mut sys = FlowSystem::new(1);
        sys.add_arc(0, 3, 1.0);
        assert!(matches!(
            sys.solve(),
            Err(FlowSolveError::NodeOutOfRange { node: 3, len: 1 })
        ));
    }

    #[test]
    fn out_of_range_inject_is_an_error_not_a_panic() {
        let mut sys = FlowSystem::new(2);
        sys.inject(0, 1.0);
        sys.inject(9, 1.0);
        sys.add_arc(0, 1, 0.5);
        assert!(matches!(
            sys.solve(),
            Err(FlowSolveError::NodeOutOfRange { node: 9, len: 2 })
        ));
        assert!(matches!(
            sys.solve_dense(),
            Err(FlowSolveError::NodeOutOfRange { node: 9, len: 2 })
        ));
    }

    #[test]
    fn empty_system_solves_to_empty() {
        assert!(FlowSystem::new(0).solve().unwrap().is_empty());
    }

    #[test]
    fn sparse_matches_dense_on_strchr() {
        // The Figure 7 system: a loop, a diamond, and two exits.
        let mut sys = FlowSystem::new(6);
        sys.inject(0, 1.0);
        for (s, d, w) in [
            (0, 1, 1.0),
            (1, 2, 0.8),
            (2, 3, 0.2),
            (2, 4, 0.8),
            (4, 1, 1.0),
            (1, 5, 0.2),
        ] {
            sys.add_arc(s, d, w);
        }
        let sparse = sys.solve().unwrap();
        let dense = sys.solve_dense().unwrap();
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-9, "{sparse:?} vs {dense:?}");
        }
        assert!((sparse[1] - 2.7778).abs() < 1e-3);
    }

    #[test]
    fn errors_display() {
        let e = FlowSolveError::DidNotConverge {
            iterations: 5,
            residual: 0.25,
        };
        let msg = format!("{e}");
        assert!(msg.contains("5"));
        assert!(msg.contains("2.500e-1"), "{msg}");
        let e = SolveError::Singular { column: 2 };
        assert!(format!("{e}").contains("column 2"));
    }
}
