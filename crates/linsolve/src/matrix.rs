//! A minimal dense row-major matrix with Gaussian elimination.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::solve::SolveError;

/// A dense row-major matrix of `f64`.
///
/// Only the operations the Markov models need are provided: construction,
/// element access, transpose, matrix–vector product, and [`Matrix::solve`].
///
/// # Examples
///
/// ```
/// use linsolve::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// let x = m.solve(&[6.0, 8.0]).unwrap();
/// assert_eq!(x, vec![3.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose of `self`.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Computes the matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut acc = 0.0;
            for c in 0..self.cols {
                acc += self[(r, c)] * v[c];
            }
            out[r] = acc;
        }
        out
    }

    /// Solves `self · x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when no pivot above the numerical
    /// tolerance can be found (the system has no unique solution), and
    /// [`SolveError::DimensionMismatch`] when the matrix is not square or
    /// `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if self.rows != self.cols {
            return Err(SolveError::DimensionMismatch {
                rows: self.rows,
                cols: self.cols,
                rhs: b.len(),
            });
        }
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch {
                rows: self.rows,
                cols: self.cols,
                rhs: b.len(),
            });
        }
        let n = self.rows;
        if n == 0 {
            return Ok(Vec::new());
        }

        // Augmented copy we can destroy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let idx = |r: usize, c: usize| r * n + c;

        for col in 0..n {
            // Partial pivoting: pick the largest remaining entry in this column.
            let mut pivot = col;
            let mut best = a[idx(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[idx(r, col)].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return Err(SolveError::Singular { column: col });
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(idx(col, c), idx(pivot, c));
                }
                x.swap(col, pivot);
            }
            let diag = a[idx(col, col)];
            for r in (col + 1)..n {
                let factor = a[idx(r, col)] / diag;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[idx(r, c)] -= factor * a[idx(col, c)];
                }
                x[r] -= factor * x[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in (col + 1)..n {
                acc -= a[idx(col, c)] * x[c];
            }
            x[col] = acc / a[idx(col, col)];
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:8.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn transpose() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn mul_vec_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = m.solve(&[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn solve_singular_reports_error() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        assert!(matches!(
            m.solve(&[1.0, 2.0]),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn solve_rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            m.solve(&[1.0, 2.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_empty_system() {
        let m = Matrix::zeros(0, 0);
        assert!(m.solve(&[]).unwrap().is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(1);
        assert!(!format!("{m}").is_empty());
    }
}
