//! Linear-system solving for the Markov frequency models.
//!
//! The PLDI 1994 estimators translate a control-flow graph (or call graph)
//! into a system of `n` linear equations in `n` unknowns — one per basic
//! block or function — and solve it with "ordinary methods for linear
//! systems" (§5.1). This crate provides that substrate two ways:
//!
//! - the default sparse, SCC-aware solver ([`sparse`], used by
//!   [`FlowSystem::solve`]): CSR adjacency, Tarjan condensation, and
//!   per-component solves, so the acyclic bulk of a CFG costs
//!   `O(V + E)` instead of `O(n³)`;
//! - the original dense path ([`Matrix`] Gaussian elimination with
//!   partial pivoting plus a globally damped power-iteration fallback,
//!   [`FlowSystem::solve_dense`]), kept as the reference baseline for
//!   property tests and the `solver_scaling` bench.
//!
//! The damped fallback handles systems no direct method can (e.g.
//! graphs containing loops that can never exit, which make `I - A`
//! singular).
//!
//! # Examples
//!
//! Solving the `strchr` system from Figure 7 of the paper:
//!
//! ```
//! use linsolve::Matrix;
//!
//! // Unknowns: entry, while, if, return1, incr, return2.
//! let a = Matrix::from_rows(&[
//!     vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
//!     vec![-1.0, 1.0, 0.0, 0.0, -1.0, 0.0],
//!     vec![0.0, -0.8, 1.0, 0.0, 0.0, 0.0],
//!     vec![0.0, 0.0, -0.2, 1.0, 0.0, 0.0],
//!     vec![0.0, 0.0, -0.8, 0.0, 1.0, 0.0],
//!     vec![0.0, -0.2, 0.0, 0.0, 0.0, 1.0],
//! ]);
//! let x = a.solve(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
//! assert!((x[1] - 2.7777).abs() < 1e-3); // the paper's "test count of 2.78"
//! ```

#![warn(missing_docs)]

mod matrix;
mod solve;
pub mod sparse;

pub use matrix::Matrix;
pub use solve::{solve_flow, FlowSolveError, FlowSystem, SolveError};
pub use sparse::{solve_sparse, tarjan_scc, Csr};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let m = Matrix::identity(3);
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn strchr_figure7() {
        // Figure 7(b) of the paper: the matrix for strchr with branch
        // probabilities 0.8/0.2, solved to entry=1, while=2.78, if=2.22,
        // return1=0.44, incr=1.78, return2=0.56.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![-1.0, 1.0, 0.0, 0.0, -1.0, 0.0],
            vec![0.0, -0.8, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, -0.2, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, -0.8, 0.0, 1.0, 0.0],
            vec![0.0, -0.2, 0.0, 0.0, 0.0, 1.0],
        ]);
        let x = a.solve(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let expected = [1.0, 2.7778, 2.2222, 0.4444, 1.7778, 0.5556];
        for (got, want) in x.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }
}
