//! Graphviz (DOT) rendering of CFGs and call graphs, for debugging and
//! for reproducing the paper's Figure 6 (the annotated `strchr` CFG).

use crate::callgraph::CallGraph;
use crate::cfg::{Cfg, Terminator};
use minic::sema::Module;
use std::fmt::Write as _;

/// Renders a CFG as a DOT digraph. Optional per-block annotations (e.g.
/// estimated or profiled frequencies) are printed in each node label.
pub fn cfg_to_dot(module: &Module, cfg: &Cfg, annot: Option<&[f64]>) -> String {
    let name = &module.function(cfg.func).name;
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for b in &cfg.blocks {
        let mut label = format!("B{}", b.id.0);
        if b.id == cfg.entry {
            label.push_str(" (entry)");
        }
        if let Some(vals) = annot {
            let _ = write!(label, "\\nfreq={:.3}", vals[b.id.0 as usize]);
        }
        let _ = write!(label, "\\n{} instrs", b.instrs.len());
        let _ = writeln!(out, "  b{} [label=\"{label}\"];", b.id.0);
    }
    for b in &cfg.blocks {
        match &b.term {
            Terminator::Goto(t) => {
                let _ = writeln!(out, "  b{} -> b{};", b.id.0, t.0);
            }
            Terminator::Branch {
                then_blk, else_blk, ..
            } => {
                let _ = writeln!(out, "  b{} -> b{} [label=\"T\"];", b.id.0, then_blk.0);
                let _ = writeln!(out, "  b{} -> b{} [label=\"F\"];", b.id.0, else_blk.0);
            }
            Terminator::Switch { cases, default, .. } => {
                for (v, t) in cases {
                    let _ = writeln!(out, "  b{} -> b{} [label=\"{v}\"];", b.id.0, t.0);
                }
                let _ = writeln!(out, "  b{} -> b{} [label=\"default\"];", b.id.0, default.0);
            }
            Terminator::Return(_) => {}
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the direct call graph as a DOT digraph.
pub fn callgraph_to_dot(module: &Module, cg: &CallGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph callgraph {{");
    for f in &module.functions {
        let shape = if f.is_defined() { "ellipse" } else { "box" };
        let _ = writeln!(out, "  f{} [label=\"{}\", shape={shape}];", f.id.0, f.name);
    }
    let mut seen = std::collections::HashSet::new();
    for arc in &cg.direct {
        let callee = arc.callee.expect("direct arc");
        if seen.insert((arc.caller, callee)) {
            let _ = writeln!(out, "  f{} -> f{};", arc.caller.0, callee.0);
        }
    }
    if !cg.indirect.is_empty() {
        let _ = writeln!(out, "  ptr [label=\"(pointer node)\", shape=diamond];");
        let mut callers = std::collections::HashSet::new();
        for arc in &cg.indirect {
            if callers.insert(arc.caller) {
                let _ = writeln!(out, "  f{} -> ptr [style=dashed];", arc.caller.0);
            }
        }
        for (fid, _) in module.side.address_taken.iter() {
            let _ = writeln!(out, "  ptr -> f{} [style=dashed];", fid.0);
        }
    }
    out.push_str("}\n");
    out
}
