//! CFG clean-up after lowering.
//!
//! Three passes run to a fixpoint:
//!
//! 1. **Jump threading** — edges into empty `Goto`-only blocks are
//!    redirected to their final target.
//! 2. **Unreachable-block removal** — anything not reachable from the
//!    entry disappears (e.g. the exit of a `while (1)` loop, or code
//!    after `return`).
//! 3. **Chain merging** — a block whose only successor has it as its
//!    only predecessor absorbs that successor, producing *maximal*
//!    basic blocks like the paper's gcc-derived CFGs.

use crate::cfg::{Block, BlockId, Cfg, Terminator};

/// Simplifies `cfg`, preserving semantics and anchors.
pub fn simplify(mut cfg: Cfg) -> Cfg {
    let _sp = obs::span("flowgraph.simplify");
    loop {
        let before = cfg.blocks.len();
        thread_jumps(&mut cfg);
        cfg = remove_unreachable(cfg);
        cfg = merge_chains(cfg);
        if cfg.blocks.len() == before {
            return cfg;
        }
    }
}

/// Follows chains of empty `Goto` blocks to their final target.
fn final_target(cfg: &Cfg, mut b: BlockId) -> BlockId {
    let mut hops = 0;
    loop {
        let blk = cfg.block(b);
        if !blk.instrs.is_empty() {
            return b;
        }
        match blk.term {
            Terminator::Goto(t) if t != b => {
                b = t;
                hops += 1;
                // Guard against Goto cycles of empty blocks.
                if hops > cfg.blocks.len() {
                    return b;
                }
            }
            _ => return b,
        }
    }
}

fn thread_jumps(cfg: &mut Cfg) {
    let n = cfg.blocks.len();
    let mut target = Vec::with_capacity(n);
    for i in 0..n {
        target.push(final_target(cfg, BlockId(i as u32)));
    }
    cfg.entry = target[cfg.entry.0 as usize];
    for b in &mut cfg.blocks {
        match &mut b.term {
            Terminator::Goto(t) => *t = target[t.0 as usize],
            Terminator::Branch {
                then_blk, else_blk, ..
            } => {
                *then_blk = target[then_blk.0 as usize];
                *else_blk = target[else_blk.0 as usize];
            }
            Terminator::Switch { cases, default, .. } => {
                for (_, t) in cases.iter_mut() {
                    *t = target[t.0 as usize];
                }
                *default = target[default.0 as usize];
            }
            Terminator::Return(_) => {}
        }
    }
}

fn remove_unreachable(cfg: Cfg) -> Cfg {
    let n = cfg.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![cfg.entry];
    reachable[cfg.entry.0 as usize] = true;
    while let Some(b) = stack.pop() {
        for s in cfg.successors(b) {
            if !reachable[s.0 as usize] {
                reachable[s.0 as usize] = true;
                stack.push(s);
            }
        }
    }
    let mut remap = vec![BlockId(u32::MAX); n];
    let mut kept = Vec::new();
    for (i, r) in reachable.iter().enumerate() {
        if *r {
            remap[i] = BlockId(kept.len() as u32);
            kept.push(i);
        }
    }
    let map = |b: BlockId| remap[b.0 as usize];
    let mut blocks: Vec<Block> = Vec::with_capacity(kept.len());
    for &i in &kept {
        let mut b = cfg.blocks[i].clone();
        b.id = map(BlockId(i as u32));
        match &mut b.term {
            Terminator::Goto(t) => *t = map(*t),
            Terminator::Branch {
                then_blk, else_blk, ..
            } => {
                *then_blk = map(*then_blk);
                *else_blk = map(*else_blk);
            }
            Terminator::Switch { cases, default, .. } => {
                for (_, t) in cases.iter_mut() {
                    *t = map(*t);
                }
                *default = map(*default);
            }
            Terminator::Return(_) => {}
        }
        blocks.push(b);
    }
    Cfg {
        func: cfg.func,
        blocks,
        entry: map(cfg.entry),
    }
}

fn merge_chains(mut cfg: Cfg) -> Cfg {
    loop {
        let preds = cfg.predecessors();
        let mut merged = false;
        for i in 0..cfg.blocks.len() {
            let b = BlockId(i as u32);
            let Terminator::Goto(t) = cfg.blocks[i].term else {
                continue;
            };
            if t == b || t == cfg.entry {
                continue;
            }
            if preds[t.0 as usize].len() != 1 {
                continue;
            }
            // Absorb t into b. Afterwards t is unreachable and is
            // dropped by remove_unreachable below.
            let tail = cfg.blocks[t.0 as usize].clone();
            let head = &mut cfg.blocks[i];
            head.instrs.extend(tail.instrs);
            head.term = tail.term;
            if head.anchor.is_none() {
                head.anchor = tail.anchor;
            }
            merged = true;
            break;
        }
        if !merged {
            return cfg;
        }
        cfg = remove_unreachable(cfg);
    }
}
