//! Control-flow-graph types.
//!
//! A [`Cfg`] is the execution IR of this reproduction: the profiler's
//! interpreter runs it directly, so profiled basic-block counts and the
//! estimators' per-block predictions refer to the *same* blocks by
//! construction (the paper had to map gcc's ASTs onto its CFGs; here the
//! mapping is the `anchor` field filled during lowering).

use minic::ast::{Expr, NodeId};
use minic::sema::{BranchId, FuncId, LocalId, SwitchId};
use minic::types::Type;

/// Identifies a basic block within one function's CFG.
// The derived `partial_cmp` delegates to `Ord` on a `u32` — total, so
// exempt from the workspace NaN-ordering ban (clippy.toml).
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A straight-line instruction within a block.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Evaluate an expression for its side effects.
    Eval(Expr),
    /// Store the value of `value` into word `word` of local `local`,
    /// converting to `ty` (local-declaration initializer).
    Init {
        /// The declared local.
        local: LocalId,
        /// Word offset within the local.
        word: usize,
        /// The scalar target type at that word.
        ty: Type,
        /// The initializer expression.
        value: Expr,
    },
    /// Copy string-table entry `str_idx` (plus NUL) into local `local`
    /// starting at `word`, zero-padding to `pad_to` words
    /// (`char s[] = "...";`).
    InitStr {
        /// The declared local.
        local: LocalId,
        /// Word offset within the local.
        word: usize,
        /// String-table index.
        str_idx: usize,
        /// Total words to write (string + NUL + padding).
        pad_to: usize,
    },
    /// Zero `len` words of local `local` starting at `word` (padding of
    /// partially initialized aggregates).
    InitZero {
        /// The declared local.
        local: LocalId,
        /// Word offset within the local.
        word: usize,
        /// Number of words to clear.
        len: usize,
    },
}

/// How a block ends.
#[derive(Debug, Clone)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way conditional branch.
    Branch {
        /// The condition expression.
        cond: Expr,
        /// The branch site registered by sema, if any (synthetic
        /// branches from lowering have none).
        branch: Option<BranchId>,
        /// Target when the condition is true.
        then_blk: BlockId,
        /// Target when the condition is false.
        else_blk: BlockId,
    },
    /// Multi-way `switch`.
    Switch {
        /// The scrutinee expression.
        scrut: Expr,
        /// The switch site registered by sema.
        switch: SwitchId,
        /// `(case value, target)` pairs.
        cases: Vec<(i64, BlockId)>,
        /// Target when no case matches.
        default: BlockId,
    },
    /// Return from the function.
    Return(Option<Expr>),
}

/// A basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub term: Terminator,
    /// The AST node this block corresponds to: the first statement
    /// lowered into it, or a loop condition / `for`-step expression.
    /// The AST-based estimators map their per-node frequencies onto
    /// blocks through this field. `None` for synthetic join blocks.
    pub anchor: Option<NodeId>,
}

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The function this CFG belongs to.
    pub func: FuncId,
    /// All blocks; [`BlockId`] indexes this vector.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
}

impl Cfg {
    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this CFG.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (never true for lowered functions).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The successor blocks of `id`, in terminator order.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        match &self.block(id).term {
            Terminator::Goto(t) => vec![*t],
            Terminator::Branch {
                then_blk, else_blk, ..
            } => {
                if then_blk == else_blk {
                    vec![*then_blk]
                } else {
                    vec![*then_blk, *else_blk]
                }
            }
            Terminator::Switch { cases, default, .. } => {
                let mut out: Vec<BlockId> = cases.iter().map(|&(_, b)| b).collect();
                out.push(*default);
                out.sort();
                out.dedup();
                out
            }
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for s in self.successors(b.id) {
                preds[s.0 as usize].push(b.id);
            }
        }
        preds
    }

    /// Blocks in reverse post-order from the entry.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.0 as usize] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = self.successors(b);
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Every instruction's and terminator's expressions, visited with `f`.
    pub fn walk_exprs<'a>(&'a self, f: &mut dyn FnMut(BlockId, &'a Expr)) {
        for b in &self.blocks {
            for instr in &b.instrs {
                match instr {
                    Instr::Eval(e) | Instr::Init { value: e, .. } => e.walk(&mut |x| f(b.id, x)),
                    Instr::InitStr { .. } | Instr::InitZero { .. } => {}
                }
            }
            match &b.term {
                Terminator::Branch { cond, .. } => cond.walk(&mut |x| f(b.id, x)),
                Terminator::Switch { scrut, .. } => scrut.walk(&mut |x| f(b.id, x)),
                Terminator::Return(Some(e)) => e.walk(&mut |x| f(b.id, x)),
                _ => {}
            }
        }
    }
}
