//! Graph analyses: dominators, natural loops, and strongly connected
//! components.
//!
//! Dominators and natural loops support the "locating loops" step of
//! the paper's simple estimators and the DOT renderer; Tarjan's SCC
//! algorithm is the machinery behind the Markov call-graph model's
//! recursion repair (§5.2.2 considers each SCC in isolation).

use crate::cfg::{BlockId, Cfg};
use std::collections::HashSet;

/// Immediate-dominator tree of a CFG, computed by the classic iterative
/// algorithm (Cooper–Harvey–Kennedy) over reverse post-order.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; the entry block is
    /// its own idom. Unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.blocks.len();
        let rpo = cfg.reverse_post_order();
        let mut order = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            order[b.0 as usize] = i;
        }
        let preds = cfg.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry.0 as usize] = Some(cfg.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators {
            idom,
            entry: cfg.entry,
        }
    }

    /// The immediate dominator of `b` (the entry dominates itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0 as usize]
    }

    /// Whether `a` dominates `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.0 as usize] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }
}

fn intersect(idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while order[a.0 as usize] > order[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block has an idom");
        }
        while order[b.0 as usize] > order[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block has an idom");
        }
    }
    a
}

/// Post-dominator tree of a CFG: `a` post-dominates `b` when every
/// path from `b` to function exit passes through `a`. Computed over the
/// reversed CFG with a virtual exit joining all `Return` blocks.
/// (Ball & Larus's original executable-level heuristics are phrased in
/// terms of post-domination; this is the analysis a faithful port of
/// their store/call heuristics would use.)
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// Immediate post-dominator per block; `None` for blocks that
    /// cannot reach the exit (e.g. bodies of `while(1)` loops) and for
    /// blocks whose only post-dominator is the virtual exit.
    ipdom: Vec<Option<BlockId>>,
}

impl PostDominators {
    /// Computes post-dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.blocks.len();
        let exit = n; // virtual exit node
                      // Reversed adjacency, with Return blocks feeding the exit.
        let mut radj = vec![Vec::new(); n + 1];
        let mut rpreds = vec![Vec::new(); n + 1]; // successors in reversed graph's terms
        for b in &cfg.blocks {
            let succs = cfg.successors(b.id);
            if succs.is_empty() {
                radj[exit].push(b.id.0 as usize);
                rpreds[b.id.0 as usize].push(exit);
            }
            for s in succs {
                radj[s.0 as usize].push(b.id.0 as usize);
                rpreds[b.id.0 as usize].push(s.0 as usize);
            }
        }
        // RPO over the reversed graph from the virtual exit.
        let mut visited = vec![false; n + 1];
        let mut post = Vec::new();
        let mut stack = vec![(exit, 0usize)];
        visited[exit] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < radj[v].len() {
                let w = radj[v][*i];
                *i += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                post.push(v);
                stack.pop();
            }
        }
        post.reverse();
        let mut order = vec![usize::MAX; n + 1];
        for (i, &v) in post.iter().enumerate() {
            order[v] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; n + 1];
        idom[exit] = Some(exit);
        let mut changed = true;
        while changed {
            changed = false;
            for &v in post.iter().skip(1) {
                // "Predecessors" in the reversed graph are the CFG
                // successors (plus the virtual exit for returns).
                let mut new_idom: Option<usize> = None;
                for &p in &rpreds[v] {
                    if idom[p].is_none() || order[p] == usize::MAX {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect_usize(&idom, &order, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[v] != Some(ni) {
                        idom[v] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        let ipdom = (0..n)
            .map(|v| match idom[v] {
                Some(p) if p < n => Some(BlockId(p as u32)),
                _ => None, // virtual exit or unreachable-from-exit
            })
            .collect();
        PostDominators { ipdom }
    }

    /// The immediate post-dominator of `b` (`None` when it is the
    /// function exit itself or cannot reach the exit).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.0 as usize]
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom[cur.0 as usize] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }
}

fn intersect_usize(idom: &[Option<usize>], order: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order[a] > order[b] {
            a = idom[a].expect("processed node has an idom");
        }
        while order[b] > order[a] {
            b = idom[b].expect("processed node has an idom");
        }
    }
    a
}

/// A natural loop: a back edge `latch → header` where the header
/// dominates the latch, plus every block that can reach the latch
/// without passing through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// The source of the back edge.
    pub latch: BlockId,
    /// All blocks in the loop (including header and latch).
    pub body: Vec<BlockId>,
}

/// Finds all natural loops of `cfg`. Loops sharing a header are
/// reported separately (one per back edge).
pub fn natural_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let dom = Dominators::compute(cfg);
    let preds = cfg.predecessors();
    let mut loops = Vec::new();
    for b in &cfg.blocks {
        for s in cfg.successors(b.id) {
            if dom.dominates(s, b.id) {
                // Back edge b -> s.
                let header = s;
                let latch = b.id;
                let mut body: HashSet<BlockId> = [header, latch].into_iter().collect();
                let mut stack = vec![latch];
                while let Some(x) = stack.pop() {
                    if x == header {
                        continue;
                    }
                    for &p in &preds[x.0 as usize] {
                        if body.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                let mut body: Vec<BlockId> = body.into_iter().collect();
                body.sort();
                loops.push(NaturalLoop {
                    header,
                    latch,
                    body,
                });
            }
        }
    }
    loops.sort_by_key(|l| (l.header, l.latch));
    loops
}

/// Loop nesting depth of every block (0 = not in any loop).
pub fn loop_depths(cfg: &Cfg) -> Vec<usize> {
    let loops = natural_loops(cfg);
    let mut depth = vec![0usize; cfg.blocks.len()];
    // Merge loops with the same header (multiple back edges = one loop).
    let mut by_header: std::collections::HashMap<BlockId, HashSet<BlockId>> =
        std::collections::HashMap::new();
    for l in &loops {
        by_header
            .entry(l.header)
            .or_default()
            .extend(l.body.iter().copied());
    }
    for body in by_header.values() {
        for b in body {
            depth[b.0 as usize] += 1;
        }
    }
    depth
}

/// One loop of a [`LoopForest`]: every natural loop sharing a header,
/// merged (multiple back edges = one loop), with its nesting links.
#[derive(Debug, Clone)]
pub struct ForestLoop {
    /// The loop header (dominates every body block).
    pub header: BlockId,
    /// All blocks in the merged loop, sorted (includes the header).
    pub body: Vec<BlockId>,
    /// Index of the innermost strictly-enclosing loop, if any.
    pub parent: Option<usize>,
    /// Indices of the loops nested directly inside this one.
    pub children: Vec<usize>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: usize,
}

impl ForestLoop {
    /// Whether `b` belongs to this loop's body (binary search).
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// The loop-nest forest of one CFG: natural loops merged by header and
/// linked by strict body containment. Since every header dominates its
/// body, two merged loops are either disjoint or strictly nested, so
/// containment forms a forest.
///
/// Loops are stored innermost-first (ascending body size), so walking
/// `parent` links climbs outward and the chain from
/// [`LoopForest::innermost`] enumerates a block's nest inside-out.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// The merged loops, ascending body size (innermost first).
    pub loops: Vec<ForestLoop>,
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Builds the forest for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        // Merge natural loops by header.
        let mut by_header: std::collections::HashMap<BlockId, HashSet<BlockId>> =
            std::collections::HashMap::new();
        for l in natural_loops(cfg) {
            by_header
                .entry(l.header)
                .or_default()
                .extend(l.body.iter().copied());
        }
        let mut loops: Vec<ForestLoop> = by_header
            .into_iter()
            .map(|(header, body)| {
                let mut body: Vec<BlockId> = body.into_iter().collect();
                body.sort();
                ForestLoop {
                    header,
                    body,
                    parent: None,
                    children: Vec::new(),
                    depth: 0,
                }
            })
            .collect();
        // Strict nesting implies strictly larger bodies (two distinct
        // headers cannot dominate each other), so after this sort a
        // loop's parent candidates all come later in the vector.
        loops.sort_by_key(|l| (l.body.len(), l.header));
        for i in 0..loops.len() {
            loops[i].parent = (i + 1..loops.len()).find(|&j| loops[j].contains(loops[i].header));
        }
        for i in 0..loops.len() {
            if let Some(p) = loops[i].parent {
                loops[p].children.push(i);
            }
        }
        for i in (0..loops.len()).rev() {
            loops[i].depth = match loops[i].parent {
                Some(p) => loops[p].depth + 1,
                None => 1,
            };
        }
        let innermost = (0..cfg.blocks.len())
            .map(|b| {
                let b = BlockId(b as u32);
                (0..loops.len()).find(|&i| loops[i].contains(b))
            })
            .collect();
        LoopForest { loops, innermost }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<usize> {
        self.innermost[b.0 as usize]
    }

    /// The loops containing `b`, innermost first.
    pub fn nest_of(&self, b: BlockId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.innermost(b);
        while let Some(i) = cur {
            out.push(i);
            cur = self.loops[i].parent;
        }
        out
    }
}

/// Tarjan's strongly-connected components over an adjacency list.
///
/// Returns components in reverse topological order (callees before
/// callers when applied to a call graph). Singleton nodes without a
/// self edge are their own (trivial) component.
///
/// # Examples
///
/// ```
/// use flowgraph::analysis::tarjan_scc;
///
/// // 0 -> 1 -> 2 -> 1 (cycle), 2 -> 3
/// let adj = vec![vec![1], vec![2], vec![1, 3], vec![]];
/// let sccs = tarjan_scc(&adj);
/// assert!(sccs.contains(&vec![1, 2]));
/// ```
pub fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let n = adj.len();
    let mut state = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut stack = Vec::new();
    let mut sccs = Vec::new();
    let mut counter = 0usize;

    // Iterative Tarjan to avoid recursion limits on big call graphs.
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for root in 0..n {
        if state[root].visited {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    state[v].visited = true;
                    state[v].index = counter;
                    state[v].lowlink = counter;
                    counter += 1;
                    stack.push(v);
                    state[v].on_stack = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let mut descended = false;
                    while i < adj[v].len() {
                        let w = adj[v][i];
                        i += 1;
                        if !state[w].visited {
                            work.push(Frame::Resume(v, i));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if state[w].on_stack {
                            state[v].lowlink = state[v].lowlink.min(state[w].index);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if state[v].lowlink == state[v].index {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack holds the component");
                            state[w].on_stack = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                    // Propagate lowlink to the parent frame.
                    if let Some(Frame::Resume(p, _)) = work.last() {
                        let p = *p;
                        state[p].lowlink = state[p].lowlink.min(state[v].lowlink);
                    }
                }
            }
        }
    }
    sccs
}

/// Whether node `v` is in a nontrivial cycle: its SCC has more than one
/// node, or it has a self edge.
pub fn in_cycle(adj: &[Vec<usize>], sccs: &[Vec<usize>], v: usize) -> bool {
    if adj[v].contains(&v) {
        return true;
    }
    sccs.iter().any(|c| c.len() > 1 && c.contains(&v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_finds_cycles() {
        // 0->1->2->0 cycle; 3 alone; 4->4 self loop.
        let adj = vec![vec![1], vec![2], vec![0], vec![0], vec![4]];
        let sccs = tarjan_scc(&adj);
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
        assert!(sccs.contains(&vec![4]));
        assert!(in_cycle(&adj, &sccs, 0));
        assert!(!in_cycle(&adj, &sccs, 3));
        assert!(in_cycle(&adj, &sccs, 4));
    }

    #[test]
    fn scc_reverse_topological_order() {
        // 0 -> 1, 1 -> 2: components come out callee-first.
        let adj = vec![vec![1], vec![2], vec![]];
        let sccs = tarjan_scc(&adj);
        let pos = |v: usize| sccs.iter().position(|c| c.contains(&v)).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn scc_empty_graph() {
        assert!(tarjan_scc(&[]).is_empty());
    }
}
