//! The program call graph.
//!
//! Nodes are functions; arcs are call sites. Calls through function
//! pointers cannot be resolved statically, so — exactly as in §5.2.1 of
//! the paper — they are collected separately and later routed through a
//! synthetic *pointer node* whose out-arcs target every address-taken
//! function, weighted by the static count of address-of operations.

use crate::cfg::BlockId;
use crate::Program;
use minic::sema::{CallSiteId, CalleeKind, FuncId};
use std::collections::HashMap;

/// One call-graph arc: a single call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallArc {
    /// The calling function.
    pub caller: FuncId,
    /// The call site.
    pub site: CallSiteId,
    /// The block containing the site.
    pub block: BlockId,
    /// The target: a user function, or `None` for an indirect call.
    pub callee: Option<FuncId>,
}

/// The call graph of a whole program.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All direct arcs (calls to defined or prototype functions).
    pub direct: Vec<CallArc>,
    /// All indirect arcs (calls through pointers).
    pub indirect: Vec<CallArc>,
    /// Block of every call site (builtin calls included).
    pub site_block: HashMap<CallSiteId, BlockId>,
}

impl CallGraph {
    /// Builds the call graph by scanning every CFG for call expressions.
    pub fn build(program: &Program) -> Self {
        let module = &program.module;
        let mut cg = CallGraph::default();
        for cfg in program.cfgs.iter().flatten() {
            cfg.walk_exprs(&mut |block, e| {
                let Some(&site) = module.side.call_site_of.get(&e.id) else {
                    return;
                };
                cg.site_block.insert(site, block);
                let cs = &module.side.call_sites[site.0 as usize];
                match cs.callee {
                    CalleeKind::Direct(callee) => cg.direct.push(CallArc {
                        caller: cfg.func,
                        site,
                        block,
                        callee: Some(callee),
                    }),
                    CalleeKind::Indirect => cg.indirect.push(CallArc {
                        caller: cfg.func,
                        site,
                        block,
                        callee: None,
                    }),
                    CalleeKind::Builtin(_) => {}
                }
            });
        }
        cg
    }

    /// Adjacency list over function indices (direct arcs only),
    /// suitable for [`crate::analysis::tarjan_scc`]. The list has one
    /// entry per function in the module (defined or not).
    pub fn adjacency(&self, num_functions: usize) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); num_functions];
        for arc in &self.direct {
            let callee = arc.callee.expect("direct arcs have callees");
            let from = arc.caller.0 as usize;
            let to = callee.0 as usize;
            if !adj[from].contains(&to) {
                adj[from].push(to);
            }
        }
        adj
    }

    /// All direct arcs out of `f`.
    pub fn calls_from(&self, f: FuncId) -> impl Iterator<Item = &CallArc> {
        self.direct.iter().filter(move |a| a.caller == f)
    }

    /// All direct arcs into `f`.
    pub fn calls_to(&self, f: FuncId) -> impl Iterator<Item = &CallArc> {
        self.direct.iter().filter(move |a| a.callee == Some(f))
    }

    /// Indirect arcs out of `f`.
    pub fn indirect_from(&self, f: FuncId) -> impl Iterator<Item = &CallArc> {
        self.indirect.iter().filter(move |a| a.caller == f)
    }
}
