//! Lowering MiniC function bodies to control-flow graphs.
//!
//! The lowering is structural and direct: each statement contributes
//! instructions to the current block, and control constructs create the
//! usual header / body / latch / join blocks. Short-circuit `&&`/`||`
//! and `?:` stay *inside* expressions (the interpreter evaluates them
//! lazily), matching the paper's AST-level treatment where source-level
//! branches, not machine branches, are the unit of prediction.
//!
//! Every block records an `anchor` — the AST node whose frequency the
//! AST-based estimators assign to it (the first statement lowered into
//! the block, or a loop condition / `for`-step expression).

use crate::cfg::{Block, BlockId, Cfg, Instr, Terminator};
use minic::ast::{Expr, ExprKind, Initializer, NodeId, Stmt, StmtKind};
use minic::sema::{Function, LocalId, Module};
use minic::types::Type;
use std::collections::HashMap;

/// Lowers one defined function to a (simplified) CFG.
///
/// # Panics
///
/// Panics if the function has no body; callers should lower only
/// [`Function::is_defined`] functions.
pub fn lower_function(module: &Module, func: &Function) -> Cfg {
    let body = func
        .body
        .as_ref()
        .expect("lower_function requires a defined function");
    let mut lw = Lowerer {
        module,
        func,
        blocks: Vec::new(),
        cur: BlockId(0),
        break_stack: Vec::new(),
        continue_stack: Vec::new(),
        labels: HashMap::new(),
    };
    let entry = lw.new_block();
    lw.cur = entry;
    lw.lower_stmt(body);
    if !lw.terminated() {
        lw.set_term(Terminator::Return(None));
    }
    let blocks = lw
        .blocks
        .into_iter()
        .enumerate()
        .map(|(i, bb)| Block {
            id: BlockId(i as u32),
            instrs: bb.instrs,
            term: bb.term.unwrap_or(Terminator::Return(None)),
            anchor: bb.anchor,
        })
        .collect();
    let cfg = Cfg {
        func: func.id,
        blocks,
        entry,
    };
    crate::simplify::simplify(cfg)
}

struct BlockBuilder {
    instrs: Vec<Instr>,
    term: Option<Terminator>,
    anchor: Option<NodeId>,
}

struct Lowerer<'m> {
    module: &'m Module,
    func: &'m Function,
    blocks: Vec<BlockBuilder>,
    cur: BlockId,
    break_stack: Vec<BlockId>,
    continue_stack: Vec<BlockId>,
    labels: HashMap<String, BlockId>,
}

impl Lowerer<'_> {
    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockBuilder {
            instrs: Vec::new(),
            term: None,
            anchor: None,
        });
        id
    }

    fn terminated(&self) -> bool {
        self.blocks[self.cur.0 as usize].term.is_some()
    }

    fn set_term(&mut self, t: Terminator) {
        let b = &mut self.blocks[self.cur.0 as usize];
        if b.term.is_none() {
            b.term = Some(t);
        }
    }

    fn anchor(&mut self, bid: BlockId, node: NodeId) {
        let b = &mut self.blocks[bid.0 as usize];
        if b.anchor.is_none() {
            b.anchor = Some(node);
        }
    }

    fn push(&mut self, instr: Instr) {
        self.blocks[self.cur.0 as usize].instrs.push(instr);
    }

    /// Starts a fresh block if the current one is already terminated
    /// (code after `return`/`goto`/`break`; unreachable unless labeled).
    fn fresh_if_terminated(&mut self) {
        if self.terminated() {
            self.cur = self.new_block();
        }
    }

    /// Builds a conditional-branch terminator. Branches whose condition
    /// sema folded to a constant become unconditional jumps — the paper
    /// corrects for constant tests the same way a compiler's dead-code
    /// elimination would (§2); the branch site remains registered so it
    /// is still *predicted*, just never executed or scored.
    fn branch_term(
        &self,
        owner: NodeId,
        cond: &Expr,
        then_blk: BlockId,
        else_blk: BlockId,
    ) -> Terminator {
        let branch = self.module.side.branch_of.get(&owner).copied();
        if let Some(bid) = branch {
            if let Some(v) = self.module.side.branches[bid.0 as usize].const_cond {
                return Terminator::Goto(if v { then_blk } else { else_blk });
            }
        }
        Terminator::Branch {
            cond: cond.clone(),
            branch,
            then_blk,
            else_blk,
        }
    }

    fn label_block(&mut self, name: &str) -> BlockId {
        if let Some(&b) = self.labels.get(name) {
            return b;
        }
        let b = self.new_block();
        self.labels.insert(name.to_string(), b);
        b
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        self.fresh_if_terminated();
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Expr(e) => {
                self.anchor(self.cur, s.id);
                self.push(Instr::Eval(e.clone()));
            }
            StmtKind::Decl(decls) => {
                self.anchor(self.cur, s.id);
                for d in decls {
                    let Some(init) = &d.init else { continue };
                    let local = self.module.side.local_of_decl[&d.id];
                    let ty = self.func.locals[local.0 as usize].ty.clone();
                    self.flatten_local_init(local, &ty, init, 0);
                }
            }
            StmtKind::If(cond, then_s, else_s) => {
                self.anchor(self.cur, s.id);
                let then_b = self.new_block();
                let join = self.new_block();
                let else_b = if else_s.is_some() {
                    self.new_block()
                } else {
                    join
                };
                let term = self.branch_term(s.id, cond, then_b, else_b);
                self.set_term(term);
                self.cur = then_b;
                self.anchor(then_b, then_s.id);
                self.lower_stmt(then_s);
                self.set_term(Terminator::Goto(join));
                if let Some(else_s) = else_s {
                    self.cur = else_b;
                    self.anchor(else_b, else_s.id);
                    self.lower_stmt(else_s);
                    self.set_term(Terminator::Goto(join));
                }
                self.cur = join;
            }
            StmtKind::While(cond, body) => {
                let header = self.new_block();
                let body_b = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Goto(header));
                self.cur = header;
                self.anchor(header, cond.id);
                let term = self.branch_term(s.id, cond, body_b, exit);
                self.set_term(term);
                self.break_stack.push(exit);
                self.continue_stack.push(header);
                self.cur = body_b;
                self.anchor(body_b, body.id);
                self.lower_stmt(body);
                self.set_term(Terminator::Goto(header));
                self.break_stack.pop();
                self.continue_stack.pop();
                self.cur = exit;
            }
            StmtKind::DoWhile(body, cond) => {
                let body_b = self.new_block();
                let cond_b = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Goto(body_b));
                self.break_stack.push(exit);
                self.continue_stack.push(cond_b);
                self.cur = body_b;
                self.anchor(body_b, body.id);
                self.lower_stmt(body);
                self.set_term(Terminator::Goto(cond_b));
                self.break_stack.pop();
                self.continue_stack.pop();
                self.cur = cond_b;
                self.anchor(cond_b, cond.id);
                let term = self.branch_term(s.id, cond, body_b, exit);
                self.set_term(term);
                self.cur = exit;
            }
            StmtKind::For(init, cond, step, body) => {
                if let Some(init) = init {
                    self.lower_stmt(init);
                    self.fresh_if_terminated();
                }
                let header = self.new_block();
                let body_b = self.new_block();
                let exit = self.new_block();
                let latch = if step.is_some() {
                    self.new_block()
                } else {
                    header
                };
                self.set_term(Terminator::Goto(header));
                self.cur = header;
                match cond {
                    Some(c) => {
                        self.anchor(header, c.id);
                        let term = self.branch_term(s.id, c, body_b, exit);
                        self.set_term(term);
                    }
                    None => {
                        self.anchor(header, s.id);
                        self.set_term(Terminator::Goto(body_b));
                    }
                }
                self.break_stack.push(exit);
                self.continue_stack.push(latch);
                self.cur = body_b;
                self.anchor(body_b, body.id);
                self.lower_stmt(body);
                self.set_term(Terminator::Goto(latch));
                self.break_stack.pop();
                self.continue_stack.pop();
                if let Some(step) = step {
                    self.cur = latch;
                    self.anchor(latch, step.id);
                    self.push(Instr::Eval(step.clone()));
                    self.set_term(Terminator::Goto(header));
                }
                self.cur = exit;
            }
            StmtKind::Switch(scrut, sections) => {
                self.anchor(self.cur, s.id);
                let exit = self.new_block();
                let section_blocks: Vec<BlockId> =
                    sections.iter().map(|_| self.new_block()).collect();
                let switch_id = self.module.side.switch_of[&s.id];
                let case_values = &self.module.side.case_values[&switch_id];
                let mut cases = Vec::new();
                let mut default = exit;
                for (i, sec) in sections.iter().enumerate() {
                    for &v in &case_values[i] {
                        cases.push((v, section_blocks[i]));
                    }
                    if sec.is_default {
                        default = section_blocks[i];
                    }
                }
                self.set_term(Terminator::Switch {
                    scrut: scrut.clone(),
                    switch: switch_id,
                    cases,
                    default,
                });
                self.break_stack.push(exit);
                for (i, sec) in sections.iter().enumerate() {
                    self.cur = section_blocks[i];
                    for (j, st) in sec.body.iter().enumerate() {
                        if j == 0 {
                            self.anchor(section_blocks[i], st.id);
                        }
                        self.lower_stmt(st);
                    }
                    // Fall through to the next section (or exit).
                    let next = section_blocks.get(i + 1).copied().unwrap_or(exit);
                    self.set_term(Terminator::Goto(next));
                }
                self.break_stack.pop();
                self.cur = exit;
            }
            StmtKind::Break => {
                self.anchor(self.cur, s.id);
                let target = *self
                    .break_stack
                    .last()
                    .expect("sema rejects break outside loop/switch");
                self.set_term(Terminator::Goto(target));
            }
            StmtKind::Continue => {
                self.anchor(self.cur, s.id);
                let target = *self
                    .continue_stack
                    .last()
                    .expect("sema rejects continue outside loop");
                self.set_term(Terminator::Goto(target));
            }
            StmtKind::Return(e) => {
                self.anchor(self.cur, s.id);
                self.set_term(Terminator::Return(e.clone()));
            }
            StmtKind::Goto(name) => {
                self.anchor(self.cur, s.id);
                let target = self.label_block(name);
                self.set_term(Terminator::Goto(target));
            }
            StmtKind::Label(name, inner) => {
                let lbl = self.label_block(name);
                self.set_term(Terminator::Goto(lbl));
                self.cur = lbl;
                self.anchor(lbl, inner.id);
                self.lower_stmt(inner);
            }
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.lower_stmt(st);
                }
            }
        }
    }

    /// Flattens a local initializer into `Init*` instructions.
    fn flatten_local_init(&mut self, local: LocalId, ty: &Type, init: &Initializer, word: usize) {
        match (ty, init) {
            (Type::Array(elem, n), Initializer::List(items)) => {
                let esize = elem.size_words(&self.module.structs);
                for (i, item) in items.iter().enumerate() {
                    self.flatten_local_init(local, elem, item, word + i * esize);
                }
                let used = items.len() * esize;
                let total = n * esize;
                if used < total {
                    self.push(Instr::InitZero {
                        local,
                        word: word + used,
                        len: total - used,
                    });
                }
            }
            (Type::Array(elem, n), Initializer::Expr(e))
                if matches!(**elem, Type::Char) && matches!(e.kind, ExprKind::StrLit(_)) =>
            {
                let str_idx = self.module.side.str_of[&e.id];
                self.push(Instr::InitStr {
                    local,
                    word,
                    str_idx,
                    pad_to: *n,
                });
            }
            (Type::Struct(sid), Initializer::List(items)) => {
                let layout = self.module.structs.layout(*sid);
                let fields: Vec<(usize, Type)> = layout
                    .fields
                    .iter()
                    .map(|f| (f.offset, f.ty.clone()))
                    .collect();
                let total = layout.size;
                let mut used = 0;
                for (item, (off, fty)) in items.iter().zip(fields.iter()) {
                    self.flatten_local_init(local, fty, item, word + off);
                    used = off + fty.size_words(&self.module.structs);
                }
                if used < total {
                    self.push(Instr::InitZero {
                        local,
                        word: word + used,
                        len: total - used,
                    });
                }
            }
            (_, Initializer::Expr(e)) => {
                self.push(Instr::Init {
                    local,
                    word,
                    ty: ty.clone(),
                    value: e.clone(),
                });
            }
            (_, Initializer::List(items)) if items.len() == 1 => {
                self.flatten_local_init(local, ty, &items[0], word);
            }
            _ => unreachable!("sema validated initializer shapes"),
        }
    }
}

/// Helper re-exported for tests and the interpreter: the expression of
/// an instruction, if it has one.
pub fn instr_expr(i: &Instr) -> Option<&Expr> {
    match i {
        Instr::Eval(e) | Instr::Init { value: e, .. } => Some(e),
        _ => None,
    }
}
