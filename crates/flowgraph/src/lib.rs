//! # flowgraph — CFGs and call graphs for MiniC
//!
//! This crate turns an analyzed [`minic::Module`] into the graph
//! structures the PLDI 1994 estimators operate on:
//!
//! - a [`cfg::Cfg`] per defined function (lowered by [`lower`],
//!   cleaned by [`simplify`]), which the profiler also executes;
//! - the whole-program [`callgraph::CallGraph`];
//! - graph analyses in [`analysis`] (dominators, natural loops,
//!   Tarjan SCC — the machinery behind the Markov model's recursion
//!   repair);
//! - DOT rendering in [`dot`].
//!
//! The usual entry point is [`build_program`]:
//!
//! ```
//! let module = minic::compile("int main(void) { return 0; }").unwrap();
//! let program = flowgraph::build_program(&module);
//! let main = program.function_id("main").unwrap();
//! assert_eq!(program.cfg(main).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod callgraph;
pub mod cfg;
pub mod dot;
pub mod lower;
pub mod simplify;

pub use callgraph::CallGraph;
pub use cfg::{Block, BlockId, Cfg, Instr, Terminator};

use minic::sema::{FuncId, Module};

/// A module together with the CFG of every defined function and the
/// program call graph — the unit the profiler and estimators consume.
#[derive(Debug, Clone)]
pub struct Program {
    /// The analyzed module.
    pub module: Module,
    /// CFGs indexed by [`FuncId`]; `None` for bodiless prototypes.
    pub cfgs: Vec<Option<Cfg>>,
    /// The call graph.
    pub callgraph: CallGraph,
}

impl Program {
    /// Finds a function by name (delegates to the module).
    pub fn function_id(&self, name: &str) -> Option<FuncId> {
        self.module.function_id(name)
    }

    /// The CFG of a defined function.
    ///
    /// # Panics
    ///
    /// Panics if `f` has no body.
    pub fn cfg(&self, f: FuncId) -> &Cfg {
        self.cfgs[f.0 as usize]
            .as_ref()
            .expect("function has no body (prototype)")
    }

    /// The CFG of `f`, or `None` for prototypes.
    pub fn cfg_opt(&self, f: FuncId) -> Option<&Cfg> {
        self.cfgs.get(f.0 as usize).and_then(|c| c.as_ref())
    }

    /// Ids of all defined functions, in declaration order.
    pub fn defined_ids(&self) -> Vec<FuncId> {
        self.module
            .functions
            .iter()
            .filter(|f| f.is_defined())
            .map(|f| f.id)
            .collect()
    }

    /// Total number of basic blocks across all defined functions.
    pub fn total_blocks(&self) -> usize {
        self.cfgs.iter().flatten().map(|c| c.blocks.len()).sum()
    }
}

/// Lowers every defined function of `module` and builds the call graph.
pub fn build_program(module: &Module) -> Program {
    let _sp = obs::span("flowgraph.build");
    let cfgs: Vec<Option<Cfg>> = {
        let _sp = obs::span("flowgraph.lower");
        module
            .functions
            .iter()
            .map(|f| f.body.as_ref().map(|_| lower::lower_function(module, f)))
            .collect()
    };
    let mut program = Program {
        module: module.clone(),
        cfgs,
        callgraph: CallGraph::default(),
    };
    {
        let _sp = obs::span("flowgraph.callgraph");
        program.callgraph = CallGraph::build(&program);
    }
    obs::counter_add("flowgraph.functions", program.defined_ids().len() as u64);
    obs::counter_add("flowgraph.blocks", program.total_blocks() as u64);
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Terminator;

    fn program(src: &str) -> Program {
        let module = minic::compile(src).expect("valid MiniC");
        build_program(&module)
    }

    #[test]
    fn strchr_has_paper_shape() {
        let p = program(
            r#"
            char *strchr(char *str, int c) {
                while (*str) {
                    if (*str == c) return str;
                    str++;
                }
                return 0;
            }
            "#,
        );
        // The paper's Figure 6 draws a virtual "entry" node; the real
        // blocks are the five Table 2 scores: while, if, return1, incr,
        // return2.
        let cfg = p.cfg(p.function_id("strchr").unwrap());
        assert_eq!(cfg.len(), 5, "expected the paper's 5 real blocks");
        // Exactly two conditional branches.
        let branches = cfg
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count();
        assert_eq!(branches, 2);
        // Two returns.
        let returns = cfg
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Return(_)))
            .count();
        assert_eq!(returns, 2);
    }

    #[test]
    fn straight_line_merges_to_one_block() {
        let p = program("int f(int a) { int b = a + 1; int c = b * 2; return c; }");
        let cfg = p.cfg(p.function_id("f").unwrap());
        assert_eq!(cfg.len(), 1);
    }

    #[test]
    fn if_else_makes_a_diamond() {
        let p = program("int f(int a) { int r; if (a) { r = 1; } else { r = 2; } return r; }");
        let cfg = p.cfg(p.function_id("f").unwrap());
        assert_eq!(cfg.len(), 4);
    }

    #[test]
    fn for_loop_blocks() {
        let p = program("int f(int n) { int i, s = 0; for (i = 0; i < n; i++) s += i; return s; }");
        let cfg = p.cfg(p.function_id("f").unwrap());
        // entry, header, body(+latch merged), exit.
        assert!(cfg.len() >= 4 && cfg.len() <= 5, "got {} blocks", cfg.len());
        let loops = analysis::natural_loops(cfg);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn infinite_loop_drops_exit() {
        let p = program("int f(void) { while (1) { } return 0; }");
        let cfg = p.cfg(p.function_id("f").unwrap());
        // No return block is reachable.
        assert!(cfg
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::Return(_))));
    }

    #[test]
    fn switch_terminator_carries_cases() {
        let p = program(
            r#"
            int f(int n) {
                int r = 0;
                switch (n) {
                    case 1: r = 10; break;
                    case 2: r = 20; /* fallthrough */
                    case 3: r += 1; break;
                    default: r = -1;
                }
                return r;
            }
            "#,
        );
        let cfg = p.cfg(p.function_id("f").unwrap());
        let sw = cfg
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Terminator::Switch { cases, .. } => Some(cases.clone()),
                _ => None,
            })
            .expect("switch terminator");
        assert_eq!(sw.len(), 3);
    }

    #[test]
    fn goto_creates_loop() {
        let p = program(
            r#"
            int f(int n) {
                int s = 0;
            top:
                s += n;
                n--;
                if (n > 0) goto top;
                return s;
            }
            "#,
        );
        let cfg = p.cfg(p.function_id("f").unwrap());
        assert_eq!(analysis::natural_loops(cfg).len(), 1);
    }

    #[test]
    fn loop_forest_links_triple_nest() {
        let p = program(
            r#"
            int f(int n) {
                int i, j, k, s = 0;
                for (i = 0; i < n; i++) {
                    for (j = 0; j < n; j++) {
                        for (k = 0; k < n; k++) s += k;
                        s += j;
                    }
                    s += i;
                }
                return s;
            }
            "#,
        );
        let cfg = p.cfg(p.function_id("f").unwrap());
        let forest = analysis::LoopForest::compute(cfg);
        assert_eq!(forest.loops.len(), 3);
        let depths: Vec<usize> = forest.loops.iter().map(|l| l.depth).collect();
        assert_eq!(depths, vec![3, 2, 1], "innermost-first ordering");
        assert_eq!(forest.loops[0].parent, Some(1));
        assert_eq!(forest.loops[1].parent, Some(2));
        assert_eq!(forest.loops[2].parent, None);
        assert_eq!(forest.loops[2].children, vec![1]);
        // The innermost header's nest climbs all three loops.
        let inner_header = forest.loops[0].header;
        assert_eq!(forest.nest_of(inner_header), vec![0, 1, 2]);
        // The entry block is outside every loop.
        assert_eq!(forest.innermost(cfg.entry), None);
    }

    #[test]
    fn loop_forest_merges_shared_headers() {
        // `continue` and the bottom of the body both branch back to
        // the header: two back edges, one merged loop.
        let p = program(
            r#"
            int f(int n) {
                int i, s = 0;
                for (i = 0; i < n; i++) {
                    if (i & 1) continue;
                    s += i;
                }
                return s;
            }
            "#,
        );
        let cfg = p.cfg(p.function_id("f").unwrap());
        let forest = analysis::LoopForest::compute(cfg);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].depth, 1);
    }

    #[test]
    fn do_while_executes_body_first() {
        let p = program("int f(int n) { int s = 0; do { s++; } while (s < n); return s; }");
        let cfg = p.cfg(p.function_id("f").unwrap());
        let loops = analysis::natural_loops(cfg);
        assert_eq!(loops.len(), 1);
        // Entry flows into the body, not into a test-first header: the
        // loop header (target of the back edge) has 2 predecessors.
        let preds = cfg.predecessors();
        assert_eq!(preds[loops[0].header.0 as usize].len(), 2);
    }

    #[test]
    fn code_after_return_is_removed() {
        let p = program("int f(void) { return 1; { int x = 2; x++; } }");
        let cfg = p.cfg(p.function_id("f").unwrap());
        assert_eq!(cfg.len(), 1);
    }

    #[test]
    fn call_graph_direct_and_indirect() {
        let p = program(
            r#"
            int leaf(int x) { return x; }
            int mid(int x) { return leaf(x) + leaf(x + 1); }
            int main(void) {
                int (*fp)(int) = leaf;
                return mid(1) + fp(2);
            }
            "#,
        );
        let cg = &p.callgraph;
        assert_eq!(cg.direct.len(), 3); // leaf×2 from mid, mid from main
        assert_eq!(cg.indirect.len(), 1);
        let mid = p.function_id("mid").unwrap();
        assert_eq!(cg.calls_from(mid).count(), 2);
        let leaf = p.function_id("leaf").unwrap();
        assert_eq!(cg.calls_to(leaf).count(), 2);
    }

    #[test]
    fn recursion_shows_in_scc() {
        let p = program(
            r#"
            int odd(int n);
            int even(int n) { if (n == 0) return 1; return odd(n - 1); }
            int odd(int n) { if (n == 0) return 0; return even(n - 1); }
            int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
            int main(void) { return even(4) + fact(3); }
            "#,
        );
        let adj = p.callgraph.adjacency(p.module.functions.len());
        let sccs = analysis::tarjan_scc(&adj);
        let even = p.function_id("even").unwrap().0 as usize;
        let fact = p.function_id("fact").unwrap().0 as usize;
        let main = p.function_id("main").unwrap().0 as usize;
        assert!(analysis::in_cycle(&adj, &sccs, even));
        assert!(analysis::in_cycle(&adj, &sccs, fact));
        assert!(!analysis::in_cycle(&adj, &sccs, main));
    }

    #[test]
    fn anchors_cover_most_blocks() {
        let p = program(
            r#"
            int f(int n) {
                int s = 0;
                while (n > 0) {
                    if (n % 2) s += n;
                    n--;
                }
                return s;
            }
            "#,
        );
        let cfg = p.cfg(p.function_id("f").unwrap());
        let anchored = cfg.blocks.iter().filter(|b| b.anchor.is_some()).count();
        assert!(anchored >= cfg.len() - 1, "{anchored}/{}", cfg.len());
    }

    #[test]
    fn dominators_basic() {
        let p = program("int f(int a) { if (a) a++; else a--; return a; }");
        let cfg = p.cfg(p.function_id("f").unwrap());
        let dom = analysis::Dominators::compute(cfg);
        for b in &cfg.blocks {
            assert!(dom.dominates(cfg.entry, b.id));
        }
    }

    #[test]
    fn dot_output_renders() {
        let p = program("int f(int a) { if (a) return 1; return 0; }");
        let cfg = p.cfg(p.function_id("f").unwrap());
        let dot = dot::cfg_to_dot(&p.module, cfg, None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("entry"));
        let cgdot = dot::callgraph_to_dot(&p.module, &p.callgraph);
        assert!(cgdot.contains("digraph callgraph"));
    }
}
