//! Tests for the graph analyses (dominators, natural loops, nesting
//! depths) and CFG invariants that the lowering tests do not cover.

use flowgraph::analysis::{loop_depths, natural_loops, Dominators};
use flowgraph::{Program, Terminator};

fn program(src: &str) -> Program {
    let module = minic::compile(src).expect("valid MiniC");
    flowgraph::build_program(&module)
}

#[test]
fn nested_loop_depths() {
    let p = program(
        r#"
        int f(int n) {
            int i, j, k, s = 0;
            for (i = 0; i < n; i++) {
                for (j = 0; j < n; j++) {
                    for (k = 0; k < n; k++) s++;
                }
                s--;
            }
            return s;
        }
        "#,
    );
    let cfg = p.cfg(p.function_id("f").unwrap());
    let depths = loop_depths(cfg);
    assert_eq!(*depths.iter().max().unwrap(), 3, "depths {depths:?}");
    // The entry block is outside all loops.
    assert_eq!(depths[cfg.entry.0 as usize], 0);
}

#[test]
fn loop_body_membership() {
    let p = program(
        "int f(int n) { int i, s = 0; for (i = 0; i < n; i++) { if (i & 1) s++; else s--; } return s; }",
    );
    let cfg = p.cfg(p.function_id("f").unwrap());
    let loops = natural_loops(cfg);
    assert_eq!(loops.len(), 1);
    let l = &loops[0];
    // The loop body contains the header, the latch, and both if arms:
    // at least 4 blocks.
    assert!(l.body.len() >= 4, "body {:?}", l.body);
    assert!(l.body.contains(&l.header));
    assert!(l.body.contains(&l.latch));
}

#[test]
fn idom_of_entry_is_entry() {
    let p = program("int f(int a) { if (a) a++; else a--; return a; }");
    let cfg = p.cfg(p.function_id("f").unwrap());
    let dom = Dominators::compute(cfg);
    assert_eq!(dom.idom(cfg.entry), Some(cfg.entry));
}

#[test]
fn join_is_dominated_only_by_entry_in_a_diamond() {
    let p = program("int f(int a) { int r; if (a) { r = 1; } else { r = 2; } return r; }");
    let cfg = p.cfg(p.function_id("f").unwrap());
    let dom = Dominators::compute(cfg);
    // Find the join block (the one with the Return).
    let join = cfg
        .blocks
        .iter()
        .find(|b| matches!(b.term, Terminator::Return(Some(_))))
        .unwrap()
        .id;
    let arms: Vec<_> = cfg
        .blocks
        .iter()
        .filter(|b| b.id != cfg.entry && b.id != join)
        .collect();
    assert_eq!(arms.len(), 2);
    for arm in arms {
        assert!(
            !dom.dominates(arm.id, join),
            "an if-arm must not dominate the join"
        );
    }
    assert!(dom.dominates(cfg.entry, join));
}

#[test]
fn dominance_is_transitive_on_a_chain() {
    let p = program(
        r#"
        int f(int n) {
            int s = 0;
            if (n > 0) {
                s += 1;
                if (n > 1) {
                    s += 2;
                    if (n > 2) s += 3;
                }
            }
            return s;
        }
        "#,
    );
    let cfg = p.cfg(p.function_id("f").unwrap());
    let dom = Dominators::compute(cfg);
    for a in &cfg.blocks {
        for b in &cfg.blocks {
            for c in &cfg.blocks {
                if dom.dominates(a.id, b.id) && dom.dominates(b.id, c.id) {
                    assert!(dom.dominates(a.id, c.id), "transitivity violated");
                }
            }
        }
    }
}

#[test]
fn switch_multiway_successors() {
    let p = program(
        r#"
        int f(int n) {
            int r = 0;
            switch (n) {
                case 1: r = 1; break;
                case 2: r = 2; break;
                case 3: r = 3; break;
                default: r = 9;
            }
            return r;
        }
        "#,
    );
    let cfg = p.cfg(p.function_id("f").unwrap());
    let sw = cfg
        .blocks
        .iter()
        .find(|b| matches!(b.term, Terminator::Switch { .. }))
        .unwrap();
    let succs = cfg.successors(sw.id);
    assert_eq!(succs.len(), 4, "3 cases + default, deduped: {succs:?}");
}

#[test]
fn predecessors_are_consistent_with_successors() {
    for src in [
        "int f(int n) { while (n--) if (n & 1) n -= 2; return n; }",
        "int f(int n) { int i, s = 0; for (i = 0; i < n; i++) s += i; return s; }",
    ] {
        let p = program(src);
        let cfg = p.cfg(p.function_id("f").unwrap());
        let preds = cfg.predecessors();
        for b in &cfg.blocks {
            for s in cfg.successors(b.id) {
                assert!(
                    preds[s.0 as usize].contains(&b.id),
                    "missing predecessor edge"
                );
            }
        }
        let total_succ: usize = cfg.blocks.iter().map(|b| cfg.successors(b.id).len()).sum();
        let total_pred: usize = preds.iter().map(Vec::len).sum();
        assert_eq!(total_succ, total_pred);
    }
}

#[test]
fn suite_cfgs_satisfy_invariants() {
    for bench in suite::all() {
        let p = bench.compile().expect("compiles");
        for cfg in p.cfgs.iter().flatten() {
            // All reachable, all targets in range.
            assert_eq!(
                cfg.reverse_post_order().len(),
                cfg.len(),
                "{}: unreachable blocks",
                bench.name
            );
            let dom = Dominators::compute(cfg);
            for b in &cfg.blocks {
                assert!(dom.dominates(cfg.entry, b.id), "{}", bench.name);
            }
            // Natural loops are well-formed.
            for l in natural_loops(cfg) {
                assert!(l.body.contains(&l.header));
                assert!(l.body.contains(&l.latch));
            }
        }
    }
}

#[test]
fn postdominators_in_a_diamond() {
    use flowgraph::analysis::PostDominators;
    let p = program("int f(int a) { int r; if (a) { r = 1; } else { r = 2; } return r; }");
    let cfg = p.cfg(p.function_id("f").unwrap());
    let pdom = PostDominators::compute(cfg);
    // The join (return) block post-dominates everything.
    let join = cfg
        .blocks
        .iter()
        .find(|b| matches!(b.term, Terminator::Return(Some(_))))
        .unwrap()
        .id;
    for b in &cfg.blocks {
        assert!(
            pdom.post_dominates(join, b.id),
            "join must post-dominate B{}",
            b.id.0
        );
    }
    // Neither arm post-dominates the entry.
    for arm in cfg
        .blocks
        .iter()
        .filter(|b| b.id != cfg.entry && b.id != join)
    {
        assert!(!pdom.post_dominates(arm.id, cfg.entry));
    }
}

#[test]
fn postdominators_handle_early_returns() {
    use flowgraph::analysis::PostDominators;
    let p = program(
        r#"
        int f(int a) {
            if (a < 0) return -1;
            a *= 2;
            return a;
        }
        "#,
    );
    let cfg = p.cfg(p.function_id("f").unwrap());
    let pdom = PostDominators::compute(cfg);
    // With two returns, no single block post-dominates the entry
    // except the entry itself.
    for b in &cfg.blocks {
        if b.id != cfg.entry {
            assert!(
                !pdom.post_dominates(b.id, cfg.entry),
                "B{} should not post-dominate the entry",
                b.id.0
            );
        }
    }
}

#[test]
fn postdominators_tolerate_infinite_loops() {
    use flowgraph::analysis::PostDominators;
    let p = program("int f(void) { while (1) { } return 0; }");
    let cfg = p.cfg(p.function_id("f").unwrap());
    let pdom = PostDominators::compute(cfg);
    // Nothing in an endless loop reaches the exit; the analysis
    // reports None rather than looping or panicking.
    for b in &cfg.blocks {
        assert!(pdom.ipdom(b.id).is_none(), "B{}", b.id.0);
    }
}

#[test]
fn loop_body_postdominated_by_header_in_simple_loop() {
    use flowgraph::analysis::PostDominators;
    let p = program("int f(int n) { int i, s = 0; for (i = 0; i < n; i++) s += i; return s; }");
    let cfg = p.cfg(p.function_id("f").unwrap());
    let pdom = PostDominators::compute(cfg);
    let loops = natural_loops(cfg);
    let l = &loops[0];
    // Every path from the body back to exit goes through the header.
    assert!(pdom.post_dominates(l.header, l.latch));
}
