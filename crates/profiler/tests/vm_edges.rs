//! Targeted bytecode-VM edge cases: irregular control flow the
//! compiler's block layout must get right (goto across loop
//! boundaries, switch fallthrough, sparse vs. dense jump tables),
//! call-machinery limits (recursion depth, function pointers behind
//! short-circuit guards), and mid-block step-limit aborts. Each test
//! also cross-checks the AST walker so the two engines can't drift
//! apart on these paths.

use profiler::{run, run_ast, RunConfig, RunOutcome, RuntimeError};

fn program(src: &str) -> flowgraph::Program {
    let module = minic::compile(src).expect("valid MiniC");
    flowgraph::build_program(&module)
}

/// Runs on both engines, asserts full agreement, returns the VM's.
fn run_both(src: &str, config: &RunConfig) -> Result<RunOutcome, RuntimeError> {
    let p = program(src);
    let vm = run(&p, config);
    let ast = run_ast(&p, config);
    match (&vm, &ast) {
        (Ok(v), Ok(a)) => {
            assert_eq!(v.exit_code, a.exit_code);
            assert_eq!(v.output, a.output);
            assert_eq!(v.steps, a.steps);
            assert_eq!(v.profile, a.profile);
        }
        (Err(v), Err(a)) => assert_eq!(v, a),
        _ => panic!("engines diverged: vm={vm:?} ast={ast:?}"),
    }
    vm
}

fn run_ok(src: &str) -> RunOutcome {
    run_both(src, &RunConfig::default()).expect("run succeeds")
}

#[test]
fn goto_out_of_nested_loops() {
    let out = run_ok(
        r#"
        int main(void) {
            int i, j, hits = 0;
            for (i = 0; i < 10; i++) {
                for (j = 0; j < 10; j++) {
                    hits++;
                    if (i * 10 + j == 23) goto done;
                }
            }
        done:
            return hits;
        }
        "#,
    );
    assert_eq!(out.exit_code, 24);
}

#[test]
fn goto_into_loop_body_skips_the_header_once() {
    // Jumping into the middle of a loop: the first iteration enters at
    // the label, then control falls into the normal back-edge path.
    let out = run_ok(
        r#"
        int main(void) {
            int i = 7, sum = 0;
            goto inside;
            while (i < 10) {
        inside:
                sum += i;
                i++;
            }
            return sum;
        }
        "#,
    );
    assert_eq!(out.exit_code, 7 + 8 + 9);
}

#[test]
fn goto_backwards_builds_a_loop_with_counted_edges() {
    let out = run_ok(
        r#"
        int main(void) {
            int n = 0;
        again:
            n++;
            if (n < 6) goto again;
            return n;
        }
        "#,
    );
    assert_eq!(out.exit_code, 6);
    // The goto's back edge ran five times.
    assert!(out.profile.edge_counts.values().any(|&c| c == 5));
}

#[test]
fn goto_into_for_loop_skips_init_and_first_test() {
    // Entering a `for` body by label bypasses both the init and the
    // first condition test; the step/test machinery must take over from
    // the back edge onward. Found worth pinning by fuzzing: the
    // generator's goto-into-loop shape exercises exactly this layout.
    let out = run_ok(
        r#"
        int main(void) {
            int i = 5, sum = 0;
            goto body;
            for (i = 0; i < 8; i++) {
        body:
                sum = sum * 10 + i;
            }
            return sum % 251;
        }
        "#,
    );
    // Entered at i=5: visits 5, 6, 7 -> sum 567.
    assert_eq!(out.exit_code, 567 % 251);
    // The loop ran three bodies but only three step->test traversals;
    // no block executed more than four times (test runs 5,6,7,8).
    let max = out.profile.block_counts[0].iter().max().copied().unwrap();
    assert!(max <= 4, "unexpected hot block: {max}");
}

#[test]
fn switch_fallthrough_chains_execute_in_order() {
    let out = run_ok(
        r#"
        int main(void) {
            int trace = 0, v;
            for (v = 0; v < 4; v++) {
                switch (v) {
                    case 0: trace = trace * 10 + 1; /* fall through */
                    case 1: trace = trace * 10 + 2; break;
                    case 2: trace = trace * 10 + 3; /* fall through */
                    default: trace = trace * 10 + 4;
                }
            }
            /* v=0: 12, v=1: 2, v=2: 34, v=3: 4 */
            printf("%d\n", trace);
            return 0;
        }
        "#,
    );
    assert_eq!(out.stdout(), "122344\n");
}

#[test]
fn switch_falls_through_into_a_middle_default() {
    // The default section sits between two cases: case 0 falls through
    // *into* it, and the default itself falls through into case 9. Both
    // the jump routing (unmatched values land mid-switch) and the
    // sequential fallthrough order must hold.
    let out = run_ok(
        r#"
        int classify(int v) {
            int trace = 0;
            switch (v) {
                case 0: trace = trace * 10 + 1; /* fall through */
                default: trace = trace * 10 + 2; /* fall through */
                case 9: trace = trace * 10 + 3; break;
                case 5: trace = trace * 10 + 4;
            }
            return trace;
        }
        int main(void) {
            /* 0 -> 123, 4 -> 23, 9 -> 3, 5 -> 4 */
            printf("%d %d %d %d\n", classify(0), classify(4), classify(9), classify(5));
            return 0;
        }
        "#,
    );
    assert_eq!(out.stdout(), "123 23 3 4\n");
}

#[test]
fn sparse_switch_uses_search_not_a_table() {
    // Case values spread over ~2 million: a dense table would be
    // enormous, so the compiler must fall back to binary search while
    // keeping first-match semantics.
    let out = run_ok(
        r#"
        int pick(int v) {
            switch (v) {
                case -1000000: return 1;
                case 0: return 2;
                case 7: return 3;
                case 1000000: return 4;
                default: return 9;
            }
        }
        int main(void) {
            printf("%d %d %d %d %d %d\n",
                pick(-1000000), pick(0), pick(7),
                pick(1000000), pick(8), pick(-999999));
            return 0;
        }
        "#,
    );
    assert_eq!(out.stdout(), "1 2 3 4 9 9\n");
}

#[test]
fn dense_switch_with_holes_routes_gaps_to_default() {
    let out = run_ok(
        r#"
        int pick(int v) {
            switch (v) {
                case 0: return 10;
                case 1: return 11;
                case 3: return 13;   /* hole at 2 */
                case 4: return 14;
                default: return -1;
            }
        }
        int main(void) {
            int v, acc = 0;
            for (v = -1; v <= 5; v++) acc = acc * 100 + (pick(v) + 20);
            return acc > 0;
        }
        "#,
    );
    assert_eq!(out.exit_code, 1);
}

#[test]
fn recursion_to_the_exact_depth_limit_succeeds() {
    let src = r#"
        int down(int n) { if (n == 0) return 0; return 1 + down(n - 1); }
        int main(void) { return down(40); }
    "#;
    // main is frame 1, so down() may nest 41 deep at limit 42.
    let cfg = RunConfig {
        max_call_depth: 42,
        ..RunConfig::default()
    };
    let out = run_both(src, &cfg).expect("exactly at the limit");
    assert_eq!(out.exit_code, 40);
}

#[test]
fn recursion_one_past_the_limit_overflows() {
    let src = r#"
        int down(int n) { if (n == 0) return 0; return 1 + down(n - 1); }
        int main(void) { return down(42); }
    "#;
    let cfg = RunConfig {
        max_call_depth: 42,
        ..RunConfig::default()
    };
    let err = run_both(src, &cfg).expect_err("one frame too deep");
    assert_eq!(err, RuntimeError::StackOverflow { limit: 42 });
}

#[test]
fn zero_depth_limit_overflows_before_main() {
    let cfg = RunConfig {
        max_call_depth: 0,
        ..RunConfig::default()
    };
    let err = run_both("int main(void) { return 0; }", &cfg).expect_err("no room for main");
    assert_eq!(err, RuntimeError::StackOverflow { limit: 0 });
}

#[test]
fn function_pointer_call_behind_short_circuit_guard() {
    // The fp(...) call sits in the right operand of &&, so the VM's
    // branchy lowering of && must still evaluate (and count) the call
    // only when the guard passes.
    let out = run_ok(
        r#"
        int calls;
        int odd(int n) { calls++; return n & 1; }
        int main(void) {
            int (*fp)(int);
            int n, picked = 0;
            fp = odd;
            for (n = 0; n < 8; n++) {
                if (n > 2 && fp(n)) picked++;
            }
            printf("%d %d\n", picked, calls);
            return 0;
        }
        "#,
    );
    // Guard passes for n in 3..8 (5 calls); odd among them: 3, 5, 7.
    assert_eq!(out.stdout(), "3 5\n");
}

#[test]
fn mutual_recursion_through_function_pointers() {
    // even/odd recursion where every recursive call goes through a
    // function pointer: each leg is an *indirect* call site, so the
    // profiler must attribute invocations without any direct call-graph
    // edge between the two functions.
    let out = run_ok(
        r#"
        int is_odd(int n);
        int (*podd)(int);
        int (*peven)(int);
        int is_even(int n) { if (n == 0) return 1; return podd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return peven(n - 1); }
        int main(void) {
            podd = is_odd;
            peven = is_even;
            printf("%d %d\n", peven(10), podd(7));
            return 0;
        }
        "#,
    );
    assert_eq!(out.stdout(), "1 1\n");
    // peven(10): even 6x, odd 5x. podd(7): odd 4x, even 4x.
    let total: u64 = out.profile.func_counts.iter().sum();
    assert_eq!(total, 1 + 10 + 9); // main + is_even 10 + is_odd 9
                                   // Every non-main invocation flowed through an indirect site.
    let sites: u64 = out.profile.call_site_counts.iter().sum();
    assert!(sites >= 19 - 2, "call sites undercounted: {sites}");
}

#[test]
fn null_function_pointer_behind_guard_never_fires() {
    let out = run_ok(
        r#"
        int main(void) {
            int (*fp)(int);
            fp = 0;
            if (0 && fp(3)) return 1;
            return 2;
        }
        "#,
    );
    assert_eq!(out.exit_code, 2);
}

#[test]
fn step_limit_aborts_mid_block() {
    // A long straight-line block: the batched-tick VM must report the
    // same StepLimit as the per-node AST walker even when the limit
    // falls in the middle of the block's fused tick.
    let src = r#"
        int main(void) {
            int a = 0;
            while (1) {
                a += 1; a += 2; a += 3; a += 4; a += 5;
                a += 6; a += 7; a += 8; a += 9; a += 10;
            }
            return a;
        }
    "#;
    for limit in [50, 51, 52, 53, 99, 1000] {
        let cfg = RunConfig {
            max_steps: limit,
            ..RunConfig::default()
        };
        let err = run_both(src, &cfg).expect_err("must hit the limit");
        assert_eq!(err, RuntimeError::StepLimit { limit });
    }
}

#[test]
fn compile_once_execute_many_inputs() {
    // The public compile/execute split: one artifact, several inputs.
    let p = program(
        r#"
        int main(void) {
            int c, n = 0;
            while ((c = getchar()) != -1) n = n * 10 + (c - '0');
            return n;
        }
        "#,
    );
    let compiled = profiler::compile(&p);
    for (input, want) in [("7", 7), ("19", 19), ("305", 305)] {
        let out = compiled
            .execute(&RunConfig::with_input(input))
            .expect("runs clean");
        assert_eq!(out.exit_code, want);
    }
}
