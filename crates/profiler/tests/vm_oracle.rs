//! Differential oracle: the bytecode VM must be observably identical
//! to the AST walker (`profiler::run_ast`) on randomly generated
//! MiniC programs — same exit code, same stdout bytes, same step
//! count, same *complete* profile (blocks, edges, branches, call
//! sites, function counts, cost), and on failing runs the same
//! `RuntimeError`.
//!
//! The generator builds structurally varied but always-compiling
//! programs: nested arithmetic with division (which may legitimately
//! trap), short-circuit operators, ternaries, bounded loops,
//! switches with and without fallthrough, recursion, calls through
//! function pointers, global array traffic, `getchar` consuming a
//! random input, and string builtins.

use profiler::{run, run_ast, run_ast_traced, run_traced, RunConfig};
use proptest::test_runner::ProptestConfig;
use proptest::{proptest, Strategy, TestRng};

const BINOPS: &[&str] = &[
    "+", "-", "*", "/", "%", "<<", ">>", "<", "<=", ">", ">=", "==", "!=", "&", "|", "^",
];
const COMPOUND: &[&str] = &["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="];
const VARS: &[&str] = &["a", "b", "c", "g0", "g1"];

/// One generated case: a MiniC source and an input for `getchar`.
#[derive(Debug)]
struct GenCase {
    src: String,
    input: String,
}

struct ProgramGen;

/// Recursive source builder; `counters` keeps loop variables unique.
struct Builder<'a> {
    rng: &'a mut TestRng,
    counters: usize,
}

impl Builder<'_> {
    fn var(&mut self) -> &'static str {
        VARS[self.rng.below(VARS.len())]
    }

    fn word(&mut self) -> String {
        let n = self.rng.below(6);
        (0..n)
            .map(|_| (b'a' + self.rng.below(26) as u8) as char)
            .collect()
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return match self.rng.below(3) {
                0 => format!("{}", self.rng.below(19) as i64 - 9),
                1 => self.var().to_string(),
                _ => format!("garr[{}]", self.rng.below(8)),
            };
        }
        let d = depth - 1;
        match self.rng.below(12) {
            0..=2 => {
                let op = BINOPS[self.rng.below(BINOPS.len())];
                format!("({} {} {})", self.expr(d), op, self.expr(d))
            }
            3 => format!("({} ? {} : {})", self.expr(d), self.expr(d), self.expr(d)),
            4 => format!("({} && {})", self.expr(d), self.expr(d)),
            5 => format!("({} || {})", self.expr(d), self.expr(d)),
            6 => {
                // The space keeps `-(-x)` from lexing as `--x`.
                let u = ["-", "!", "~"][self.rng.below(3)];
                format!("({} {})", u, self.expr(d))
            }
            7 => format!("garr[({}) & 7]", self.expr(d)),
            8 => format!("f0({}, {})", self.expr(d), self.expr(d)),
            9 => format!("rec(({}) & 7)", self.expr(d)),
            10 => format!("fp({}, {})", self.expr(d), self.expr(d)),
            _ => "getchar()".to_string(),
        }
    }

    fn block(&mut self, depth: usize, n: usize) -> String {
        (0..n).map(|_| self.stmt(depth)).collect()
    }

    fn stmt(&mut self, depth: usize) -> String {
        let d = depth.saturating_sub(1);
        match self.rng.below(11) {
            0 | 1 => format!("{} = {};\n", self.var(), self.expr(d)),
            2 => {
                let op = COMPOUND[self.rng.below(COMPOUND.len())];
                format!("{} {} {};\n", self.var(), op, self.expr(d))
            }
            3 => {
                let forms = ["{}++;\n", "{}--;\n", "++{};\n", "--{};\n"];
                forms[self.rng.below(4)].replacen("{}", self.var(), 1)
            }
            4 => format!("garr[({}) & 7] = {};\n", self.expr(d), self.expr(d)),
            5 => format!("printf(\"%d \", {});\n", self.expr(d)),
            6 => format!("putchar(65 + (({}) & 25));\n", self.expr(d)),
            7 if depth > 0 => {
                let cond = self.expr(d);
                let (nt, ne) = (1 + self.rng.below(2), 1 + self.rng.below(2));
                let (then_b, else_b) = (self.block(d, nt), self.block(d, ne));
                format!("if ({cond}) {{\n{then_b}}} else {{\n{else_b}}}\n")
            }
            8 if depth > 0 => {
                // Bounded loop: always terminates on its own counter.
                self.counters += 1;
                let t = format!("t{}", self.counters);
                let bound = 1 + self.rng.below(8);
                let n = 1 + self.rng.below(2);
                let body = self.block(d, n);
                format!("{{ int {t} = 0; while ({t} < {bound}) {{ {t}++;\n{body}}} }}\n")
            }
            9 if depth > 0 => {
                // Switch over a masked scrutinee; cases may fall through.
                let mut s = format!("switch (({}) & 3) {{\n", self.expr(d));
                for case in 0..3usize {
                    if self.rng.below(4) == 0 {
                        continue; // missing case -> default
                    }
                    s.push_str(&format!("case {case}:\n{}", self.block(d, 1)));
                    if self.rng.below(3) != 0 {
                        s.push_str("break;\n");
                    }
                }
                s.push_str(&format!("default:\n{}}}\n", self.block(d, 1)));
                s
            }
            10 => {
                // String builtins with random content.
                let (w1, w2, w3) = (self.word(), self.word(), self.word());
                format!(
                    "{{ char sb[64]; strcpy(sb, \"{w1}\"); strcat(sb, \"{w2}\");\n\
                     printf(\"%s %d %d \", sb, strcmp(sb, \"{w3}\"), strlen(sb)); }}\n"
                )
            }
            _ => format!("g0 = f0({}, {});\n", self.expr(d), self.expr(d)),
        }
    }
}

impl Strategy for ProgramGen {
    type Value = GenCase;

    fn generate(&self, rng: &mut TestRng) -> GenCase {
        let input: String = {
            let n = rng.below(8);
            (0..n)
                .map(|_| (b'0' + rng.below(75) as u8) as char)
                .collect()
        };
        let mut b = Builder { rng, counters: 0 };
        let init: Vec<i64> = (0..3).map(|_| b.rng.below(41) as i64 - 20).collect();
        let n_stmts = 3 + b.rng.below(5);
        let body = b.block(3, n_stmts);
        let src = format!(
            "int g0; int g1; int garr[8];\n\
             int f0(int x, int y) {{ g1 += x; return (x * 31 + y) ^ (x >> 2); }}\n\
             int rec(int n) {{ if (n <= 0) return g1 & 3; return n + rec(n - 1); }}\n\
             int main(void) {{\n\
             int a = {}; int b = {}; int c = {};\n\
             int (*fp)(int, int);\n\
             fp = f0;\n\
             {body}\
             printf(\"%d %d %d %d %d\\n\", a, b, c, g0, garr[1]);\n\
             return (a ^ b) & 127;\n}}\n",
            init[0], init[1], init[2],
        );
        GenCase { src, input }
    }
}

fn compile(src: &str) -> flowgraph::Program {
    let module = minic::compile(src).expect("generated source must compile");
    flowgraph::build_program(&module)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn vm_matches_ast_walker(case in ProgramGen) {
        let program = compile(&case.src);
        let config = RunConfig {
            max_steps: 100_000,
            max_call_depth: 64,
            ..RunConfig::with_input(case.input.as_bytes().to_vec())
        };
        let vm = run(&program, &config);
        let ast = run_ast(&program, &config);
        match (vm, ast) {
            (Ok(v), Ok(a)) => {
                assert_eq!(v.exit_code, a.exit_code, "exit code diverged");
                assert_eq!(v.stdout(), a.stdout(), "stdout diverged");
                assert_eq!(v.steps, a.steps, "step count diverged");
                assert_eq!(v.profile, a.profile, "profile diverged");
            }
            (Err(v), Err(a)) => assert_eq!(v, a, "error kind diverged"),
            (v, a) => panic!("outcome diverged: vm={v:?} ast={a:?}"),
        }
    }

    /// Reuse-trace oracle: the VM's traced run and the AST walker's
    /// traced run must produce bit-identical reuse histograms (both
    /// observe only data-segment traffic, which the two engines issue
    /// in the same order), and turning tracing on must change no
    /// frequency-profile counter relative to the untraced run.
    #[test]
    fn reuse_trace_matches_ast_walker(case in ProgramGen) {
        let program = compile(&case.src);
        let config = RunConfig {
            max_steps: 100_000,
            max_call_depth: 64,
            ..RunConfig::with_input(case.input.as_bytes().to_vec())
        };
        let plain = run(&program, &config);
        let vm = run_traced(&program, &config);
        let ast = run_ast_traced(&program, &config);
        match (vm, ast) {
            (Ok((vo, vt)), Ok((ao, at))) => {
                assert_eq!(vt, at, "reuse trace diverged");
                assert_eq!(vo.profile, ao.profile, "traced profile diverged");
                let p = plain.expect("untraced run must agree on success");
                assert_eq!(vo.profile, p.profile, "tracing changed the profile");
                assert_eq!(vo.steps, p.steps, "tracing changed the step count");
                assert_eq!(vo.stdout(), p.stdout(), "tracing changed the output");
            }
            (Err(v), Err(a)) => {
                assert_eq!(v, a, "traced error kind diverged");
                assert_eq!(v, plain.expect_err("untraced run must agree on failure"));
            }
            (v, a) => panic!("traced outcome diverged: vm={v:?} ast={a:?}"),
        }
    }

    #[test]
    fn vm_is_deterministic_across_cache_hits(case in ProgramGen) {
        let program = compile(&case.src);
        let config = RunConfig::with_input(case.input.as_bytes().to_vec());
        let first = run(&program, &config);
        // A second run hits the compile cache; a rebuilt Program gets a
        // cache hit by fingerprint. All three must agree.
        let second = run(&program, &config);
        let rebuilt = run(&compile(&case.src), &config);
        match (&first, &second, &rebuilt) {
            (Ok(x), Ok(y), Ok(z)) => {
                assert_eq!(x.stdout(), y.stdout());
                assert_eq!(x.steps, y.steps);
                assert_eq!(x.profile, y.profile);
                assert_eq!(x.stdout(), z.stdout());
                assert_eq!(x.profile, z.profile);
            }
            (Err(x), Err(y), Err(z)) => {
                assert_eq!(x, y);
                assert_eq!(x, z);
            }
            _ => panic!("determinism broken: {first:?} vs {second:?} vs {rebuilt:?}"),
        }
    }
}
