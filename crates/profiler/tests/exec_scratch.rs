//! `ExecScratch` reuse and the post-fold IR fingerprint: a shared
//! scratch across dissimilar programs must be invisible in every
//! observable output (the corpus engine reuses one scratch per worker
//! across thousands of programs), and the fingerprint must separate
//! observationally different programs while collapsing identical IR.

use profiler::{compile, ExecScratch, RunConfig, RunOutcome, RuntimeError};

fn compiled(src: &str) -> profiler::CompiledProgram {
    let module = minic::compile(src).expect("valid MiniC");
    compile(&flowgraph::build_program(&module))
}

/// Exercises strings/printf (the shared string buffers), deep-ish
/// recursion (frame stack growth), indirect calls, and a loop with a
/// data-dependent branch — everything the scratch buffers touch.
const BUSY: &str = r#"
    int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
    int twice(int x) { return 2 * x; }
    int main(void) {
        int (*f)(int) = twice;
        char buf[32];
        int i, acc = 0;
        for (i = 0; i < 12; i++) {
            if (i % 3 == 0) acc += f(i);
            else acc += fib(i % 7);
        }
        sprintf(buf, "acc=%d", acc);
        printf("%s fib=%d\n", buf, fib(10));
        return acc % 7;
    }
"#;

const SMALL: &str = r#"
    int main(void) {
        int i, s = 0;
        for (i = 0; i < 5; i++) s += i;
        printf("%d\n", s);
        return 0;
    }
"#;

fn assert_same(a: &Result<RunOutcome, RuntimeError>, b: &Result<RunOutcome, RuntimeError>) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.exit_code, y.exit_code);
            assert_eq!(x.output, y.output);
            assert_eq!(x.steps, y.steps);
            assert_eq!(x.profile, y.profile);
        }
        (Err(x), Err(y)) => assert_eq!(x, y),
        _ => panic!("fresh vs reused scratch diverged: {a:?} vs {b:?}"),
    }
}

#[test]
fn reused_scratch_is_observationally_invisible() {
    let big = compiled(BUSY);
    let small = compiled(SMALL);
    let cfg = RunConfig::default();
    // One shared scratch ping-ponged between programs of different
    // shapes (so every buffer shrinks and regrows), checked against a
    // fresh execute each time.
    let mut scratch = ExecScratch::default();
    for _ in 0..3 {
        assert_same(&big.execute(&cfg), &big.execute_in(&cfg, &mut scratch));
        assert_same(&small.execute(&cfg), &small.execute_in(&cfg, &mut scratch));
    }
}

#[test]
fn reused_scratch_survives_a_runtime_error() {
    let trap = compiled("int main(void) { int z = 0; return 1 / z; }");
    let ok = compiled(SMALL);
    let cfg = RunConfig::default();
    let mut scratch = ExecScratch::default();
    assert!(trap.execute_in(&cfg, &mut scratch).is_err());
    // The error path must still recycle the buffers and leave the
    // scratch usable.
    assert_same(&ok.execute(&cfg), &ok.execute_in(&cfg, &mut scratch));
}

#[test]
fn ir_fingerprint_separates_programs_and_is_deterministic() {
    let a = compiled(BUSY);
    let b = compiled(SMALL);
    assert_eq!(a.ir_fingerprint(), compiled(BUSY).ir_fingerprint());
    assert_ne!(a.ir_fingerprint(), b.ir_fingerprint());
    // A one-constant change is a different post-fold IR.
    let c = compiled(&SMALL.replace("i < 5", "i < 6"));
    assert_ne!(b.ir_fingerprint(), c.ir_fingerprint());
}
