//! Targeted tests of the interpreter's failure paths, builtin corner
//! cases, and instrumentation details that the happy-path suite tests
//! do not reach.

use profiler::{run, RunConfig, RuntimeError};

fn program(src: &str) -> flowgraph::Program {
    let module = minic::compile(src).expect("valid MiniC");
    flowgraph::build_program(&module)
}

fn run_ok(src: &str) -> profiler::RunOutcome {
    run(&program(src), &RunConfig::default()).expect("run succeeds")
}

fn run_err(src: &str) -> RuntimeError {
    run(&program(src), &RunConfig::default()).expect_err("run should fail")
}

#[test]
fn undefined_function_call_is_reported() {
    let e = run_err("int helper(int x); int main(void) { return helper(1); }");
    assert!(matches!(e, RuntimeError::Undefined { name } if name == "helper"));
}

#[test]
fn indirect_call_through_garbage_is_reported() {
    let e = run_err(
        r#"
        int main(void) {
            int garbage = 12345;
            int (*fp)(int);
            fp = garbage;     /* K&R-permissive int -> fn-pointer */
            return fp(1);
        }
        "#,
    );
    assert_eq!(e, RuntimeError::NotAFunction);
}

#[test]
fn no_main_is_reported() {
    let e = run_err("int helper(void) { return 1; }");
    assert_eq!(e, RuntimeError::NoMain);
}

#[test]
fn wild_address_is_out_of_bounds() {
    let e = run_err(
        r#"
        int main(void) {
            int *p = (int *) 99999999;
            return *p;
        }
        "#,
    );
    assert!(matches!(e, RuntimeError::OutOfBounds { .. }));
}

#[test]
fn negative_modulo_truncates_toward_zero() {
    // C99 semantics: -7 % 3 == -1, -7 / 3 == -2.
    let out = run_ok(
        r#"
        int main(void) {
            int a = -7, b = 3;
            printf("%d %d %d %d\n", a / b, a % b, (-a) / (-b), a % (-b));
            return 0;
        }
        "#,
    );
    assert_eq!(out.stdout(), "-2 -1 -2 -1\n");
}

#[test]
fn shift_semantics() {
    let out = run_ok(
        r#"
        int main(void) {
            printf("%d %d %d\n", 1 << 10, -16 >> 2, (1 << 4) >> 4);
            return 0;
        }
        "#,
    );
    assert_eq!(out.stdout(), "1024 -4 1\n");
}

#[test]
fn printf_octal_and_width_flags_are_tolerated() {
    let out = run_ok(
        r#"
        int main(void) {
            printf("%o|%5d|%-3d|%02x|%q\n", 8, 42, 7, 255, 0);
            return 0;
        }
        "#,
    );
    // Width/precision are skipped (not implemented), conversions work,
    // unknown conversions print literally.
    assert_eq!(out.stdout(), "10|42|7|ff|%q\n");
}

#[test]
fn strncpy_pads_and_strncmp_limits() {
    let out = run_ok(
        r#"
        int main(void) {
            char buf[8];
            strncpy(buf, "abcdef", 4);
            printf("%d\n", buf[3]);
            printf("%d\n", buf[4] == 0 ? 1 : 0); /* NUL-padded? no: only n chars */
            printf("%d %d\n", strncmp("abcdef", "abcxyz", 3), strncmp("abcdef", "abcxyz", 4));
            return 0;
        }
        "#,
    );
    let text = out.stdout();
    let lines: Vec<&str> = text.trim().lines().map(str::trim).collect();
    assert_eq!(lines[0], "100"); // 'd'
    assert_eq!(lines[2], "0 -1");
}

#[test]
fn calloc_zeroes() {
    let out = run_ok(
        r#"
        int main(void) {
            int *p = (int *) calloc(8, 1);
            int i, s = 0;
            for (i = 0; i < 8; i++) s += p[i];
            return s;
        }
        "#,
    );
    assert_eq!(out.exit_code, 0);
}

#[test]
fn comma_and_compound_assignment_results() {
    let out = run_ok(
        r#"
        int main(void) {
            int a = 1, b;
            b = (a += 2, a *= 3, a - 1);
            int c = 10;
            c <<= 2; c |= 1; c ^= 4; c &= 63; c %= 40; c -= 1; c /= 2;
            return b * 100 + c;
        }
        "#,
    );
    // a = 9, b = 8; c: 10<<2=40, |1=41, ^4=45, &63=45, %40=5, -1=4, /2=2.
    assert_eq!(out.exit_code, 802);
}

#[test]
fn pre_and_post_increment_on_pointers() {
    let out = run_ok(
        r#"
        int arr[5] = {10, 20, 30, 40, 50};
        int main(void) {
            int *p = arr;
            int a = *p++;
            int b = *++p;
            int c = *--p;
            int d = *p--;
            return a * 1000 + b * 100 + c * 10 + d;
        }
        "#,
    );
    // a=10 (p->1), b=30 (p->2), c=20 (p->1), d=20 (p->0).
    assert_eq!(out.exit_code, 10 * 1000 + 30 * 100 + 20 * 10 + 20);
}

#[test]
fn ternary_branch_counts_are_recorded() {
    let out = run_ok(
        r#"
        int main(void) {
            int i, s = 0;
            for (i = 0; i < 9; i++) s += (i % 3 == 0) ? 10 : 1;
            return s;
        }
        "#,
    );
    assert_eq!(out.exit_code, 36);
    // The ternary site: 3 taken, 6 not taken.
    assert!(out.profile.branch_counts.contains(&(3, 6)));
}

#[test]
fn function_invocations_count_indirect_calls() {
    let out = run_ok(
        r#"
        int f(int x) { return x; }
        int main(void) {
            int (*p)(int) = f;
            int i, s = 0;
            for (i = 0; i < 4; i++) s += p(i);
            return s + f(10);
        }
        "#,
    );
    assert_eq!(out.profile.func_counts[0], 5);
}

#[test]
fn getchar_eof_is_minus_one_forever() {
    let out = run_ok(
        r#"
        int main(void) {
            int a = getchar();
            int b = getchar();
            return (a == -1) + (b == -1);
        }
        "#,
    );
    assert_eq!(out.exit_code, 2);
}

#[test]
fn string_literals_are_interned_and_stable() {
    let out = run_ok(
        r#"
        int main(void) {
            char *a = "same";
            char *b = "same";
            return a == b; /* interned: same address */
        }
        "#,
    );
    assert_eq!(out.exit_code, 1);
}

#[test]
fn nested_struct_array_access() {
    let out = run_ok(
        r#"
        struct inner { int vals[3]; };
        struct outer { struct inner rows[2]; int tag; };
        struct outer grid[2];
        int main(void) {
            grid[1].rows[0].vals[2] = 7;
            grid[1].tag = 3;
            struct outer *p = &grid[1];
            return p->rows[0].vals[2] * 10 + p->tag;
        }
        "#,
    );
    assert_eq!(out.exit_code, 73);
}

#[test]
fn float_to_int_conversion_truncates() {
    let out = run_ok(
        r#"
        int main(void) {
            float x = 3.9;
            float y = -3.9;
            int a = (int) x;
            int b = (int) y;
            return a * 10 + (b == -3 ? 1 : 0);
        }
        "#,
    );
    assert_eq!(out.exit_code, 31);
}

#[test]
fn exit_skips_remaining_output_but_keeps_prior() {
    let out = run_ok(
        r#"
        int main(void) {
            printf("before\n");
            exit(7);
            printf("after\n");
            return 0;
        }
        "#,
    );
    assert_eq!(out.exit_code, 7);
    assert_eq!(out.stdout(), "before\n");
}

#[test]
fn cost_model_charges_callers_for_builtin_calls() {
    let out = run_ok(
        r#"
        int chatty(void) { int i; for (i = 0; i < 50; i++) putchar('x'); return 0; }
        int main(void) { chatty(); return 0; }
        "#,
    );
    assert!(out.profile.func_cost[0] > out.profile.func_cost[1]);
}
