//! # profiler — the instrumenting MiniC interpreter
//!
//! The PLDI 1994 paper collected its ground truth by instrumenting gcc's
//! output and running the SPEC92 suite on several inputs. This crate is
//! that substrate: [`run`] executes a [`flowgraph::Program`] on a given
//! input and returns a [`Profile`] with basic-block, edge, branch,
//! call-site, and function-invocation counts, plus the abstract cost
//! units behind the Figure 10 selective-optimization experiment
//! ([`cost`]).
//!
//! Profiles from several inputs are combined with
//! [`profile::aggregate`], which normalizes each run to a common total
//! block count and sums — the paper's §3 aggregation for
//! profile-predicts-profile comparisons.
//!
//! ```
//! use profiler::{run, RunConfig};
//!
//! let module = minic::compile(r#"
//!     int main(void) {
//!         int c, n = 0;
//!         while ((c = getchar()) != -1) if (c == 'a') n++;
//!         printf("%d a's\n", n);
//!         return n;
//!     }
//! "#).unwrap();
//! let program = flowgraph::build_program(&module);
//! let out = run(&program, &RunConfig::with_input("banana")).unwrap();
//! assert_eq!(out.exit_code, 3);
//! assert_eq!(out.stdout(), "3 a's\n");
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod cost;
pub mod interp;
pub mod profile;
pub mod reuse;

pub use bytecode::{compile, run, run_traced, CompiledProgram, ExecScratch};
pub use interp::{run_ast, run_ast_traced, RunConfig, RunOutcome, RuntimeError, Value};
pub use profile::{aggregate, AggregateProfile, Profile};
pub use reuse::{ObjectMap, ReuseCollector, ReuseTrace};

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::Program;

    fn program(src: &str) -> Program {
        let module = minic::compile(src).expect("valid MiniC");
        flowgraph::build_program(&module)
    }

    fn run_ok(src: &str) -> RunOutcome {
        let p = program(src);
        match run(&p, &RunConfig::default()) {
            Ok(o) => o,
            Err(e) => panic!("runtime error: {e}"),
        }
    }

    fn run_with(src: &str, input: &str) -> RunOutcome {
        let p = program(src);
        run(&p, &RunConfig::with_input(input)).expect("run failed")
    }

    #[test]
    fn arithmetic_and_printf() {
        let out = run_ok(
            r#"
            int main(void) {
                int a = 7, b = 3;
                printf("%d %d %d %d %d\n", a + b, a - b, a * b, a / b, a % b);
                printf("%x %c %s%%\n", 255, 'Z', "str");
                printf("%f\n", 1.5);
                return 0;
            }
            "#,
        );
        assert_eq!(out.stdout(), "10 4 21 2 1\nff Z str%\n1.500000\n");
    }

    #[test]
    fn pointer_arithmetic_scales_by_element() {
        let out = run_ok(
            r#"
            struct pair { int a; int b; };
            struct pair arr[3];
            int main(void) {
                struct pair *p = arr;
                arr[2].b = 42;
                p = p + 2;
                printf("%d %d\n", p->b, (int)(p - arr));
                return 0;
            }
            "#,
        );
        assert_eq!(out.stdout(), "42 2\n");
    }

    #[test]
    fn strings_and_builtins() {
        let out = run_ok(
            r#"
            int main(void) {
                char buf[32];
                strcpy(buf, "hello");
                strcat(buf, " world");
                printf("%d %s\n", strlen(buf), buf);
                printf("%d\n", strcmp("abc", "abd"));
                printf("%d\n", atoi("  123"));
                return 0;
            }
            "#,
        );
        assert_eq!(out.stdout(), "11 hello world\n-1\n123\n");
    }

    #[test]
    fn malloc_and_linked_list() {
        let out = run_ok(
            r#"
            struct node { int v; struct node *next; };
            int main(void) {
                struct node *head = 0;
                int i, sum = 0;
                for (i = 0; i < 5; i++) {
                    struct node *n = (struct node *) malloc(sizeof(struct node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                while (head != 0) { sum += head->v; head = head->next; }
                printf("%d\n", sum);
                return 0;
            }
            "#,
        );
        assert_eq!(out.stdout(), "10\n");
    }

    #[test]
    fn recursion_fib() {
        let out = run_ok(
            r#"
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main(void) { printf("%d\n", fib(15)); return 0; }
            "#,
        );
        assert_eq!(out.stdout(), "610\n");
        let fibid = 0;
        // fib(15) is invoked 1973 times.
        assert_eq!(out.profile.func_counts[fibid], 1973);
    }

    #[test]
    fn function_pointers_dispatch() {
        let out = run_ok(
            r#"
            int add(int a, int b) { return a + b; }
            int mul(int a, int b) { return a * b; }
            int (*ops[2])(int, int) = { add, mul };
            int main(void) {
                int i, r = 0;
                for (i = 0; i < 2; i++) r += ops[i](3, 4);
                return r;
            }
            "#,
        );
        assert_eq!(out.exit_code, 19);
    }

    #[test]
    fn switch_with_fallthrough() {
        let out = run_ok(
            r#"
            int classify(int c) {
                switch (c) {
                    case 0: return 100;
                    case 1:
                    case 2: return 200;
                    case 3: c += 1; /* fallthrough */
                    case 4: return c;
                    default: return -1;
                }
            }
            int main(void) {
                printf("%d %d %d %d %d %d\n",
                    classify(0), classify(1), classify(2),
                    classify(3), classify(4), classify(9));
                return 0;
            }
            "#,
        );
        assert_eq!(out.stdout(), "100 200 200 4 4 -1\n");
    }

    #[test]
    fn goto_and_labels() {
        let out = run_ok(
            r#"
            int main(void) {
                int i = 0, s = 0;
            loop:
                s += i;
                i++;
                if (i < 5) goto loop;
                return s;
            }
            "#,
        );
        assert_eq!(out.exit_code, 10);
    }

    #[test]
    fn ternary_and_short_circuit() {
        let out = run_ok(
            r#"
            int sideeffect(int *p) { *p = 1; return 1; }
            int main(void) {
                int touched = 0;
                int a = (0 && sideeffect(&touched)) ? 10 : 20;
                int b = (1 || sideeffect(&touched)) ? 3 : 4;
                printf("%d %d %d\n", a, b, touched);
                return 0;
            }
            "#,
        );
        assert_eq!(out.stdout(), "20 3 0\n");
    }

    #[test]
    fn float_math() {
        let out = run_ok(
            r#"
            int main(void) {
                float x = 2.0;
                float y = sqrt(x) * sqrt(x);
                printf("%d\n", (int)(y + 0.5));
                printf("%d\n", (int) floor(3.7));
                return 0;
            }
            "#,
        );
        assert_eq!(out.stdout(), "2\n3\n");
    }

    #[test]
    fn getchar_consumes_input() {
        let out = run_with(
            r#"
            int main(void) {
                int c, n = 0;
                while ((c = getchar()) != -1) n = n * 10 + (c - '0');
                return n;
            }
            "#,
            "472",
        );
        assert_eq!(out.exit_code, 472);
    }

    #[test]
    fn block_counts_match_loop_iterations() {
        let out = run_ok(
            r#"
            int main(void) {
                int i, s = 0;
                for (i = 0; i < 10; i++) s += i;
                return s;
            }
            "#,
        );
        let blocks = &out.profile.block_counts[0];
        // Header runs 11 times, body 10.
        assert!(blocks.contains(&11), "blocks: {blocks:?}");
        assert!(blocks.contains(&10), "blocks: {blocks:?}");
    }

    #[test]
    fn branch_counts_record_directions() {
        let out = run_ok(
            r#"
            int main(void) {
                int i, evens = 0;
                for (i = 0; i < 10; i++) if (i % 2 == 0) evens++;
                return evens;
            }
            "#,
        );
        assert_eq!(out.exit_code, 5);
        // Two branches: the for condition (10 true, 1 false) and the if
        // (5 true, 5 false).
        let counts = &out.profile.branch_counts;
        assert!(counts.contains(&(10, 1)), "{counts:?}");
        assert!(counts.contains(&(5, 5)), "{counts:?}");
    }

    #[test]
    fn call_site_counts() {
        let out = run_ok(
            r#"
            int f(int x) { return x; }
            int main(void) {
                int i, s = 0;
                for (i = 0; i < 3; i++) s += f(i);  /* site 1: 3 times */
                s += f(100);                        /* site 2: once */
                return s;
            }
            "#,
        );
        let mut sites: Vec<u64> = out.profile.call_site_counts.clone();
        sites.sort();
        assert_eq!(sites, vec![1, 3]);
        assert_eq!(out.profile.func_counts[0], 4);
    }

    #[test]
    fn exit_unwinds_with_code() {
        let out = run_ok(
            r#"
            void die(void) { exit(3); }
            int main(void) { die(); return 0; }
            "#,
        );
        assert_eq!(out.exit_code, 3);
    }

    #[test]
    fn abort_is_an_error() {
        let p = program("int main(void) { abort(); return 0; }");
        assert_eq!(
            run(&p, &RunConfig::default()).unwrap_err(),
            RuntimeError::Aborted
        );
    }

    #[test]
    fn null_deref_is_caught() {
        let p = program("int main(void) { int *p = 0; return *p; }");
        assert_eq!(
            run(&p, &RunConfig::default()).unwrap_err(),
            RuntimeError::NullDeref
        );
    }

    #[test]
    fn div_by_zero_is_caught() {
        let p = program("int main(void) { int z = 0; return 1 / z; }");
        assert_eq!(
            run(&p, &RunConfig::default()).unwrap_err(),
            RuntimeError::DivByZero
        );
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let p = program("int main(void) { while (1) { } return 0; }");
        let cfg = RunConfig {
            max_steps: 10_000,
            ..RunConfig::default()
        };
        assert!(matches!(
            run(&p, &cfg).unwrap_err(),
            RuntimeError::StepLimit { .. }
        ));
    }

    #[test]
    fn stack_overflow_is_caught() {
        let p = program("int f(int n) { return f(n + 1); } int main(void) { return f(0); }");
        let cfg = RunConfig {
            max_call_depth: 100,
            ..RunConfig::default()
        };
        assert!(matches!(
            run(&p, &cfg).unwrap_err(),
            RuntimeError::StackOverflow { .. }
        ));
    }

    #[test]
    fn struct_assignment_copies_words() {
        let out = run_ok(
            r#"
            struct v { int x; int y; int z; };
            int main(void) {
                struct v a, b;
                a.x = 1; a.y = 2; a.z = 3;
                b = a;
                a.x = 99;
                return b.x + b.y + b.z;
            }
            "#,
        );
        assert_eq!(out.exit_code, 6);
    }

    #[test]
    fn struct_by_value_parameter() {
        let out = run_ok(
            r#"
            struct v { int x; int y; };
            int sum(struct v p) { p.x += 100; return p.x + p.y; }
            int main(void) {
                struct v a;
                int r;
                a.x = 1; a.y = 2;
                r = sum(a);
                return r * 1000 + a.x;  /* a.x unchanged */
            }
            "#,
        );
        assert_eq!(out.exit_code, 103_001);
    }

    #[test]
    fn sprintf_formats_into_buffer() {
        let out = run_ok(
            r#"
            int main(void) {
                char buf[64];
                sprintf(buf, "x=%d s=%s", 5, "ok");
                puts(buf);
                return 0;
            }
            "#,
        );
        assert_eq!(out.stdout(), "x=5 s=ok\n");
    }

    #[test]
    fn rand_is_deterministic() {
        let src = r#"
            int main(void) {
                srand(42);
                int a = rand() % 1000;
                int b = rand() % 1000;
                printf("%d %d\n", a, b);
                return 0;
            }
        "#;
        let a = run_ok(src).stdout();
        let b = run_ok(src).stdout();
        assert_eq!(a, b);
    }

    #[test]
    fn local_array_initializers() {
        let out = run_ok(
            r#"
            int main(void) {
                int a[5] = {1, 2, 3};
                char s[] = "hi";
                return a[0] + a[1] + a[2] + a[3] + a[4] + s[0];
            }
            "#,
        );
        assert_eq!(out.exit_code, 6 + 104);
    }

    #[test]
    fn global_grid_indexing() {
        let out = run_ok(
            r#"
            int grid[12];
            int at(int r, int c) { return grid[r * 4 + c]; }
            int main(void) {
                int r, c;
                for (r = 0; r < 3; r++)
                    for (c = 0; c < 4; c++)
                        grid[r * 4 + c] = r * 10 + c;
                return at(2, 3);
            }
            "#,
        );
        assert_eq!(out.exit_code, 23);
    }

    #[test]
    fn cost_accrues_to_the_executing_function() {
        let out = run_ok(
            r#"
            int hot(void) { int i, s = 0; for (i = 0; i < 1000; i++) s += i; return s; }
            int cold(void) { return 1; }
            int main(void) { hot(); cold(); return 0; }
            "#,
        );
        let hot = out.profile.func_cost[0];
        let cold = out.profile.func_cost[1];
        assert!(hot > 50 * cold, "hot={hot} cold={cold}");
    }

    #[test]
    fn memcpy_and_memset() {
        let out = run_ok(
            r#"
            int main(void) {
                int a[4], b[4];
                memset(a, 7, 4);
                memcpy(b, a, 4);
                return b[0] + b[3];
            }
            "#,
        );
        assert_eq!(out.exit_code, 14);
    }

    #[test]
    fn edge_counts_follow_control_flow() {
        let out = run_ok(
            r#"
            int main(void) {
                int i;
                for (i = 0; i < 7; i++) { }
                return 0;
            }
            "#,
        );
        // Some edge must have been traversed 7 times (the back edge).
        assert!(out.profile.edge_counts.values().any(|&c| c == 7));
    }
}
