//! The instrumenting CFG interpreter.
//!
//! This is the reproduction's substitute for the paper's instrumented
//! native binaries: it executes a [`flowgraph::Program`] directly on its
//! CFGs, counting basic blocks, edges, branch directions, call sites,
//! and function invocations — exactly the quantities the paper's
//! profiling runs collected. An abstract cost model (one unit per
//! expression node evaluated, plus block and call overheads) stands in
//! for wall-clock time in the Figure 10 selective-optimization
//! experiment.
//!
//! Memory is word-addressed: address 0 is NULL, static data and the
//! heap live at low addresses, and the stack lives above
//! [`STACK_BASE`]. Every scalar occupies one word.

use crate::profile::Profile;
use crate::reuse::{MemTap, NoTap, ObjectMap, ReuseCollector, ReuseTrace};
use flowgraph::{BlockId, Cfg, Instr, Program, Terminator};
use minic::ast::{BinOp, Expr, ExprKind, UnOp};
use minic::builtins::Builtin;
use minic::sema::{CalleeKind, FuncId, InitWord, Resolution};
use minic::types::Type;
use std::error::Error;
use std::fmt;

/// First address of the stack region.
pub const STACK_BASE: u64 = 1 << 40;

/// Cost units charged per function call (on top of per-expression units).
pub const CALL_COST: u64 = 4;

/// A runtime value: one machine word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer / char word.
    Int(i64),
    /// Floating word.
    Float(f64),
    /// Pointer word (0 = NULL).
    Ptr(u64),
    /// Function pointer.
    Fn(FuncId),
}

impl Value {
    /// C truthiness.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
            Value::Ptr(p) => p != 0,
            Value::Fn(_) => true,
        }
    }

    /// The value as an integer word (C integer conversion).
    pub fn to_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i64,
            Value::Ptr(p) => p as i64,
            Value::Fn(f) => f.0 as i64,
        }
    }

    /// The value as a float (C floating conversion).
    pub fn to_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
            Value::Ptr(p) => p as f64,
            Value::Fn(f) => f.0 as f64,
        }
    }

    /// The value as a pointer word (function values decay to NULL).
    pub fn to_ptr(self) -> u64 {
        match self {
            Value::Ptr(p) => p,
            Value::Int(v) => v as u64,
            Value::Float(v) => v as u64,
            Value::Fn(_) => 0,
        }
    }
}

/// Errors the interpreter can report.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Load or store through a NULL pointer.
    NullDeref,
    /// Address outside any allocated region.
    OutOfBounds {
        /// The offending address.
        addr: u64,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// The configured step budget was exhausted.
    StepLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// Call depth exceeded the configured maximum.
    StackOverflow {
        /// The depth limit.
        limit: usize,
    },
    /// An indirect call reached a value that is not a function.
    NotAFunction,
    /// A call reached a function with no body.
    Undefined {
        /// The function's name.
        name: String,
    },
    /// The program called `abort()`.
    Aborted,
    /// The program has no `main` function.
    NoMain,
    /// Anything else (bad builtin arguments, etc.).
    Other(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NullDeref => write!(f, "null pointer dereference"),
            RuntimeError::OutOfBounds { addr } => write!(f, "wild address {addr:#x}"),
            RuntimeError::DivByZero => write!(f, "integer division by zero"),
            RuntimeError::StepLimit { limit } => write!(f, "exceeded step limit {limit}"),
            RuntimeError::StackOverflow { limit } => {
                write!(f, "call depth exceeded {limit}")
            }
            RuntimeError::NotAFunction => write!(f, "indirect call through a non-function"),
            RuntimeError::Undefined { name } => {
                write!(f, "call to undefined function `{name}`")
            }
            RuntimeError::Aborted => write!(f, "program called abort()"),
            RuntimeError::NoMain => write!(f, "program has no `main` function"),
            RuntimeError::Other(msg) => f.write_str(msg),
        }
    }
}

impl Error for RuntimeError {}

/// Run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Bytes served to `getchar()`.
    pub input: Vec<u8>,
    /// Abort the run after this many evaluation steps.
    pub max_steps: u64,
    /// Maximum MiniC call depth.
    pub max_call_depth: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            input: Vec::new(),
            max_steps: 400_000_000,
            max_call_depth: 50_000,
        }
    }
}

impl RunConfig {
    /// A config serving the given input bytes with default limits.
    pub fn with_input(input: impl Into<Vec<u8>>) -> Self {
        RunConfig {
            input: input.into(),
            ..RunConfig::default()
        }
    }
}

/// The result of a successful (or `exit()`ed) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// `main`'s return value or the `exit()` status.
    pub exit_code: i64,
    /// The collected profile.
    pub profile: Profile,
    /// Everything the program printed.
    pub output: Vec<u8>,
    /// Evaluation steps consumed.
    pub steps: u64,
}

impl RunOutcome {
    /// The program output as UTF-8 (lossy).
    pub fn stdout(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

/// Runs `main` by walking the CFG/AST directly and collects a profile.
///
/// This is the original tree-walking interpreter, retained as the
/// differential-testing oracle for the bytecode VM behind
/// [`crate::run`] — exactly as `linsolve`'s dense solver is the oracle
/// for the sparse one. The two must agree on exit code, output,
/// steps, and the full [`Profile`]; `tests/properties.rs` enforces
/// this on random programs.
///
/// # Errors
///
/// Returns a [`RuntimeError`] on any dynamic error (null dereference,
/// step-limit exhaustion, `abort()`, missing `main`, …).
///
/// # Examples
///
/// ```
/// use profiler::{run_ast, RunConfig};
///
/// let module = minic::compile(r#"
///     int main(void) {
///         int i, s = 0;
///         for (i = 0; i < 10; i++) s += i;
///         printf("%d\n", s);
///         return 0;
///     }
/// "#).unwrap();
/// let program = flowgraph::build_program(&module);
/// let out = run_ast(&program, &RunConfig::default()).unwrap();
/// assert_eq!(out.stdout(), "45\n");
/// assert_eq!(out.exit_code, 0);
/// ```
pub fn run_ast(program: &Program, config: &RunConfig) -> Result<RunOutcome, RuntimeError> {
    on_interp_thread(program, config, NoTap).map(|(out, _)| out)
}

/// [`run_ast`] with exact reuse-distance tracing: the walker's
/// `load`/`store` feed every successful *data-segment* access (never
/// the locals stack) into a [`ReuseCollector`] partitioned by the
/// module's global layout. The differential oracle for the bytecode
/// VM's `run_traced` — both must produce bit-identical traces.
///
/// # Errors
///
/// Returns the same [`RuntimeError`]s as [`run_ast`].
pub fn run_ast_traced(
    program: &Program,
    config: &RunConfig,
) -> Result<(RunOutcome, ReuseTrace), RuntimeError> {
    let tap = ReuseCollector::new(ObjectMap::for_module(&program.module));
    on_interp_thread(program, config, tap).map(|(out, tap)| (out, tap.finish()))
}

/// Runs on a dedicated roomy-stack thread (deep MiniC recursion nests
/// Rust stack frames) and hands the tap back with the outcome.
fn on_interp_thread<T: MemTap + Send>(
    program: &Program,
    config: &RunConfig,
    tap: T,
) -> Result<(RunOutcome, T), RuntimeError> {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("minic-interp".into())
            .stack_size(512 << 20)
            .spawn_scoped(scope, || run_on_this_thread(program, config, tap))
            .expect("spawning the interpreter thread")
            .join()
            .expect("interpreter thread panicked")
    })
}

fn run_on_this_thread<T: MemTap>(
    program: &Program,
    config: &RunConfig,
    tap: T,
) -> Result<(RunOutcome, T), RuntimeError> {
    let main = program
        .module
        .function_id("main")
        .ok_or(RuntimeError::NoMain)?;
    let mut interp = Interp::new(program, config, tap);
    interp.load_statics();
    let result = interp.call_function(main, Vec::new());
    let exit_code = match result {
        Ok(v) => v.to_int(),
        Err(Abort::Exit(code)) => code,
        Err(Abort::Error(e)) => return Err(e),
    };
    Ok((
        RunOutcome {
            exit_code,
            profile: interp.profile,
            output: interp.output,
            steps: interp.steps,
        },
        interp.tap,
    ))
}

/// A compact classification of an expression's type, precomputed per
/// AST node so the hot evaluation loop never touches a `HashMap` or
/// clones a `Type`. Shared with the bytecode compiler, which uses the
/// same classification to pick type-specialized opcodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct NodeTy {
    pub(crate) class: TyClass,
    /// Element size in words for pointer-like types (1 otherwise).
    pub(crate) elem: u32,
    /// Total size in words (aggregates; 1 for scalars).
    pub(crate) size: u32,
}

/// Storage class of a slot, driving value conversion on store. Public
/// so the optimizer crate can interpret typed bytecode operands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TyClass {
    /// Integer / char word.
    Int,
    /// Floating word.
    Float,
    /// Data pointer word.
    Ptr,
    /// Function pointer word.
    FnPtr,
    /// Aggregate (struct / array) — handled by address, never converted.
    Agg,
    /// `void` and friends — never stored.
    Other,
}

impl NodeTy {
    pub(crate) const DEFAULT: NodeTy = NodeTy {
        class: TyClass::Int,
        elem: 1,
        size: 1,
    };

    pub(crate) fn of(ty: &Type, structs: &minic::types::StructLayouts) -> NodeTy {
        match ty {
            Type::Int | Type::Char => NodeTy::DEFAULT,
            Type::Float => NodeTy {
                class: TyClass::Float,
                elem: 1,
                size: 1,
            },
            Type::Ptr(inner) => NodeTy {
                class: TyClass::Ptr,
                elem: match &**inner {
                    Type::Void => 1,
                    t => t.size_words(structs) as u32,
                },
                size: 1,
            },
            Type::FnPtr(_) => NodeTy {
                class: TyClass::FnPtr,
                elem: 1,
                size: 1,
            },
            Type::Array(elem, n) => NodeTy {
                class: TyClass::Agg,
                elem: elem.size_words(structs) as u32,
                size: (elem.size_words(structs) * n) as u32,
            },
            Type::Struct(id) => NodeTy {
                class: TyClass::Agg,
                elem: 1,
                size: structs.layout(*id).size as u32,
            },
            Type::Void => NodeTy {
                class: TyClass::Other,
                elem: 1,
                size: 1,
            },
        }
    }

    pub(crate) fn is_ptr_like(self) -> bool {
        matches!(self.class, TyClass::Ptr | TyClass::Agg)
    }
}

/// Dense per-node lookup tables.
///
/// `NodeId`s are namespaced per declaration in `DECL_ID_STRIDE`-sized
/// chunks (so an unchanged decl reparses to identical ids), which
/// makes the raw id space sparse: a 16-function program's ids reach
/// `16 << 20`. The tables therefore index through a per-decl
/// `base`/`span` compression — slot `base[decl] + (id & mask)` — so
/// storage stays proportional to the number of nodes, not the id
/// range, while lookups remain two array reads.
pub(crate) struct NodeTables {
    /// Per-decl base offset into the dense tables.
    base: Vec<u32>,
    /// Per-decl slot count (max keyed in-decl offset + 1).
    span: Vec<u32>,
    ty: Vec<NodeTy>,
    resolution: Vec<Option<Resolution>>,
    call_site: Vec<u32>,
    branch: Vec<u32>,
    str_idx: Vec<u32>,
    member_off: Vec<u32>,
    sizeof_val: Vec<i64>,
}

pub(crate) const NONE32: u32 = u32::MAX;

const DECL_SHIFT: u32 = minic::ast::DECL_ID_STRIDE.trailing_zeros();
const DECL_MASK: u32 = minic::ast::DECL_ID_STRIDE - 1;

impl NodeTables {
    pub(crate) fn build(program: &Program) -> Self {
        let side = &program.module.side;
        let structs = &program.module.structs;

        // Member offsets need the base expression's struct type; the
        // walk is collected up front so these ids count toward spans.
        let mut member_offs: Vec<(minic::ast::NodeId, u32)> = Vec::new();
        for cfg in program.cfgs.iter().flatten() {
            cfg.walk_exprs(&mut |_, e| {
                if let ExprKind::Member(base, field, arrow) = &e.kind {
                    let Some(bt) = side.expr_types.get(&base.id) else {
                        return;
                    };
                    let sid = if *arrow {
                        match bt.pointee() {
                            Some(Type::Struct(s)) => *s,
                            _ => return,
                        }
                    } else {
                        match bt {
                            Type::Struct(s) => *s,
                            _ => return,
                        }
                    };
                    if let Some(f) = structs.layout(sid).field(field) {
                        member_offs.push((e.id, f.offset as u32));
                    }
                }
            });
        }

        let mut span: Vec<u32> = Vec::new();
        for n in side
            .expr_types
            .keys()
            .chain(side.resolutions.keys())
            .chain(side.call_site_of.keys())
            .chain(side.branch_of.keys())
            .chain(side.str_of.keys())
            .chain(side.const_values.keys())
            .chain(member_offs.iter().map(|(n, _)| n))
        {
            let d = (n.0 >> DECL_SHIFT) as usize;
            if d >= span.len() {
                span.resize(d + 1, 0);
            }
            span[d] = span[d].max((n.0 & DECL_MASK) + 1);
        }
        let mut base = Vec::with_capacity(span.len());
        let mut total = 0u32;
        for &s in &span {
            base.push(total);
            total += s;
        }
        let slots = total as usize;

        let mut t = NodeTables {
            base,
            span,
            ty: vec![NodeTy::DEFAULT; slots],
            resolution: vec![None; slots],
            call_site: vec![NONE32; slots],
            branch: vec![NONE32; slots],
            str_idx: vec![NONE32; slots],
            member_off: vec![NONE32; slots],
            sizeof_val: vec![0; slots],
        };
        for (n, ty) in &side.expr_types {
            let i = t.slot(*n).expect("keyed id is in span");
            t.ty[i] = NodeTy::of(ty, structs);
        }
        for (n, r) in &side.resolutions {
            let i = t.slot(*n).expect("keyed id is in span");
            t.resolution[i] = Some(*r);
        }
        for (n, s) in &side.call_site_of {
            let i = t.slot(*n).expect("keyed id is in span");
            t.call_site[i] = s.0;
        }
        for (n, b) in &side.branch_of {
            let i = t.slot(*n).expect("keyed id is in span");
            t.branch[i] = b.0;
        }
        for (n, s) in &side.str_of {
            let i = t.slot(*n).expect("keyed id is in span");
            t.str_idx[i] = *s as u32;
        }
        for (n, v) in &side.const_values {
            if let Some(i64v) = v.as_int() {
                let i = t.slot(*n).expect("keyed id is in span");
                t.sizeof_val[i] = i64v;
            }
        }
        for &(n, off) in &member_offs {
            let i = t.slot(n).expect("keyed id is in span");
            t.member_off[i] = off;
        }
        t
    }

    /// Compressed slot for `n`, or `None` for an id no table keys —
    /// accessors then return the same sentinel a dense table would
    /// have held.
    #[inline]
    fn slot(&self, n: minic::ast::NodeId) -> Option<usize> {
        let d = (n.0 >> DECL_SHIFT) as usize;
        let off = n.0 & DECL_MASK;
        if off < *self.span.get(d)? {
            Some(self.base[d] as usize + off as usize)
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn ty(&self, n: minic::ast::NodeId) -> NodeTy {
        self.slot(n).map_or(NodeTy::DEFAULT, |i| self.ty[i])
    }

    #[inline]
    pub(crate) fn resolution(&self, n: minic::ast::NodeId) -> Option<Resolution> {
        self.slot(n).and_then(|i| self.resolution[i])
    }

    #[inline]
    pub(crate) fn call_site(&self, n: minic::ast::NodeId) -> u32 {
        self.slot(n).map_or(NONE32, |i| self.call_site[i])
    }

    #[inline]
    pub(crate) fn branch(&self, n: minic::ast::NodeId) -> u32 {
        self.slot(n).map_or(NONE32, |i| self.branch[i])
    }

    #[inline]
    pub(crate) fn str_idx(&self, n: minic::ast::NodeId) -> u32 {
        self.slot(n).map_or(NONE32, |i| self.str_idx[i])
    }

    #[inline]
    pub(crate) fn member_off(&self, n: minic::ast::NodeId) -> u32 {
        self.slot(n).map_or(NONE32, |i| self.member_off[i])
    }

    #[inline]
    pub(crate) fn sizeof_val(&self, n: minic::ast::NodeId) -> i64 {
        self.slot(n).map_or(0, |i| self.sizeof_val[i])
    }
}

/// Non-local control flow out of `eval`.
enum Abort {
    Exit(i64),
    Error(RuntimeError),
}

impl From<RuntimeError> for Abort {
    fn from(e: RuntimeError) -> Self {
        Abort::Error(e)
    }
}

type VResult = Result<Value, Abort>;

struct Interp<'p, T: MemTap> {
    /// Reuse-trace tap: [`NoTap`] in normal runs (every `T::ACTIVE`
    /// check monomorphizes away), a [`ReuseCollector`] under
    /// [`run_ast_traced`]. Fires on successful data-segment accesses
    /// only, mirroring the bytecode VM's tap placement exactly.
    tap: T,
    program: &'p Program,
    tables: NodeTables,
    data: Vec<Value>,
    stack: Vec<Value>,
    global_addr: Vec<u64>,
    str_addr: Vec<u64>,
    profile: Profile,
    output: Vec<u8>,
    input: &'p [u8],
    input_pos: usize,
    steps: u64,
    max_steps: u64,
    depth: usize,
    max_depth: usize,
    rng: u64,
    cur_fn: FuncId,
    fp: usize,
}

impl<'p, T: MemTap> Interp<'p, T> {
    fn new(program: &'p Program, config: &'p RunConfig, tap: T) -> Self {
        Interp {
            tap,
            program,
            tables: NodeTables::build(program),
            data: Vec::new(),
            stack: Vec::new(),
            global_addr: Vec::new(),
            str_addr: Vec::new(),
            profile: Profile::for_program(program),
            output: Vec::new(),
            input: &config.input,
            input_pos: 0,
            steps: 0,
            max_steps: config.max_steps,
            depth: 0,
            max_depth: config.max_call_depth,
            rng: 0x2545F4914F6CDD1D,
            cur_fn: FuncId(0),
            fp: 0,
        }
    }

    // ----- memory -----

    fn alloc_static(&mut self, words: usize) -> u64 {
        let addr = self.data.len() as u64 + 1;
        self.data.extend(std::iter::repeat_n(Value::Int(0), words));
        addr
    }

    fn load(&mut self, addr: u64) -> Result<Value, RuntimeError> {
        if addr == 0 {
            return Err(RuntimeError::NullDeref);
        }
        if addr >= STACK_BASE {
            let i = (addr - STACK_BASE) as usize;
            self.stack
                .get(i)
                .copied()
                .ok_or(RuntimeError::OutOfBounds { addr })
        } else {
            let i = (addr - 1) as usize;
            let v = self
                .data
                .get(i)
                .copied()
                .ok_or(RuntimeError::OutOfBounds { addr })?;
            if T::ACTIVE {
                self.tap.access(addr);
            }
            Ok(v)
        }
    }

    fn store(&mut self, addr: u64, v: Value) -> Result<(), RuntimeError> {
        if addr == 0 {
            return Err(RuntimeError::NullDeref);
        }
        if addr >= STACK_BASE {
            let i = (addr - STACK_BASE) as usize;
            match self.stack.get_mut(i) {
                Some(slot) => {
                    *slot = v;
                    Ok(())
                }
                None => Err(RuntimeError::OutOfBounds { addr }),
            }
        } else {
            let i = (addr - 1) as usize;
            match self.data.get_mut(i) {
                Some(slot) => {
                    *slot = v;
                    if T::ACTIVE {
                        self.tap.access(addr);
                    }
                    Ok(())
                }
                None => Err(RuntimeError::OutOfBounds { addr }),
            }
        }
    }

    fn copy_words(&mut self, dst: u64, src: u64, n: usize) -> Result<(), RuntimeError> {
        for i in 0..n as u64 {
            let v = self.load(src + i)?;
            self.store(dst + i, v)?;
        }
        Ok(())
    }

    fn load_statics(&mut self) {
        // Globals first, then string literals, then the heap grows.
        let module = &self.program.module;
        for g in &module.globals {
            let addr = self.alloc_static(g.size);
            self.global_addr.push(addr);
        }
        for s in &module.strings {
            let addr = self.alloc_static(s.len() + 1);
            for (i, b) in s.bytes().enumerate() {
                self.data[(addr - 1) as usize + i] = Value::Int(b as i64);
            }
            self.str_addr.push(addr);
        }
        // Resolve initializer words (done after all addresses exist).
        for g in &module.globals {
            let base = self.global_addr[g.id.0 as usize];
            for (i, w) in g.init.iter().enumerate() {
                let v = match *w {
                    InitWord::Int(x) => Value::Int(x),
                    InitWord::Float(x) => Value::Float(x),
                    InitWord::StrPtr(idx) => Value::Ptr(self.str_addr[idx]),
                    InitWord::Fn(fid) => Value::Fn(fid),
                    InitWord::GlobalAddr(gid) => Value::Ptr(self.global_addr[gid.0 as usize]),
                };
                self.data[(base - 1) as usize + i] = v;
            }
        }
    }

    // ----- type helpers -----

    #[inline]
    fn nty(&self, e: &Expr) -> NodeTy {
        self.tables.ty(e.id)
    }

    fn is_aggregate(ty: &Type) -> bool {
        matches!(ty, Type::Struct(_) | Type::Array(_, _))
    }

    // ----- execution -----

    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        self.profile.func_cost[self.cur_fn.0 as usize] += 1;
        if self.steps > self.max_steps {
            return Err(RuntimeError::StepLimit {
                limit: self.max_steps,
            });
        }
        Ok(())
    }

    fn call_function(&mut self, fid: FuncId, args: Vec<Value>) -> VResult {
        let func = self.program.module.function(fid);
        let Some(cfg) = self.program.cfg_opt(fid) else {
            return Err(RuntimeError::Undefined {
                name: func.name.clone(),
            }
            .into());
        };
        if self.depth >= self.max_depth {
            return Err(RuntimeError::StackOverflow {
                limit: self.max_depth,
            }
            .into());
        }
        self.depth += 1;
        let saved_fn = self.cur_fn;
        let saved_fp = self.fp;
        self.cur_fn = fid;
        self.fp = self.stack.len();
        self.stack
            .extend(std::iter::repeat_n(Value::Int(0), func.frame_size));
        self.profile.func_counts[fid.0 as usize] += 1;
        self.profile.func_cost[fid.0 as usize] += CALL_COST;

        // Bind parameters (structs are copied by value).
        for (i, arg) in args.into_iter().enumerate().take(func.param_count) {
            let local = &func.locals[i];
            let addr = STACK_BASE + (self.fp + local.offset) as u64;
            if Self::is_aggregate(&local.ty) {
                let n = local.size;
                let src = arg.to_ptr();
                self.copy_words(addr, src, n)?;
            } else {
                let v = convert_for_store(&local.ty, arg);
                self.store(addr, v)?;
            }
        }

        let result = self.run_cfg(cfg);

        self.stack.truncate(self.fp);
        self.fp = saved_fp;
        self.cur_fn = saved_fn;
        self.depth -= 1;
        result
    }

    fn run_cfg(&mut self, cfg: &Cfg) -> VResult {
        let fidx = cfg.func.0 as usize;
        let mut prev: Option<BlockId> = None;
        let mut cur = cfg.entry;
        loop {
            self.tick()?;
            self.profile.block_counts[fidx][cur.0 as usize] += 1;
            if let Some(p) = prev {
                *self
                    .profile
                    .edge_counts
                    .entry((cfg.func, p, cur))
                    .or_insert(0) += 1;
            }
            let block = cfg.block(cur);
            for instr in &block.instrs {
                self.exec_instr(instr)?;
            }
            let next = match &block.term {
                Terminator::Goto(t) => *t,
                Terminator::Branch {
                    cond,
                    branch,
                    then_blk,
                    else_blk,
                } => {
                    let taken = self.eval(cond)?.truthy();
                    if let Some(b) = branch {
                        let slot = &mut self.profile.branch_counts[b.0 as usize];
                        if taken {
                            slot.0 += 1;
                        } else {
                            slot.1 += 1;
                        }
                    }
                    if taken {
                        *then_blk
                    } else {
                        *else_blk
                    }
                }
                Terminator::Switch {
                    scrut,
                    cases,
                    default,
                    ..
                } => {
                    let v = self.eval(scrut)?.to_int();
                    cases
                        .iter()
                        .find(|&&(c, _)| c == v)
                        .map(|&(_, t)| t)
                        .unwrap_or(*default)
                }
                Terminator::Return(e) => {
                    return match e {
                        Some(e) => self.eval(e),
                        None => Ok(Value::Int(0)),
                    };
                }
            };
            prev = Some(cur);
            cur = next;
        }
    }

    fn exec_instr(&mut self, instr: &Instr) -> Result<(), Abort> {
        match instr {
            Instr::Eval(e) => {
                self.eval(e)?;
            }
            Instr::Init {
                local,
                word,
                ty,
                value,
            } => {
                let v = self.eval(value)?;
                let func = self.program.module.function(self.cur_fn);
                let base = STACK_BASE + (self.fp + func.locals[local.0 as usize].offset) as u64;
                if Self::is_aggregate(ty) {
                    let n = ty.size_words(&self.program.module.structs);
                    self.copy_words(base + *word as u64, v.to_ptr(), n)?;
                } else {
                    let v = convert_for_store(ty, v);
                    self.store(base + *word as u64, v)?;
                }
            }
            Instr::InitStr {
                local,
                word,
                str_idx,
                pad_to,
            } => {
                let func = self.program.module.function(self.cur_fn);
                let base =
                    STACK_BASE + (self.fp + func.locals[local.0 as usize].offset + word) as u64;
                let s: &str = &self.program.module.strings[*str_idx];
                for (i, b) in s.bytes().enumerate() {
                    self.store(base + i as u64, Value::Int(b as i64))?;
                }
                for i in s.len()..*pad_to {
                    self.store(base + i as u64, Value::Int(0))?;
                }
            }
            Instr::InitZero { local, word, len } => {
                let func = self.program.module.function(self.cur_fn);
                let base =
                    STACK_BASE + (self.fp + func.locals[local.0 as usize].offset + word) as u64;
                for i in 0..*len as u64 {
                    self.store(base + i, Value::Int(0))?;
                }
            }
        }
        Ok(())
    }

    /// The address of an lvalue expression.
    fn place(&mut self, e: &Expr) -> Result<u64, Abort> {
        self.tick()?;
        match &e.kind {
            ExprKind::Ident(_) => {
                match self
                    .tables
                    .resolution(e.id)
                    .expect("sema resolved every name")
                {
                    Resolution::Local(lid) => {
                        let func = self.program.module.function(self.cur_fn);
                        Ok(STACK_BASE + (self.fp + func.locals[lid.0 as usize].offset) as u64)
                    }
                    Resolution::Global(gid) => Ok(self.global_addr[gid.0 as usize]),
                    Resolution::Func(_) | Resolution::Builtin(_) | Resolution::EnumConst(_) => {
                        Err(RuntimeError::Other("constant is not an lvalue".into()).into())
                    }
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let v = self.eval(inner)?;
                Ok(v.to_ptr())
            }
            ExprKind::Index(base, idx) => {
                let bt = self.nty(base);
                let addr = if bt.class == TyClass::Agg {
                    self.place(base)?
                } else {
                    self.eval(base)?.to_ptr()
                };
                let i = self.eval(idx)?.to_int();
                Ok(addr.wrapping_add_signed(i.wrapping_mul(bt.elem as i64)))
            }
            ExprKind::Member(base, _, arrow) => {
                let offset = self.tables.member_off(e.id);
                if offset == NONE32 {
                    return Err(RuntimeError::Other("member on non-struct".into()).into());
                }
                let addr = if *arrow {
                    self.eval(base)?.to_ptr()
                } else {
                    self.place(base)?
                };
                if addr == 0 {
                    return Err(RuntimeError::NullDeref.into());
                }
                Ok(addr + offset as u64)
            }
            ExprKind::Cast(_, inner) => self.place(inner),
            _ => Err(RuntimeError::Other(format!(
                "expression is not an lvalue: {:?}",
                std::mem::discriminant(&e.kind)
            ))
            .into()),
        }
    }

    /// Loads from a place, or returns the address for aggregates.
    fn load_from(&mut self, e: &Expr, addr: u64) -> VResult {
        if self.nty(e).class == TyClass::Agg {
            Ok(Value::Ptr(addr))
        } else {
            Ok(self.load(addr)?)
        }
    }

    fn eval(&mut self, e: &Expr) -> VResult {
        self.tick()?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::FloatLit(v) => Ok(Value::Float(*v)),
            ExprKind::StrLit(_) => {
                let idx = self.tables.str_idx(e.id);
                Ok(Value::Ptr(self.str_addr[idx as usize]))
            }
            ExprKind::Ident(_) => {
                match self
                    .tables
                    .resolution(e.id)
                    .expect("sema resolved every name")
                {
                    Resolution::Func(fid) => Ok(Value::Fn(fid)),
                    Resolution::EnumConst(v) => Ok(Value::Int(v)),
                    Resolution::Builtin(_) => {
                        Err(RuntimeError::Other("builtin used as a value".into()).into())
                    }
                    _ => {
                        let addr = self.place(e)?;
                        self.load_from(e, addr)
                    }
                }
            }
            ExprKind::Unary(op, inner) => self.eval_unary(e, *op, inner),
            ExprKind::Binary(op, a, b) => {
                let ta = self.nty(a);
                let tb = self.nty(b);
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                Ok(self.arith(*op, va, vb, ta, tb)?)
            }
            ExprKind::LogAnd(a, b) => {
                if !self.eval(a)?.truthy() {
                    Ok(Value::Int(0))
                } else {
                    Ok(Value::Int(self.eval(b)?.truthy() as i64))
                }
            }
            ExprKind::LogOr(a, b) => {
                if self.eval(a)?.truthy() {
                    Ok(Value::Int(1))
                } else {
                    Ok(Value::Int(self.eval(b)?.truthy() as i64))
                }
            }
            ExprKind::Assign(op, lhs, rhs) => {
                let lty = self.nty(lhs);
                let addr = self.place(lhs)?;
                let rv = self.eval(rhs)?;
                let result = match op {
                    None => {
                        if lty.class == TyClass::Agg {
                            self.copy_words(addr, rv.to_ptr(), lty.size as usize)?;
                            Value::Ptr(addr)
                        } else {
                            let v = convert_for_class(lty.class, rv);
                            self.store(addr, v)?;
                            v
                        }
                    }
                    Some(op) => {
                        let rty = self.nty(rhs);
                        let cur = self.load(addr)?;
                        let v = self.arith(*op, cur, rv, lty, rty)?;
                        let v = convert_for_class(lty.class, v);
                        self.store(addr, v)?;
                        v
                    }
                };
                Ok(result)
            }
            ExprKind::Call(callee, args) => self.eval_call(e, callee, args),
            ExprKind::Index(_, _) | ExprKind::Member(_, _, _) => {
                let addr = self.place(e)?;
                self.load_from(e, addr)
            }
            ExprKind::Cond(c, t, f) => {
                let taken = self.eval(c)?.truthy();
                let b = self.tables.branch(e.id);
                if b != NONE32 {
                    let slot = &mut self.profile.branch_counts[b as usize];
                    if taken {
                        slot.0 += 1;
                    } else {
                        slot.1 += 1;
                    }
                }
                if taken {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            ExprKind::Cast(_, inner) => {
                let v = self.eval(inner)?;
                Ok(convert_for_class(self.nty(e).class, v))
            }
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => {
                Ok(Value::Int(self.tables.sizeof_val(e.id)))
            }
            ExprKind::Comma(a, b) => {
                self.eval(a)?;
                self.eval(b)
            }
        }
    }

    fn eval_unary(&mut self, e: &Expr, op: UnOp, inner: &Expr) -> VResult {
        match op {
            UnOp::Neg => {
                let v = self.eval(inner)?;
                Ok(match v {
                    Value::Float(f) => Value::Float(-f),
                    other => Value::Int(other.to_int().wrapping_neg()),
                })
            }
            UnOp::Not => {
                let v = self.eval(inner)?;
                Ok(Value::Int(!v.truthy() as i64))
            }
            UnOp::BitNot => {
                let v = self.eval(inner)?;
                Ok(Value::Int(!v.to_int()))
            }
            UnOp::Deref => {
                let nt = self.nty(e);
                // `*f` on a function pointer is the function pointer.
                if nt.class == TyClass::FnPtr && self.nty(inner).class == TyClass::FnPtr {
                    return self.eval(inner);
                }
                let addr = self.eval(inner)?.to_ptr();
                if nt.class == TyClass::Agg {
                    Ok(Value::Ptr(addr))
                } else if addr == 0 {
                    Err(RuntimeError::NullDeref.into())
                } else {
                    Ok(self.load(addr)?)
                }
            }
            UnOp::Addr => {
                // `&f` yields the function pointer itself.
                if let ExprKind::Ident(_) = &inner.kind {
                    if let Some(Resolution::Func(fid)) =
                        self.program.module.side.resolutions.get(&inner.id)
                    {
                        return Ok(Value::Fn(*fid));
                    }
                }
                let addr = self.place(inner)?;
                Ok(Value::Ptr(addr))
            }
            UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                let nt = self.nty(inner);
                let addr = self.place(inner)?;
                let old = self.load(addr)?;
                let step = if nt.class == TyClass::Ptr {
                    nt.elem as i64
                } else {
                    1
                };
                let delta = match op {
                    UnOp::PreInc | UnOp::PostInc => step,
                    _ => -step,
                };
                let new = match old {
                    Value::Float(f) => Value::Float(f + delta as f64),
                    Value::Ptr(p) => Value::Ptr(p.wrapping_add_signed(delta)),
                    other => Value::Int(other.to_int().wrapping_add(delta)),
                };
                self.store(addr, new)?;
                Ok(match op {
                    UnOp::PostInc | UnOp::PostDec => old,
                    _ => new,
                })
            }
        }
    }

    fn arith(
        &mut self,
        op: BinOp,
        va: Value,
        vb: Value,
        ta: NodeTy,
        tb: NodeTy,
    ) -> Result<Value, RuntimeError> {
        use BinOp::*;
        let a_ptr = ta.is_ptr_like();
        let b_ptr = tb.is_ptr_like();
        if op.is_comparison() {
            let cmp = if matches!(va, Value::Float(_)) || matches!(vb, Value::Float(_)) {
                let (x, y) = (va.to_float(), vb.to_float());
                // IEEE comparison is the *specified* behaviour here (C
                // source semantics), not an ordering bug — see clippy.toml.
                #[allow(clippy::disallowed_methods)]
                x.partial_cmp(&y)
            } else {
                Some(va.to_int().cmp(&vb.to_int()))
            };
            let Some(ord) = cmp else {
                return Ok(Value::Int(0)); // NaN compares false
            };
            let r = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                Eq => ord.is_eq(),
                Ne => ord.is_ne(),
                _ => unreachable!(),
            };
            return Ok(Value::Int(r as i64));
        }
        match op {
            Add if a_ptr || b_ptr => {
                let (p, i, elem) = if a_ptr {
                    (va.to_ptr(), vb.to_int(), ta.elem as i64)
                } else {
                    (vb.to_ptr(), va.to_int(), tb.elem as i64)
                };
                Ok(Value::Ptr(p.wrapping_add_signed(i.wrapping_mul(elem))))
            }
            Sub if a_ptr && b_ptr => {
                let elem = (ta.elem as i64).max(1);
                let diff = va.to_ptr() as i64 - vb.to_ptr() as i64;
                Ok(Value::Int(diff / elem))
            }
            Sub if a_ptr => {
                let elem = ta.elem as i64;
                Ok(Value::Ptr(
                    va.to_ptr()
                        .wrapping_add_signed(-(vb.to_int().wrapping_mul(elem))),
                ))
            }
            Add | Sub | Mul | Div
                if matches!(va, Value::Float(_)) || matches!(vb, Value::Float(_)) =>
            {
                let (x, y) = (va.to_float(), vb.to_float());
                Ok(Value::Float(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => unreachable!(),
                }))
            }
            Add => Ok(Value::Int(va.to_int().wrapping_add(vb.to_int()))),
            Sub => Ok(Value::Int(va.to_int().wrapping_sub(vb.to_int()))),
            Mul => Ok(Value::Int(va.to_int().wrapping_mul(vb.to_int()))),
            Div => {
                let d = vb.to_int();
                if d == 0 {
                    return Err(RuntimeError::DivByZero);
                }
                Ok(Value::Int(va.to_int().wrapping_div(d)))
            }
            Rem => {
                let d = vb.to_int();
                if d == 0 {
                    return Err(RuntimeError::DivByZero);
                }
                Ok(Value::Int(va.to_int().wrapping_rem(d)))
            }
            Shl => Ok(Value::Int(
                va.to_int().wrapping_shl((vb.to_int() & 63) as u32),
            )),
            Shr => Ok(Value::Int(
                va.to_int().wrapping_shr((vb.to_int() & 63) as u32),
            )),
            BitAnd => Ok(Value::Int(va.to_int() & vb.to_int())),
            BitOr => Ok(Value::Int(va.to_int() | vb.to_int())),
            BitXor => Ok(Value::Int(va.to_int() ^ vb.to_int())),
            Lt | Le | Gt | Ge | Eq | Ne => unreachable!("handled above"),
        }
    }

    fn eval_call(&mut self, e: &Expr, callee: &Expr, args: &[Expr]) -> VResult {
        let site = self.tables.call_site(e.id) as usize;
        self.profile.call_site_counts[site] += 1;
        let cs = &self.program.module.side.call_sites[site];
        match cs.callee {
            CalleeKind::Direct(fid) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                self.call_function(fid, argv)
            }
            CalleeKind::Builtin(b) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                self.profile.func_cost[self.cur_fn.0 as usize] += CALL_COST;
                self.builtin(b, &argv)
            }
            CalleeKind::Indirect => {
                let f = self.eval(callee)?;
                let Value::Fn(fid) = f else {
                    return Err(RuntimeError::NotAFunction.into());
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                self.call_function(fid, argv)
            }
        }
    }

    // ----- builtins -----

    fn read_cstring(&mut self, mut addr: u64) -> Result<String, RuntimeError> {
        let mut out = String::new();
        for _ in 0..1_000_000 {
            let v = self.load(addr)?;
            let c = v.to_int();
            if c == 0 {
                return Ok(out);
            }
            out.push((c as u8) as char);
            addr += 1;
        }
        Err(RuntimeError::Other("unterminated string".into()))
    }

    fn write_cstring(&mut self, addr: u64, s: &str) -> Result<(), RuntimeError> {
        for (i, b) in s.bytes().enumerate() {
            self.store(addr + i as u64, Value::Int(b as i64))?;
        }
        self.store(addr + s.len() as u64, Value::Int(0))?;
        Ok(())
    }

    fn format(&mut self, fmt: &str, args: &[Value]) -> Result<String, RuntimeError> {
        let mut out = String::new();
        let mut chars = fmt.chars().peekable();
        let mut next = 0usize;
        let take = |next: &mut usize| -> Value {
            let v = args.get(*next).copied().unwrap_or(Value::Int(0));
            *next += 1;
            v
        };
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            // Skip flags/width/precision; honor the conversion letter.
            let mut conv = None;
            let mut _width = String::new();
            while let Some(&c2) = chars.peek() {
                if c2.is_ascii_digit() || matches!(c2, '-' | '+' | '.' | ' ' | '0' | 'l' | 'h') {
                    _width.push(c2);
                    chars.next();
                } else {
                    conv = chars.next();
                    break;
                }
            }
            match conv {
                Some('d') | Some('i') | Some('u') => {
                    out.push_str(&take(&mut next).to_int().to_string())
                }
                Some('x') => out.push_str(&format!("{:x}", take(&mut next).to_int())),
                Some('o') => out.push_str(&format!("{:o}", take(&mut next).to_int())),
                Some('c') => {
                    let v = take(&mut next).to_int();
                    out.push((v as u8) as char);
                }
                Some('s') => {
                    let p = take(&mut next).to_ptr();
                    out.push_str(&self.read_cstring(p)?);
                }
                Some('f') => out.push_str(&format!("{:.6}", take(&mut next).to_float())),
                Some('g') | Some('e') => out.push_str(&format!("{}", take(&mut next).to_float())),
                Some('%') => out.push('%'),
                Some(other) => {
                    out.push('%');
                    out.push(other);
                }
                None => out.push('%'),
            }
        }
        Ok(out)
    }

    fn builtin(&mut self, b: Builtin, args: &[Value]) -> VResult {
        let arg = |i: usize| args.get(i).copied().unwrap_or(Value::Int(0));
        Ok(match b {
            Builtin::Printf => {
                let fmt = self.read_cstring(arg(0).to_ptr())?;
                let s = self.format(&fmt, &args[1.min(args.len())..])?;
                self.output.extend_from_slice(s.as_bytes());
                Value::Int(s.len() as i64)
            }
            Builtin::Sprintf => {
                let buf = arg(0).to_ptr();
                let fmt = self.read_cstring(arg(1).to_ptr())?;
                let s = self.format(&fmt, &args[2.min(args.len())..])?;
                self.write_cstring(buf, &s)?;
                Value::Int(s.len() as i64)
            }
            Builtin::Putchar => {
                self.output.push(arg(0).to_int() as u8);
                arg(0)
            }
            Builtin::Puts => {
                let s = self.read_cstring(arg(0).to_ptr())?;
                self.output.extend_from_slice(s.as_bytes());
                self.output.push(b'\n');
                Value::Int(0)
            }
            Builtin::Getchar => {
                if self.input_pos < self.input.len() {
                    let c = self.input[self.input_pos];
                    self.input_pos += 1;
                    Value::Int(c as i64)
                } else {
                    Value::Int(-1)
                }
            }
            Builtin::Malloc => {
                let n = arg(0).to_int().max(1) as usize;
                Value::Ptr(self.alloc_static(n))
            }
            Builtin::Calloc => {
                let n = (arg(0).to_int().max(0) as usize) * (arg(1).to_int().max(1) as usize);
                Value::Ptr(self.alloc_static(n.max(1)))
            }
            Builtin::Free => Value::Int(0),
            Builtin::Memset => {
                let p = arg(0).to_ptr();
                let v = arg(1).to_int();
                let n = arg(2).to_int().max(0) as u64;
                for i in 0..n {
                    self.store(p + i, Value::Int(v))?;
                }
                Value::Ptr(p)
            }
            Builtin::Memcpy => {
                let d = arg(0).to_ptr();
                let s = arg(1).to_ptr();
                let n = arg(2).to_int().max(0) as usize;
                self.copy_words(d, s, n)?;
                Value::Ptr(d)
            }
            Builtin::Strlen => {
                let s = self.read_cstring(arg(0).to_ptr())?;
                Value::Int(s.len() as i64)
            }
            Builtin::Strcpy => {
                let d = arg(0).to_ptr();
                let s = self.read_cstring(arg(1).to_ptr())?;
                self.write_cstring(d, &s)?;
                Value::Ptr(d)
            }
            Builtin::Strncpy => {
                let d = arg(0).to_ptr();
                let s = self.read_cstring(arg(1).to_ptr())?;
                let n = arg(2).to_int().max(0) as usize;
                let truncated: String = s.chars().take(n).collect();
                for (i, ch) in truncated.bytes().enumerate() {
                    self.store(d + i as u64, Value::Int(ch as i64))?;
                }
                for i in truncated.len()..n {
                    self.store(d + i as u64, Value::Int(0))?;
                }
                Value::Ptr(d)
            }
            Builtin::Strcmp => {
                let a = self.read_cstring(arg(0).to_ptr())?;
                let b2 = self.read_cstring(arg(1).to_ptr())?;
                Value::Int(match a.cmp(&b2) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                })
            }
            Builtin::Strncmp => {
                let n = arg(2).to_int().max(0) as usize;
                let a: String = self
                    .read_cstring(arg(0).to_ptr())?
                    .chars()
                    .take(n)
                    .collect();
                let b2: String = self
                    .read_cstring(arg(1).to_ptr())?
                    .chars()
                    .take(n)
                    .collect();
                Value::Int(match a.cmp(&b2) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                })
            }
            Builtin::Strcat => {
                let d = arg(0).to_ptr();
                let a = self.read_cstring(d)?;
                let b2 = self.read_cstring(arg(1).to_ptr())?;
                self.write_cstring(d + a.len() as u64, &b2)?;
                Value::Ptr(d)
            }
            Builtin::Atoi => {
                let s = self.read_cstring(arg(0).to_ptr())?;
                Value::Int(s.trim().parse::<i64>().unwrap_or(0))
            }
            Builtin::Abs => Value::Int(arg(0).to_int().wrapping_abs()),
            Builtin::Exit => return Err(Abort::Exit(arg(0).to_int())),
            Builtin::Abort => return Err(RuntimeError::Aborted.into()),
            Builtin::Rand => {
                // xorshift64*: deterministic across runs.
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                Value::Int(((x.wrapping_mul(0x2545F4914F6CDD1D)) >> 33) as i64)
            }
            Builtin::Srand => {
                self.rng = (arg(0).to_int() as u64) | 1;
                Value::Int(0)
            }
            Builtin::Sqrt => Value::Float(arg(0).to_float().sqrt()),
            Builtin::Fabs => Value::Float(arg(0).to_float().abs()),
            Builtin::Sin => Value::Float(arg(0).to_float().sin()),
            Builtin::Cos => Value::Float(arg(0).to_float().cos()),
            Builtin::Exp => Value::Float(arg(0).to_float().exp()),
            Builtin::Log => Value::Float(arg(0).to_float().ln()),
            Builtin::Pow => Value::Float(arg(0).to_float().powf(arg(1).to_float())),
            Builtin::Floor => Value::Float(arg(0).to_float().floor()),
            Builtin::Ceil => Value::Float(arg(0).to_float().ceil()),
        })
    }
}

/// Converts a value for storage into a slot of the given class.
pub fn convert_for_class(class: TyClass, v: Value) -> Value {
    match class {
        TyClass::Int => Value::Int(v.to_int()),
        TyClass::Float => Value::Float(v.to_float()),
        TyClass::Ptr => Value::Ptr(v.to_ptr()),
        TyClass::FnPtr => match v {
            Value::Fn(f) => Value::Fn(f),
            other => Value::Ptr(other.to_ptr()),
        },
        TyClass::Agg | TyClass::Other => v,
    }
}

/// Converts a value for storage into a slot of type `ty`.
fn convert_for_store(ty: &Type, v: Value) -> Value {
    match ty {
        Type::Int | Type::Char => Value::Int(v.to_int()),
        Type::Float => Value::Float(v.to_float()),
        Type::Ptr(_) => Value::Ptr(v.to_ptr()),
        Type::FnPtr(_) => match v {
            Value::Fn(f) => Value::Fn(f),
            other => Value::Ptr(other.to_ptr()),
        },
        _ => v,
    }
}
