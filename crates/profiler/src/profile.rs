//! Execution profiles and profile aggregation.
//!
//! A [`Profile`] is what the paper's instrumented gcc produced per run:
//! basic-block counts, branch outcome counts, call-site counts, and
//! function invocation counts. §3 describes the aggregation used when
//! profiles *predict* other runs: normalize every profile to the same
//! total basic-block count, then sum.

use flowgraph::BlockId;
use minic::sema::{BranchId, CallSiteId, FuncId};
use std::collections::HashMap;

/// Dynamic counts from one program run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// `block_counts[func][block]` = times the block executed.
    pub block_counts: Vec<Vec<u64>>,
    /// `(taken, not_taken)` per registered branch site.
    pub branch_counts: Vec<(u64, u64)>,
    /// Executions of each call site (builtins included).
    pub call_site_counts: Vec<u64>,
    /// Invocations of each function.
    pub func_counts: Vec<u64>,
    /// CFG edge traversal counts.
    pub edge_counts: HashMap<(FuncId, BlockId, BlockId), u64>,
    /// Abstract cost units accumulated per function (see the cost
    /// model in [`crate::interp`]); drives the Figure 10 experiment.
    pub func_cost: Vec<u64>,
}

impl Profile {
    /// Creates an all-zero profile shaped for the given program.
    pub fn for_program(program: &flowgraph::Program) -> Self {
        let module = &program.module;
        let block_counts = program
            .cfgs
            .iter()
            .map(|c| vec![0u64; c.as_ref().map_or(0, |c| c.len())])
            .collect();
        Profile {
            block_counts,
            branch_counts: vec![(0, 0); module.side.branches.len()],
            call_site_counts: vec![0; module.side.call_sites.len()],
            func_counts: vec![0; module.functions.len()],
            edge_counts: HashMap::new(),
            func_cost: vec![0; module.functions.len()],
        }
    }

    /// Total basic-block executions across the program.
    pub fn total_block_count(&self) -> u64 {
        self.block_counts.iter().flatten().sum()
    }

    /// Total dynamic branch executions (both directions).
    pub fn total_branches(&self) -> u64 {
        self.branch_counts.iter().map(|&(t, n)| t + n).sum()
    }

    /// The block counts of one function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn blocks_of(&self, f: FuncId) -> &[u64] {
        &self.block_counts[f.0 as usize]
    }

    /// Times branch `b` was taken / not taken.
    pub fn branch(&self, b: BranchId) -> (u64, u64) {
        self.branch_counts[b.0 as usize]
    }

    /// Invocation count of `f`.
    pub fn calls_of(&self, f: FuncId) -> u64 {
        self.func_counts[f.0 as usize]
    }

    /// Execution count of call site `s`.
    pub fn site(&self, s: CallSiteId) -> u64 {
        self.call_site_counts[s.0 as usize]
    }
}

/// A profile with fractional counts: the normalized sum of several
/// [`Profile`]s (§3), used when profiles predict other inputs.
#[derive(Debug, Clone, Default)]
pub struct AggregateProfile {
    /// `block_freqs[func][block]`, normalized-and-summed.
    pub block_freqs: Vec<Vec<f64>>,
    /// `(taken, not_taken)` per branch, normalized-and-summed.
    pub branch_freqs: Vec<(f64, f64)>,
    /// Call-site frequencies.
    pub call_site_freqs: Vec<f64>,
    /// Function invocation frequencies.
    pub func_freqs: Vec<f64>,
}

/// Normalizes each profile to a common total block count and sums them.
///
/// The common scale is the mean of the totals, so aggregating a single
/// profile reproduces it exactly.
///
/// # Panics
///
/// Panics if `profiles` is empty or the profiles have different shapes.
pub fn aggregate(profiles: &[&Profile]) -> AggregateProfile {
    assert!(
        !profiles.is_empty(),
        "aggregate requires at least one profile"
    );
    let totals: Vec<f64> = profiles
        .iter()
        .map(|p| p.total_block_count() as f64)
        .collect();
    let target = totals.iter().sum::<f64>() / totals.len() as f64;
    let scales: Vec<f64> = totals
        .iter()
        .map(|&t| if t > 0.0 { target / t } else { 0.0 })
        .collect();

    let mut agg = AggregateProfile {
        block_freqs: profiles[0]
            .block_counts
            .iter()
            .map(|v| vec![0.0; v.len()])
            .collect(),
        branch_freqs: vec![(0.0, 0.0); profiles[0].branch_counts.len()],
        call_site_freqs: vec![0.0; profiles[0].call_site_counts.len()],
        func_freqs: vec![0.0; profiles[0].func_counts.len()],
    };
    for (p, &s) in profiles.iter().zip(&scales) {
        for (f, blocks) in p.block_counts.iter().enumerate() {
            assert_eq!(
                blocks.len(),
                agg.block_freqs[f].len(),
                "profile shape mismatch"
            );
            for (b, &c) in blocks.iter().enumerate() {
                agg.block_freqs[f][b] += c as f64 * s;
            }
        }
        for (i, &(t, n)) in p.branch_counts.iter().enumerate() {
            agg.branch_freqs[i].0 += t as f64 * s;
            agg.branch_freqs[i].1 += n as f64 * s;
        }
        for (i, &c) in p.call_site_counts.iter().enumerate() {
            agg.call_site_freqs[i] += c as f64 * s;
        }
        for (i, &c) in p.func_counts.iter().enumerate() {
            agg.func_freqs[i] += c as f64 * s;
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile(scale: u64) -> Profile {
        Profile {
            block_counts: vec![vec![10 * scale, 2 * scale]],
            branch_counts: vec![(8 * scale, 2 * scale)],
            call_site_counts: vec![3 * scale],
            func_counts: vec![scale],
            edge_counts: HashMap::new(),
            func_cost: vec![100 * scale],
        }
    }

    #[test]
    fn aggregate_of_one_is_identity() {
        let p = tiny_profile(1);
        let a = aggregate(&[&p]);
        assert_eq!(a.block_freqs[0], vec![10.0, 2.0]);
        assert_eq!(a.branch_freqs[0], (8.0, 2.0));
    }

    #[test]
    fn aggregate_normalizes_scale() {
        // A run 5× longer should not dominate: after normalization both
        // contribute equally, and relative shape is preserved.
        let p1 = tiny_profile(1);
        let p5 = tiny_profile(5);
        let a = aggregate(&[&p1, &p5]);
        let ratio = a.block_freqs[0][0] / a.block_freqs[0][1];
        assert!((ratio - 5.0).abs() < 1e-9);
        // Each normalized profile totals 36 blocks (mean of 12 and 60).
        let total: f64 = a.block_freqs[0].iter().sum();
        assert!((total - 72.0).abs() < 1e-9);
    }

    #[test]
    fn totals() {
        let p = tiny_profile(2);
        assert_eq!(p.total_block_count(), 24);
        assert_eq!(p.total_branches(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn aggregate_empty_panics() {
        aggregate(&[]);
    }
}
