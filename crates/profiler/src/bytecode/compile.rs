//! CFG/AST → bytecode lowering.
//!
//! One linear pass per function. The lowering mirrors the AST
//! interpreter *observably*: identical tick counts on every path,
//! identical error kinds at identical cumulative-step points, and
//! identical profile counters on success.
//!
//! ## Tick batching
//!
//! The interpreter charges one step per `eval()`/`place()` call and
//! per block iteration, checking the step limit each time. Paying two
//! memory round-trips per AST node is most of its cost, so the
//! compiler accumulates ticks in `pending` and attaches the batch as
//! a `tick` payload on the next op that ends the batching region —
//! the flush points. A flush is forced before anything whose
//! behaviour an earlier tick could gate: any fallible op (so a
//! `StepLimit` that the interpreter would hit first still wins), any
//! call or return (so `func_cost` lands on the right function), any
//! jump, and any jump target (so untaken paths never charge). Within
//! a flush region only profile counters move, and a failing run
//! discards its profile — so reordering ticks against counter bumps
//! is unobservable. Executing the payload costs zero extra dispatch;
//! a standalone `Tick` survives only on cold paths (before `Fail`,
//! at a ternary's join) where no carrier op follows.
//!
//! ## Counter fusion
//!
//! Block, edge, branch, and call-site counters live in dense arrays.
//! Edges need no "previous block" state at runtime: every jump knows
//! its (src, dst) statically, so each terminator jumps through a tiny
//! per-successor stub — a single fused `EdgeJump` that ticks, bumps
//! the edge counter *and* the target's block counter, and jumps. The
//! only other way into a block is a call, so function entry bumps
//! `FuncMeta::entry_block` directly and blocks need no counter op of
//! their own.
//!
//! ## Superinstructions
//!
//! Emission peepholes fuse the dominant op sequences into single
//! dispatches: paired local loads (`LoadLocal2`/`LoadLocalImm`),
//! operand loads folded into `Arith*`, comparisons folded into their
//! branch (`CmpBranch*` — a loop header like `i < n` becomes one op),
//! and array reads folded through `IndexAddr*` into `LoadIdx*`.
//! Two invariants make this safe:
//!
//! - **No fusion across a label.** `label_here` records every jump
//!   target (block starts, stub pcs, short-circuit joins) as a
//!   barrier; `fuse1`/`fuse2` refuse to touch ops at or before it, so
//!   a jump can never land inside a fused sequence.
//! - **Consumed operand registers are dead.** Each `eval` writes its
//!   destination before anything reads it, on every path, so when a
//!   fused op consumes its operand directly from a frame slot or
//!   immediate, skipping the architectural register write is
//!   unobservable.

use super::{ArithMode, CompiledProgram, FuncMeta, Op, ParamBind, SwitchTable, NONE32};
use crate::interp::{NodeTables, NodeTy, RuntimeError, TyClass, Value};
use flowgraph::{BlockId, Cfg, Instr, Program, Terminator};
use minic::ast::{BinOp, Expr, ExprKind, UnOp};
use minic::sema::{CalleeKind, FuncId, InitWord, Resolution};
use minic::types::Type;
use std::collections::HashMap;

/// Where an lvalue lives, as far as compile time can tell.
enum Place {
    /// Frame slot at a static word offset.
    Local(u32),
    /// Static-data slot (index into the data image).
    Data(u32),
    /// Address computed at runtime into a register (`to_ptr` applies).
    Reg(u16),
}

pub(super) fn compile(program: &Program) -> CompiledProgram {
    let module = &program.module;

    // Lay out the static data image exactly as `Interp::load_statics`
    // does: globals first, then string literals; addresses are
    // observable (the heap grows past them), so the order matters.
    let mut data_image: Vec<Value> = Vec::new();
    let mut global_addr: Vec<u64> = Vec::new();
    for g in &module.globals {
        global_addr.push(data_image.len() as u64 + 1);
        data_image.extend(std::iter::repeat_n(Value::Int(0), g.size));
    }
    let mut str_addr: Vec<u64> = Vec::new();
    for s in &module.strings {
        let addr = data_image.len() as u64 + 1;
        data_image.extend(std::iter::repeat_n(Value::Int(0), s.len() + 1));
        for (i, b) in s.bytes().enumerate() {
            data_image[(addr - 1) as usize + i] = Value::Int(b as i64);
        }
        str_addr.push(addr);
    }
    for g in &module.globals {
        let base = global_addr[g.id.0 as usize];
        for (i, w) in g.init.iter().enumerate() {
            data_image[(base - 1) as usize + i] = match *w {
                InitWord::Int(x) => Value::Int(x),
                InitWord::Float(x) => Value::Float(x),
                InitWord::StrPtr(idx) => Value::Ptr(str_addr[idx]),
                InitWord::Fn(fid) => Value::Fn(fid),
                InitWord::GlobalAddr(gid) => Value::Ptr(global_addr[gid.0 as usize]),
            };
        }
    }

    // Flat block-counter layout.
    let mut block_base = Vec::with_capacity(program.cfgs.len());
    let mut block_lens = Vec::with_capacity(program.cfgs.len());
    let mut total_blocks = 0u32;
    for c in &program.cfgs {
        block_base.push(total_blocks);
        let len = c.as_ref().map_or(0, |c| c.len() as u32);
        block_lens.push(len);
        total_blocks += len;
    }

    let mut c = Compiler {
        program,
        tables: NodeTables::build(program),
        global_addr,
        str_addr,
        block_base,
        ops: Vec::new(),
        switch_tables: Vec::new(),
        images: Vec::new(),
        fails: Vec::new(),
        edge_index: HashMap::new(),
        edge_keys: Vec::new(),
        cur_fn: FuncId(0),
        pending: 0,
        hi: 1,
        fixups: Vec::new(),
        block_pc: Vec::new(),
        barrier: 0,
    };

    let mut funcs = Vec::with_capacity(module.functions.len());
    for f in &module.functions {
        funcs.push(match program.cfg_opt(f.id) {
            Some(cfg) => c.compile_func(f.id, cfg),
            None => FuncMeta {
                entry: NONE32,
                entry_block: NONE32,
                frame_size: f.frame_size as u32,
                max_regs: 0,
                params: Vec::new(),
                name: f.name.clone(),
                code: (0, 0),
                block_pc: Vec::new(),
            },
        });
    }

    CompiledProgram {
        ops: c.ops,
        funcs,
        main: module.function_id("main"),
        switch_tables: c.switch_tables,
        images: c.images,
        fails: c.fails,
        data_image,
        block_base: c.block_base,
        block_lens,
        edge_keys: c.edge_keys,
        n_branches: module.side.branches.len(),
        n_sites: module.side.call_sites.len(),
    }
}

struct Compiler<'p> {
    program: &'p Program,
    tables: NodeTables,
    global_addr: Vec<u64>,
    str_addr: Vec<u64>,
    block_base: Vec<u32>,
    ops: Vec<Op>,
    switch_tables: Vec<SwitchTable>,
    images: Vec<Vec<Value>>,
    fails: Vec<RuntimeError>,
    edge_index: HashMap<(u32, u32, u32), u32>,
    edge_keys: Vec<(FuncId, BlockId, BlockId)>,
    // Per-function state.
    cur_fn: FuncId,
    /// Ticks accumulated since the last flush point.
    pending: u32,
    /// Register watermark (window size so far).
    hi: u16,
    /// `(op index, target block)` jumps to patch once block pcs exist.
    fixups: Vec<(usize, u32)>,
    block_pc: Vec<u32>,
    /// Ops at indices `< barrier` precede a jump target and must not
    /// be rewritten by the fusing emitters.
    barrier: usize,
}

impl<'p> Compiler<'p> {
    // ----- small helpers -----

    fn nty(&self, e: &Expr) -> NodeTy {
        self.tables.ty(e.id)
    }

    fn resolution(&self, e: &Expr) -> Resolution {
        self.tables
            .resolution(e.id)
            .expect("sema resolved every name")
    }

    fn touch(&mut self, r: u16) {
        self.hi = self
            .hi
            .max(r.checked_add(1).expect("register window overflow"));
    }

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Take the pending tick batch to attach to a flush-point op.
    fn take_pending(&mut self) -> u32 {
        std::mem::take(&mut self.pending)
    }

    // ----- fusing emitters (superinstructions) -----

    /// Record a jump target at the current pc. Nothing emitted after
    /// this point may fuse into ops before it, else the jump would
    /// land mid-superinstruction.
    fn label_here(&mut self) -> u32 {
        self.barrier = self.ops.len();
        self.ops.len() as u32
    }

    /// Index of the previous op when it is past the last label.
    fn fuse1(&self) -> Option<usize> {
        (self.ops.len() > self.barrier).then(|| self.ops.len() - 1)
    }

    /// Index of the second-to-last op when the last *two* are past
    /// the last label.
    fn fuse2(&self) -> Option<usize> {
        (self.ops.len() >= self.barrier + 2).then(|| self.ops.len() - 2)
    }

    fn emit_load_local(&mut self, dst: u16, off: u32) {
        if let Some(i) = self.fuse1() {
            if let Op::LoadLocal { dst: d, off: off_a } = self.ops[i] {
                if d.checked_add(1) == Some(dst) {
                    self.ops[i] = Op::LoadLocal2 {
                        dst: d,
                        off_a,
                        off_b: off,
                    };
                    return;
                }
            }
        }
        self.emit(Op::LoadLocal { dst, off });
    }

    fn emit_const_int(&mut self, dst: u16, v: i64) {
        if let Some(i) = self.fuse1() {
            if let Op::LoadLocal { dst: d, off } = self.ops[i] {
                if d.checked_add(1) == Some(dst) {
                    self.ops[i] = Op::LoadLocalImm {
                        dst: d,
                        off,
                        imm: v,
                    };
                    return;
                }
            }
        }
        self.emit(Op::Const {
            dst,
            v: Value::Int(v),
        });
    }

    /// Emit the binary-operator arith (`a = dst`, `b = dst + 1`),
    /// folding operand loads emitted immediately before it. Fused
    /// forms skip the dead write of the consumed operand register
    /// (see the module docs for why that is unobservable).
    fn emit_arith(&mut self, dst: u16, mode: ArithMode, tick: u32) {
        if let Some(i) = self.fuse1() {
            match self.ops[i] {
                Op::LoadLocal2 {
                    dst: d,
                    off_a,
                    off_b,
                } if d == dst => {
                    self.ops[i] = Op::ArithLL {
                        dst,
                        off_a,
                        off_b,
                        mode,
                        tick,
                    };
                    return;
                }
                Op::LoadLocalImm { dst: d, off, imm } if d == dst => {
                    if let Ok(imm) = i32::try_from(imm) {
                        self.ops[i] = Op::ArithLI {
                            dst,
                            off,
                            imm,
                            mode,
                            tick,
                        };
                        return;
                    }
                }
                Op::LoadLocal { dst: d, off } if d == dst + 1 => {
                    self.ops[i] = Op::ArithRL {
                        dst,
                        off,
                        mode,
                        tick,
                    };
                    return;
                }
                Op::Const {
                    dst: d,
                    v: Value::Int(imm),
                } if d == dst + 1 => {
                    if let Ok(imm) = i32::try_from(imm) {
                        self.ops[i] = Op::ArithRI {
                            dst,
                            imm,
                            mode,
                            tick,
                        };
                        return;
                    }
                }
                _ => {}
            }
        }
        self.emit(Op::Arith {
            dst,
            a: dst,
            b: dst + 1,
            mode,
            tick,
        });
    }

    /// Emit the `IndexAddr` for `base[idx]` (`base = dst`,
    /// `idx = dst + 1`), folding the base/index loads before it.
    fn emit_index_addr(&mut self, dst: u16, elem: u32) {
        if let Some(i) = self.fuse1() {
            match self.ops[i] {
                Op::LoadLocal2 {
                    dst: d,
                    off_a,
                    off_b,
                } if d == dst => {
                    self.ops[i] = Op::IndexAddrLL {
                        dst,
                        off_a,
                        off_b,
                        elem,
                    };
                    return;
                }
                Op::LoadLocal {
                    dst: d,
                    off: idx_off,
                } if d == dst + 1 => {
                    if let Some(i1) = self.fuse2() {
                        match self.ops[i1] {
                            // Global-array decay: the base address is
                            // a compile-time constant.
                            Op::Const {
                                dst: b,
                                v: Value::Ptr(base),
                            } if b == dst => {
                                self.ops.pop();
                                self.ops[i1] = Op::IndexAddrPL {
                                    dst,
                                    base,
                                    idx_off,
                                    elem,
                                };
                                return;
                            }
                            Op::LeaLocal {
                                dst: b,
                                off: lea_off,
                            } if b == dst => {
                                self.ops.pop();
                                self.ops[i1] = Op::IndexAddrLeaL {
                                    dst,
                                    lea_off,
                                    idx_off,
                                    elem,
                                };
                                return;
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        self.emit(Op::IndexAddr {
            dst,
            base: dst,
            idx: dst + 1,
            elem,
        });
    }

    /// Emit the store half of `local = <expr>`, folding an arithmetic
    /// op emitted immediately before it (its raw result register is
    /// transient: the store rewrites `dst` with the converted value).
    /// Fusion requires `tick == 0` so no step charge is reordered
    /// against the store.
    fn emit_store_local(&mut self, off: u32, class: TyClass, dst: u16) {
        if let Some(i) = self.fuse1() {
            match self.ops[i] {
                Op::Arith {
                    dst: d,
                    a,
                    b,
                    mode,
                    tick: 0,
                } if d == dst => {
                    self.ops[i] = Op::StoreRR {
                        off,
                        a,
                        b,
                        mode,
                        class,
                        dst,
                    };
                    return;
                }
                Op::ArithLL {
                    dst: d,
                    off_a,
                    off_b,
                    mode,
                    tick: 0,
                } if d == dst => {
                    self.ops[i] = Op::StoreLL {
                        off,
                        off_a,
                        off_b,
                        mode,
                        class,
                        dst,
                    };
                    return;
                }
                Op::ArithLI {
                    dst: d,
                    off: off_a,
                    imm,
                    mode,
                    tick: 0,
                } if d == dst => {
                    self.ops[i] = Op::StoreLI {
                        off,
                        off_a,
                        imm,
                        mode,
                        class,
                        dst,
                    };
                    return;
                }
                Op::ArithRL {
                    dst: d,
                    off: off_b,
                    mode,
                    tick: 0,
                } if d == dst => {
                    self.ops[i] = Op::StoreRL {
                        off,
                        off_b,
                        mode,
                        class,
                        dst,
                    };
                    return;
                }
                Op::ArithRI {
                    dst: d,
                    imm,
                    mode,
                    tick: 0,
                } if d == dst => {
                    self.ops[i] = Op::StoreRI {
                        off,
                        imm,
                        mode,
                        class,
                        dst,
                    };
                    return;
                }
                _ => {}
            }
        }
        self.emit(Op::StoreLocal {
            off,
            src: dst,
            class,
            dst,
        });
    }

    /// Emit a fallible pointer load, folding an address computation
    /// emitted immediately before it into a single array-read op.
    fn emit_load(&mut self, dst: u16, addr: u16, tick: u32) {
        if addr == dst {
            if let Some(i) = self.fuse1() {
                match self.ops[i] {
                    Op::IndexAddr {
                        dst: d,
                        base,
                        idx,
                        elem,
                    } if d == dst => {
                        self.ops[i] = Op::LoadIdx {
                            dst,
                            base,
                            idx,
                            elem,
                            tick,
                        };
                        return;
                    }
                    Op::IndexAddrLL {
                        dst: d,
                        off_a,
                        off_b,
                        elem,
                    } if d == dst => {
                        self.ops[i] = Op::LoadIdxLL {
                            dst,
                            off_a,
                            off_b,
                            elem,
                            tick,
                        };
                        return;
                    }
                    Op::IndexAddrPL {
                        dst: d,
                        base,
                        idx_off,
                        elem,
                    } if d == dst => {
                        self.ops[i] = Op::LoadIdxPL {
                            dst,
                            base,
                            idx_off,
                            elem,
                            tick,
                        };
                        return;
                    }
                    Op::IndexAddrLeaL {
                        dst: d,
                        lea_off,
                        idx_off,
                        elem,
                    } if d == dst => {
                        self.ops[i] = Op::LoadIdxLeaL {
                            dst,
                            lea_off,
                            idx_off,
                            elem,
                            tick,
                        };
                        return;
                    }
                    _ => {}
                }
            }
        }
        self.emit(Op::Load { dst, addr, tick });
    }

    /// Emit a conditional branch on `src`, folding an immediately
    /// preceding comparison (whose result register is dead). Returns
    /// the op index for [`Self::set_else_target`].
    fn emit_cond_branch(&mut self, src: u16, branch: u32, tick: u32) -> usize {
        if let Some(i) = self.fuse1() {
            match self.ops[i] {
                Op::Arith {
                    dst,
                    a,
                    b,
                    mode: ArithMode::Cmp(op),
                    tick: 0,
                } if dst == src => {
                    self.ops[i] = Op::CmpBranchRR {
                        a,
                        b,
                        op,
                        branch,
                        else_target: 0,
                        tick,
                    };
                    return i;
                }
                Op::ArithLL {
                    dst,
                    off_a,
                    off_b,
                    mode: ArithMode::Cmp(op),
                    tick: 0,
                } if dst == src => {
                    self.ops[i] = Op::CmpBranchLL {
                        off_a,
                        off_b,
                        op,
                        branch,
                        else_target: 0,
                        tick,
                    };
                    return i;
                }
                Op::ArithLI {
                    dst,
                    off,
                    imm,
                    mode: ArithMode::Cmp(op),
                    tick: 0,
                } if dst == src => {
                    self.ops[i] = Op::CmpBranchLI {
                        off,
                        imm,
                        op,
                        branch,
                        else_target: 0,
                        tick,
                    };
                    return i;
                }
                Op::ArithRL {
                    dst,
                    off,
                    mode: ArithMode::Cmp(op),
                    tick: 0,
                } if dst == src => {
                    self.ops[i] = Op::CmpBranchRL {
                        a: dst,
                        off,
                        op,
                        branch,
                        else_target: 0,
                        tick,
                    };
                    return i;
                }
                Op::ArithRI {
                    dst,
                    imm,
                    mode: ArithMode::Cmp(op),
                    tick: 0,
                } if dst == src => {
                    self.ops[i] = Op::CmpBranchRI {
                        a: dst,
                        imm,
                        op,
                        branch,
                        else_target: 0,
                        tick,
                    };
                    return i;
                }
                _ => {}
            }
        }
        self.emit(Op::CondBranch {
            src,
            branch,
            else_target: 0,
            tick,
        })
    }

    fn set_else_target(&mut self, idx: usize, pc: u32) {
        match &mut self.ops[idx] {
            Op::CondBranch { else_target, .. }
            | Op::CmpBranchLL { else_target, .. }
            | Op::CmpBranchLI { else_target, .. }
            | Op::CmpBranchRR { else_target, .. }
            | Op::CmpBranchRL { else_target, .. }
            | Op::CmpBranchRI { else_target, .. } => *else_target = pc,
            other => unreachable!("else-target patch on {other:?}"),
        }
    }

    /// Emit the pending batch as a standalone `Tick` (cold paths with
    /// no carrier op: before `Fail`, at a ternary's join label).
    fn flush(&mut self) {
        if self.pending > 0 {
            let n = self.pending;
            self.pending = 0;
            self.emit(Op::Tick(n));
        }
    }

    fn fail(&mut self, e: RuntimeError) {
        self.flush();
        let idx = self.fails.len() as u32;
        self.fails.push(e);
        self.emit(Op::Fail(idx));
    }

    /// The dense counter index of edge `src → dst` in the current
    /// function, allocating one on first use.
    fn edge(&mut self, src: BlockId, dst: BlockId) -> u32 {
        let key = (self.cur_fn.0, src.0, dst.0);
        if let Some(&i) = self.edge_index.get(&key) {
            return i;
        }
        let i = self.edge_keys.len() as u32;
        self.edge_index.insert(key, i);
        self.edge_keys.push((self.cur_fn, src, dst));
        i
    }

    /// Edge stub: one fused op that ticks `tick`, counts the edge and
    /// the target's block iteration, then jumps to the target block.
    fn edge_stub(&mut self, src: BlockId, dst: BlockId, tick: u32) -> u32 {
        debug_assert_eq!(self.pending, 0);
        let pc = self.label_here();
        let edge = self.edge(src, dst);
        let block = self.block_base[self.cur_fn.0 as usize] + dst.0;
        let idx = self.emit(Op::EdgeJump {
            edge,
            block,
            target: 0,
            tick,
        });
        self.fixups.push((idx, dst.0));
        pc
    }

    fn is_aggregate(ty: &Type) -> bool {
        matches!(ty, Type::Struct(_) | Type::Array(_, _))
    }

    fn arith_mode(op: BinOp, ta: NodeTy, tb: NodeTy) -> ArithMode {
        if op.is_comparison() {
            return ArithMode::Cmp(op);
        }
        let a_ptr = ta.is_ptr_like();
        let b_ptr = tb.is_ptr_like();
        match op {
            BinOp::Add if a_ptr => ArithMode::PtrAddL(ta.elem),
            BinOp::Add if b_ptr => ArithMode::PtrAddR(tb.elem),
            BinOp::Sub if a_ptr && b_ptr => ArithMode::PtrDiff(ta.elem.max(1)),
            BinOp::Sub if a_ptr => ArithMode::PtrSubInt(ta.elem),
            _ => ArithMode::Num(op),
        }
    }

    // ----- function compilation -----

    fn compile_func(&mut self, fid: FuncId, cfg: &Cfg) -> FuncMeta {
        let func = self.program.module.function(fid);
        let code_start = self.ops.len() as u32;
        self.cur_fn = fid;
        self.pending = 0;
        self.hi = 1;
        self.fixups.clear();
        self.block_pc = vec![0; cfg.blocks.len()];

        for block in &cfg.blocks {
            debug_assert_eq!(self.pending, 0);
            self.block_pc[block.id.0 as usize] = self.label_here();
            // One tick per block iteration; the block *counter* is
            // bumped by the incoming `EdgeJump` (or by function
            // entry). The interpreter ticks before counting, but a
            // StepLimit-failing run discards its profile, so the
            // order is unobservable.
            self.pending += 1;
            for instr in &block.instrs {
                self.instr(func, instr);
            }
            self.terminator(block.id, &block.term);
            debug_assert_eq!(self.pending, 0);
        }

        // Patch intra-function jumps now that every block has a pc.
        for &(op_idx, blk) in &self.fixups {
            match &mut self.ops[op_idx] {
                Op::EdgeJump { target, .. } => *target = self.block_pc[blk as usize],
                other => unreachable!("fixup on non-jump {other:?}"),
            }
        }

        let structs = &self.program.module.structs;
        let params = func.locals[..func.param_count]
            .iter()
            .map(|local| {
                if Self::is_aggregate(&local.ty) {
                    ParamBind::Agg {
                        off: local.offset as u32,
                        size: local.size as u32,
                    }
                } else {
                    ParamBind::Scalar {
                        off: local.offset as u32,
                        class: NodeTy::of(&local.ty, structs).class,
                    }
                }
            })
            .collect();

        FuncMeta {
            entry: self.block_pc[cfg.entry.0 as usize],
            entry_block: self.block_base[fid.0 as usize] + cfg.entry.0,
            frame_size: func.frame_size as u32,
            max_regs: self.hi as u32,
            params,
            name: func.name.clone(),
            code: (code_start, self.ops.len() as u32),
            block_pc: std::mem::take(&mut self.block_pc),
        }
    }

    fn instr(&mut self, func: &minic::sema::Function, instr: &Instr) {
        match instr {
            Instr::Eval(e) => {
                self.eval(e, 0);
            }
            Instr::Init {
                local,
                word,
                ty,
                value,
            } => {
                self.eval(value, 0);
                let off = (func.locals[local.0 as usize].offset + word) as u32;
                if Self::is_aggregate(ty) {
                    let n = ty.size_words(&self.program.module.structs) as u32;
                    self.touch(1);
                    self.emit(Op::LeaLocal { dst: 1, off });
                    let tick = self.take_pending();
                    self.emit(Op::CopyWords {
                        dst_addr: 1,
                        src: 0,
                        n,
                        dst: 1,
                        tick,
                    });
                } else {
                    let class = NodeTy::of(ty, &self.program.module.structs).class;
                    self.emit_store_local(off, class, 0);
                }
            }
            Instr::InitStr {
                local,
                word,
                str_idx,
                pad_to,
            } => {
                let s = &self.program.module.strings[*str_idx];
                let n = s.len().max(*pad_to);
                let mut img = vec![Value::Int(0); n];
                for (i, b) in s.bytes().enumerate() {
                    img[i] = Value::Int(b as i64);
                }
                let idx = self.images.len() as u32;
                self.images.push(img);
                let off = (func.locals[local.0 as usize].offset + word) as u32;
                self.emit(Op::InitWordsLocal { off, img: idx });
            }
            Instr::InitZero { local, word, len } => {
                let off = (func.locals[local.0 as usize].offset + word) as u32;
                self.emit(Op::ZeroLocal {
                    off,
                    len: *len as u32,
                });
            }
        }
    }

    fn terminator(&mut self, blk: BlockId, term: &Terminator) {
        match term {
            Terminator::Goto(t) => {
                let tick = self.take_pending();
                self.edge_stub(blk, *t, tick);
            }
            Terminator::Branch {
                cond,
                branch,
                then_blk,
                else_blk,
            } => {
                self.eval(cond, 0);
                let tick = self.take_pending();
                let brid = branch.map_or(NONE32, |b| b.0);
                let cb = self.emit_cond_branch(0, brid, tick);
                self.edge_stub(blk, *then_blk, 0);
                let else_pc = self.label_here();
                self.set_else_target(cb, else_pc);
                self.edge_stub(blk, *else_blk, 0);
            }
            Terminator::Switch {
                scrut,
                cases,
                default,
                ..
            } => {
                self.eval(scrut, 0);
                let tick = self.take_pending();
                let table = self.switch_tables.len() as u32;
                // Reserve the slot so the op can reference it now.
                self.switch_tables.push(SwitchTable::Sorted {
                    keys: Vec::new(),
                    targets: Vec::new(),
                    default: 0,
                });
                self.emit(Op::SwitchJump {
                    src: 0,
                    table,
                    tick,
                });
                // One stub per distinct successor block.
                let mut stub_pc: Vec<(BlockId, u32)> = Vec::new();
                for &(_, t) in cases.iter() {
                    if !stub_pc.iter().any(|&(b, _)| b == t) {
                        let pc = self.edge_stub(blk, t, 0);
                        stub_pc.push((t, pc));
                    }
                }
                let default_pc = match stub_pc.iter().find(|&&(b, _)| b == *default) {
                    Some(&(_, pc)) => pc,
                    None => {
                        let pc = self.edge_stub(blk, *default, 0);
                        stub_pc.push((*default, pc));
                        pc
                    }
                };
                self.switch_tables[table as usize] =
                    Self::build_switch_table(cases, &stub_pc, default_pc);
            }
            Terminator::Return(e) => {
                match e {
                    Some(e) => {
                        self.eval(e, 0);
                    }
                    None => {
                        self.emit(Op::Const {
                            dst: 0,
                            v: Value::Int(0),
                        });
                    }
                }
                let tick = self.take_pending();
                self.emit(Op::Ret { src: 0, tick });
            }
        }
    }

    /// Lower the case list to a lookup table. Duplicate case values
    /// keep the *first* occurrence — the interpreter scans linearly —
    /// and a dense table is used when the value range is compact.
    fn build_switch_table(
        cases: &[(i64, BlockId)],
        stub_pc: &[(BlockId, u32)],
        default_pc: u32,
    ) -> SwitchTable {
        let pc_of = |b: BlockId| {
            stub_pc
                .iter()
                .find(|&&(sb, _)| sb == b)
                .map(|&(_, pc)| pc)
                .expect("stub exists for every case target")
        };
        let mut entries: Vec<(i64, u32)> = Vec::with_capacity(cases.len());
        for &(v, t) in cases {
            if !entries.iter().any(|&(ev, _)| ev == v) {
                entries.push((v, pc_of(t)));
            }
        }
        entries.sort_by_key(|&(v, _)| v);
        if entries.is_empty() {
            return SwitchTable::Sorted {
                keys: Vec::new(),
                targets: Vec::new(),
                default: default_pc,
            };
        }
        let min = entries[0].0;
        let max = entries[entries.len() - 1].0;
        let span = (max as i128 - min as i128) + 1;
        if span <= entries.len() as i128 * 3 + 8 {
            let mut targets = vec![NONE32; span as usize];
            for &(v, pc) in &entries {
                targets[(v - min) as usize] = pc;
            }
            SwitchTable::Dense {
                min,
                targets,
                default: default_pc,
            }
        } else {
            SwitchTable::Sorted {
                keys: entries.iter().map(|&(v, _)| v).collect(),
                targets: entries.iter().map(|&(_, pc)| pc).collect(),
                default: default_pc,
            }
        }
    }

    // ----- places -----

    /// Compile the address computation of an lvalue. Mirrors
    /// `Interp::place`: one tick on entry, then per-shape work. The
    /// result only uses registers `>= scratch`.
    fn place(&mut self, e: &Expr, scratch: u16) -> Place {
        self.pending += 1;
        self.touch(scratch);
        match &e.kind {
            ExprKind::Ident(_) => match self.resolution(e) {
                Resolution::Local(lid) => {
                    let func = self.program.module.function(self.cur_fn);
                    Place::Local(func.locals[lid.0 as usize].offset as u32)
                }
                Resolution::Global(gid) => {
                    Place::Data((self.global_addr[gid.0 as usize] - 1) as u32)
                }
                Resolution::Func(_) | Resolution::Builtin(_) | Resolution::EnumConst(_) => {
                    self.fail(RuntimeError::Other("constant is not an lvalue".into()));
                    Place::Reg(scratch)
                }
            },
            ExprKind::Unary(UnOp::Deref, inner) => {
                self.eval(inner, scratch);
                Place::Reg(scratch)
            }
            ExprKind::Index(base, idx) => {
                let bt = self.nty(base);
                if bt.class == TyClass::Agg {
                    let pb = self.place(base, scratch);
                    self.place_addr(pb, scratch);
                } else {
                    self.eval(base, scratch);
                }
                self.eval(idx, scratch + 1);
                self.emit_index_addr(scratch, bt.elem);
                Place::Reg(scratch)
            }
            ExprKind::Member(base, _, arrow) => {
                let off = self.tables.member_off(e.id);
                if off == NONE32 {
                    self.fail(RuntimeError::Other("member on non-struct".into()));
                    return Place::Reg(scratch);
                }
                if *arrow {
                    self.eval(base, scratch);
                    let tick = self.take_pending();
                    self.emit(Op::MemberAddr {
                        dst: scratch,
                        src: scratch,
                        off,
                        tick,
                    });
                    Place::Reg(scratch)
                } else {
                    match self.place(base, scratch) {
                        // Frame/static bases are never NULL, so the
                        // interpreter's NULL check cannot fire there.
                        Place::Local(o) => Place::Local(o + off),
                        Place::Data(i) => Place::Data(i + off),
                        Place::Reg(r) => {
                            let tick = self.take_pending();
                            self.emit(Op::MemberAddr {
                                dst: r,
                                src: r,
                                off,
                                tick,
                            });
                            Place::Reg(r)
                        }
                    }
                }
            }
            ExprKind::Cast(_, inner) => self.place(inner, scratch),
            _ => {
                self.fail(RuntimeError::Other(format!(
                    "expression is not an lvalue: {:?}",
                    std::mem::discriminant(&e.kind)
                )));
                Place::Reg(scratch)
            }
        }
    }

    /// Materialize a place's address as a `Ptr` value in `dst`.
    fn place_addr(&mut self, p: Place, dst: u16) {
        self.touch(dst);
        match p {
            Place::Local(off) => {
                self.emit(Op::LeaLocal { dst, off });
            }
            Place::Data(idx) => {
                self.emit(Op::Const {
                    dst,
                    v: Value::Ptr(idx as u64 + 1),
                });
            }
            Place::Reg(r) => {
                self.emit(Op::ToPtr { dst, src: r });
            }
        }
    }

    /// Load an rvalue out of a place (aggregates yield their address).
    fn load_place(&mut self, nt: NodeTy, p: Place, dst: u16) {
        self.touch(dst);
        if nt.class == TyClass::Agg {
            self.place_addr(p, dst);
            return;
        }
        match p {
            Place::Local(off) => {
                self.emit_load_local(dst, off);
            }
            Place::Data(idx) => {
                self.emit(Op::LoadGlobal { dst, idx });
            }
            Place::Reg(r) => {
                let tick = self.take_pending();
                self.emit_load(dst, r, tick);
            }
        }
    }

    // ----- expressions -----

    /// Compile `e`, leaving its value in `dst`. Only registers
    /// `>= dst` are written. Mirrors `Interp::eval` tick-for-tick.
    fn eval(&mut self, e: &Expr, dst: u16) {
        self.pending += 1;
        self.touch(dst);
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.emit_const_int(dst, *v);
            }
            ExprKind::FloatLit(v) => {
                self.emit(Op::Const {
                    dst,
                    v: Value::Float(*v),
                });
            }
            ExprKind::StrLit(_) => {
                let idx = self.tables.str_idx(e.id);
                self.emit(Op::Const {
                    dst,
                    v: Value::Ptr(self.str_addr[idx as usize]),
                });
            }
            ExprKind::Ident(_) => match self.resolution(e) {
                Resolution::Func(fid) => {
                    self.emit(Op::Const {
                        dst,
                        v: Value::Fn(fid),
                    });
                }
                Resolution::EnumConst(v) => {
                    self.emit_const_int(dst, v);
                }
                Resolution::Builtin(_) => {
                    self.fail(RuntimeError::Other("builtin used as a value".into()));
                }
                Resolution::Local(_) | Resolution::Global(_) => {
                    let p = self.place(e, dst);
                    self.load_place(self.nty(e), p, dst);
                }
            },
            ExprKind::Unary(op, inner) => self.eval_unary(e, *op, inner, dst),
            ExprKind::Binary(op, a, b) => {
                let ta = self.nty(a);
                let tb = self.nty(b);
                self.eval(a, dst);
                self.eval(b, dst + 1);
                let mode = Self::arith_mode(*op, ta, tb);
                let tick = if mode.fallible() {
                    self.take_pending()
                } else {
                    0
                };
                self.emit_arith(dst, mode, tick);
            }
            ExprKind::LogAnd(a, b) => {
                self.eval(a, dst);
                let t1 = self.take_pending();
                let j1 = self.emit(Op::JumpIfFalse {
                    src: dst,
                    target: 0,
                    tick: t1,
                });
                self.eval(b, dst);
                self.emit(Op::Bool { dst, src: dst });
                let t2 = self.take_pending();
                let j2 = self.emit(Op::Jump {
                    target: 0,
                    tick: t2,
                });
                self.patch_jump_here(j1);
                self.emit(Op::Const {
                    dst,
                    v: Value::Int(0),
                });
                self.patch_jump_here(j2);
            }
            ExprKind::LogOr(a, b) => {
                self.eval(a, dst);
                let t1 = self.take_pending();
                let j1 = self.emit(Op::JumpIfTrue {
                    src: dst,
                    target: 0,
                    tick: t1,
                });
                self.eval(b, dst);
                self.emit(Op::Bool { dst, src: dst });
                let t2 = self.take_pending();
                let j2 = self.emit(Op::Jump {
                    target: 0,
                    tick: t2,
                });
                self.patch_jump_here(j1);
                self.emit(Op::Const {
                    dst,
                    v: Value::Int(1),
                });
                self.patch_jump_here(j2);
            }
            ExprKind::Assign(op, lhs, rhs) => self.eval_assign(*op, lhs, rhs, dst),
            ExprKind::Call(callee, args) => self.eval_call(e, callee, args, dst),
            ExprKind::Index(_, _) | ExprKind::Member(_, _, _) => {
                let p = self.place(e, dst);
                self.load_place(self.nty(e), p, dst);
            }
            ExprKind::Cond(c, t, f) => {
                self.eval(c, dst);
                let tick = self.take_pending();
                let branch = self.tables.branch(e.id);
                let cb = self.emit_cond_branch(dst, branch, tick);
                self.eval(t, dst);
                let jt = self.take_pending();
                let j = self.emit(Op::Jump {
                    target: 0,
                    tick: jt,
                });
                let else_pc = self.label_here();
                self.set_else_target(cb, else_pc);
                self.eval(f, dst);
                self.flush();
                self.patch_jump_here(j);
            }
            ExprKind::Cast(_, inner) => {
                self.eval(inner, dst);
                let class = self.nty(e).class;
                if !matches!(class, TyClass::Agg | TyClass::Other) {
                    self.emit(Op::Conv {
                        dst,
                        src: dst,
                        class,
                    });
                }
            }
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => {
                self.emit_const_int(dst, self.tables.sizeof_val(e.id));
            }
            ExprKind::Comma(a, b) => {
                self.eval(a, dst);
                self.eval(b, dst);
            }
        }
    }

    fn patch_jump_here(&mut self, op_idx: usize) {
        let here = self.label_here();
        match &mut self.ops[op_idx] {
            Op::Jump { target, .. }
            | Op::JumpIfFalse { target, .. }
            | Op::JumpIfTrue { target, .. } => *target = here,
            other => unreachable!("patch on non-jump {other:?}"),
        }
    }

    fn eval_unary(&mut self, e: &Expr, op: UnOp, inner: &Expr, dst: u16) {
        match op {
            UnOp::Neg => {
                self.eval(inner, dst);
                self.emit(Op::Neg { dst, src: dst });
            }
            UnOp::Not => {
                self.eval(inner, dst);
                self.emit(Op::LogicNot { dst, src: dst });
            }
            UnOp::BitNot => {
                self.eval(inner, dst);
                self.emit(Op::BitNot { dst, src: dst });
            }
            UnOp::Deref => {
                let nt = self.nty(e);
                // `*f` on a function pointer is the function pointer.
                if nt.class == TyClass::FnPtr && self.nty(inner).class == TyClass::FnPtr {
                    self.eval(inner, dst);
                    return;
                }
                self.eval(inner, dst);
                if nt.class == TyClass::Agg {
                    self.emit(Op::ToPtr { dst, src: dst });
                } else {
                    let tick = self.take_pending();
                    self.emit_load(dst, dst, tick);
                }
            }
            UnOp::Addr => {
                // `&f` yields the function pointer itself, no place walk.
                if let ExprKind::Ident(_) = &inner.kind {
                    if let Some(Resolution::Func(fid)) =
                        self.program.module.side.resolutions.get(&inner.id)
                    {
                        self.emit(Op::Const {
                            dst,
                            v: Value::Fn(*fid),
                        });
                        return;
                    }
                }
                let p = self.place(inner, dst);
                self.place_addr(p, dst);
            }
            UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                let nt = self.nty(inner);
                let step = if nt.class == TyClass::Ptr {
                    nt.elem as i64
                } else {
                    1
                };
                let delta = match op {
                    UnOp::PreInc | UnOp::PostInc => step,
                    _ => -step,
                };
                let post = matches!(op, UnOp::PostInc | UnOp::PostDec);
                match self.place(inner, dst) {
                    Place::Local(off) => {
                        self.emit(Op::IncDecLocal {
                            dst,
                            off,
                            delta,
                            post,
                        });
                    }
                    Place::Data(idx) => {
                        self.emit(Op::IncDecGlobal {
                            dst,
                            idx,
                            delta,
                            post,
                        });
                    }
                    Place::Reg(r) => {
                        let tick = self.take_pending();
                        self.emit(Op::IncDec {
                            dst,
                            addr: r,
                            delta,
                            post,
                            tick,
                        });
                    }
                }
            }
        }
    }

    fn eval_assign(&mut self, op: Option<BinOp>, lhs: &Expr, rhs: &Expr, dst: u16) {
        let lty = self.nty(lhs);
        match op {
            None => {
                if lty.class == TyClass::Agg {
                    let p = self.place(lhs, dst);
                    self.place_addr(p, dst);
                    self.eval(rhs, dst + 1);
                    let tick = self.take_pending();
                    self.emit(Op::CopyWords {
                        dst_addr: dst,
                        src: dst + 1,
                        n: lty.size,
                        dst,
                        tick,
                    });
                } else {
                    match self.place(lhs, dst) {
                        Place::Local(off) => {
                            self.eval(rhs, dst);
                            self.emit_store_local(off, lty.class, dst);
                        }
                        Place::Data(idx) => {
                            self.eval(rhs, dst);
                            self.emit(Op::StoreGlobal {
                                idx,
                                src: dst,
                                class: lty.class,
                                dst,
                            });
                        }
                        Place::Reg(r) => {
                            self.eval(rhs, dst + 1);
                            let tick = self.take_pending();
                            self.emit(Op::Store {
                                addr: r,
                                src: dst + 1,
                                class: lty.class,
                                dst,
                                tick,
                            });
                        }
                    }
                }
            }
            Some(op) => {
                let mode = Self::arith_mode(op, lty, self.nty(rhs));
                match self.place(lhs, dst) {
                    Place::Local(off) => {
                        self.eval(rhs, dst);
                        let tick = if mode.fallible() {
                            self.take_pending()
                        } else {
                            0
                        };
                        self.emit(Op::RmwLocal {
                            off,
                            src: dst,
                            mode,
                            class: lty.class,
                            dst,
                            tick,
                        });
                    }
                    Place::Data(idx) => {
                        self.eval(rhs, dst);
                        let tick = if mode.fallible() {
                            self.take_pending()
                        } else {
                            0
                        };
                        self.emit(Op::RmwGlobal {
                            idx,
                            src: dst,
                            mode,
                            class: lty.class,
                            dst,
                            tick,
                        });
                    }
                    Place::Reg(r) => {
                        self.eval(rhs, dst + 1);
                        let tick = self.take_pending();
                        self.emit(Op::Rmw {
                            addr: r,
                            src: dst + 1,
                            mode,
                            class: lty.class,
                            dst,
                            tick,
                        });
                    }
                }
            }
        }
    }

    fn eval_call(&mut self, e: &Expr, callee: &Expr, args: &[Expr], dst: u16) {
        let site = self.tables.call_site(e.id);
        debug_assert_ne!(site, NONE32, "sema registered every call site");
        self.emit(Op::BumpSite(site));
        let cs = &self.program.module.side.call_sites[site as usize];
        let nargs = u16::try_from(args.len()).expect("argument count fits u16");
        match cs.callee {
            CalleeKind::Direct(fid) => {
                for (i, a) in args.iter().enumerate() {
                    self.eval(a, dst + i as u16);
                }
                if self.program.cfg_opt(fid).is_none() {
                    let name = self.program.module.function(fid).name.clone();
                    self.fail(RuntimeError::Undefined { name });
                } else {
                    let tick = self.take_pending();
                    self.emit(Op::CallDirect {
                        func: fid.0,
                        argbase: dst,
                        nargs,
                        dst,
                        tick,
                    });
                }
            }
            CalleeKind::Builtin(b) => {
                for (i, a) in args.iter().enumerate() {
                    self.eval(a, dst + i as u16);
                }
                let tick = self.take_pending();
                self.emit(Op::CallBuiltin {
                    b,
                    argbase: dst,
                    nargs,
                    dst,
                    tick,
                });
            }
            CalleeKind::Indirect => {
                self.eval(callee, dst);
                let tick = self.take_pending();
                self.emit(Op::CheckFn { src: dst, tick });
                for (i, a) in args.iter().enumerate() {
                    self.eval(a, dst + 1 + i as u16);
                }
                let tick = self.take_pending();
                self.emit(Op::CallIndirect {
                    callee: dst,
                    argbase: dst + 1,
                    nargs,
                    dst,
                    tick,
                });
            }
        }
    }
}
