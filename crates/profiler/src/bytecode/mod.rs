//! The profiler's bytecode VM: compile a [`flowgraph::Program`] once
//! into a flat register-based instruction stream, then execute it with
//! a non-recursive dispatch loop.
//!
//! The AST walker in [`crate::interp`] re-resolves every name, ticks
//! the step counter through two memory round-trips per expression
//! node, and nests a Rust stack frame per MiniC expression. Profiling
//! dominates `load_suite` and the test suite, so this module performs
//! the classic flattening once per program:
//!
//! - locals become frame-slot indices; globals and string literals
//!   become absolute addresses baked into the code (the static data
//!   image is laid out at compile time, byte-for-byte as
//!   `Interp::load_statics` would);
//! - `switch` becomes a jump table (dense) or a sorted binary search;
//! - `&&`/`||`/`?:` become branches over a per-frame register window;
//! - every block / edge / branch / call-site counter increment
//!   indexes a dense array — the `HashMap` of edge counts is only
//!   materialized once, after the run;
//! - consecutive step-counter ticks are batched and carried as a
//!   payload on the next control-flow or fallible op wherever no
//!   intervening op can fail or `exit()` (so batching can never
//!   change an observable outcome — see `compile.rs`); a taken CFG
//!   edge is a single fused [`Op::EdgeJump`] dispatch that ticks,
//!   bumps the edge and target-block counters, and jumps.
//!
//! The result of [`compile`] is [`CompiledProgram`]: fully owned,
//! `Send + Sync`, executable concurrently from many threads — one
//! compiled image profiles all of a suite program's inputs in
//! parallel. [`run`] keeps the old `profiler::run` signature and adds
//! a fingerprint-keyed compile cache; the AST walker survives as
//! [`crate::run_ast`], the differential-testing oracle.

mod compile;
mod exec;

pub use exec::{arith, cmp_vals, ExecScratch};

use crate::interp::{RunConfig, RunOutcome, RuntimeError, TyClass, Value};
use crate::profile::Profile;
use crate::reuse::{ObjectMap, ReuseCollector, ReuseTrace};
use flowgraph::{BlockId, Program};
use minic::ast::BinOp;
use minic::builtins::Builtin;
use minic::sema::FuncId;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel for "no index" in `u32` fields (branch ids, entry points).
pub const NONE32: u32 = u32::MAX;

/// How a binary operator executes, resolved at compile time from the
/// operands' static types (the dynamic float/int split stays in the
/// op, exactly as in `Interp::arith`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArithMode {
    /// A comparison (`< <= > >= == !=`).
    Cmp(BinOp),
    /// `ptr + int` with the left operand the pointer.
    PtrAddL(u32),
    /// `int + ptr` with the right operand the pointer.
    PtrAddR(u32),
    /// `ptr - ptr`, scaled by the element size.
    PtrDiff(u32),
    /// `ptr - int`.
    PtrSubInt(u32),
    /// Plain numeric arithmetic (float or wrapping integer).
    Num(BinOp),
}

impl ArithMode {
    /// Whether executing this mode can raise a runtime error.
    pub fn fallible(self) -> bool {
        matches!(
            self,
            ArithMode::Num(BinOp::Div) | ArithMode::Num(BinOp::Rem)
        )
    }
}

/// One VM instruction. Register operands (`u16`) index the executing
/// frame's register window; `off` fields are word offsets into the
/// frame; `u32` indices point into the dense counter arrays or the
/// side tables of the [`CompiledProgram`].
///
/// Every op that ends a tick-batching region carries its own `tick`
/// payload (executed before the op's work), so the hot path pays no
/// separate `Tick` dispatch: a loop iteration is just its eval ops
/// plus one branching op and one [`Op::EdgeJump`].
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names are self-describing; semantics live on the variants
pub enum Op {
    /// `steps += n`, `func_cost[cur] += n`, abort past the limit
    /// (standalone form, used before `Fail`).
    Tick(u32),
    /// `call_site_counts[idx] += 1`.
    BumpSite(u32),
    /// `func_counts[f] += 1` and `blocks[funcs[f].entry_block] += 1` —
    /// replicates the counter bumps of `enter()` at an inlined call
    /// site (emitted only by the optimizer; zero cost).
    BumpFunc(u32),
    /// Bump branch counter `branch` by `taken` — stands in for a
    /// branch the optimizer resolved at compile time (zero cost).
    BumpBranch { branch: u32, taken: bool },
    /// `dst = src` (register move; emitted only by the optimizer for
    /// inlined return values).
    Mov { dst: u16, src: u16 },
    /// `dst = v`.
    Const { dst: u16, v: Value },
    /// `dst = Ptr(address of frame slot off)`.
    LeaLocal { dst: u16, off: u32 },
    /// `dst = stack[fp + off]` (infallible: in-frame).
    LoadLocal { dst: u16, off: u32 },
    /// Fused pair: `dst = stack[fp + off_a]; dst+1 = stack[fp + off_b]`.
    LoadLocal2 { dst: u16, off_a: u32, off_b: u32 },
    /// Fused pair: `dst = stack[fp + off]; dst+1 = Int(imm)`.
    LoadLocalImm { dst: u16, off: u32, imm: i64 },
    /// `stack[fp + off] = conv(class, src)`; `dst` gets the converted value.
    StoreLocal {
        off: u32,
        src: u16,
        class: TyClass,
        dst: u16,
    },
    /// `dst = data[idx]` (infallible: inside the static image).
    LoadGlobal { dst: u16, idx: u32 },
    /// `data[idx] = conv(class, src)`; `dst` gets the converted value.
    StoreGlobal {
        idx: u32,
        src: u16,
        class: TyClass,
        dst: u16,
    },
    /// `dst = mem[src.to_ptr()]` (fallible).
    Load { dst: u16, addr: u16, tick: u32 },
    /// `mem[addr.to_ptr()] = conv(class, src)`; `dst` converted value.
    Store {
        addr: u16,
        src: u16,
        class: TyClass,
        dst: u16,
        tick: u32,
    },
    /// Word-wise copy; `dst` gets `Ptr(dst_addr)` (aggregate assignment).
    CopyWords {
        dst_addr: u16,
        src: u16,
        n: u32,
        dst: u16,
        tick: u32,
    },
    /// Copy a precompiled image into the frame (`char s[] = "..."`).
    InitWordsLocal { off: u32, img: u32 },
    /// Zero `len` frame words at `off`.
    ZeroLocal { off: u32, len: u32 },
    /// `dst = Ptr(src.to_ptr())`.
    ToPtr { dst: u16, src: u16 },
    /// `dst = Int(src.truthy())`.
    Bool { dst: u16, src: u16 },
    /// `dst = Int(!src.truthy())`.
    LogicNot { dst: u16, src: u16 },
    /// Arithmetic negation, preserving floatness.
    Neg { dst: u16, src: u16 },
    /// `dst = Int(!src.to_int())`.
    BitNot { dst: u16, src: u16 },
    /// `dst = convert_for_class(class, src)` (casts).
    Conv { dst: u16, src: u16, class: TyClass },
    /// `dst = Ptr(base.to_ptr() + idx.to_int() * elem)`.
    IndexAddr {
        dst: u16,
        base: u16,
        idx: u16,
        elem: u32,
    },
    /// `IndexAddr` over two fused local loads (pointer var + index).
    IndexAddrLL {
        dst: u16,
        off_a: u32,
        off_b: u32,
        elem: u32,
    },
    /// `IndexAddr` with a compile-time base (global array decay).
    IndexAddrPL {
        dst: u16,
        base: u64,
        idx_off: u32,
        elem: u32,
    },
    /// `IndexAddr` into a frame-local array (`LeaLocal` base).
    IndexAddrLeaL {
        dst: u16,
        lea_off: u32,
        idx_off: u32,
        elem: u32,
    },
    /// Fused `IndexAddr` + `Load` (fallible array read).
    LoadIdx {
        dst: u16,
        base: u16,
        idx: u16,
        elem: u32,
        tick: u32,
    },
    /// `LoadIdx` over two fused local loads.
    LoadIdxLL {
        dst: u16,
        off_a: u32,
        off_b: u32,
        elem: u32,
        tick: u32,
    },
    /// `LoadIdx` with a compile-time base (global array read).
    LoadIdxPL {
        dst: u16,
        base: u64,
        idx_off: u32,
        elem: u32,
        tick: u32,
    },
    /// `LoadIdx` into a frame-local array.
    LoadIdxLeaL {
        dst: u16,
        lea_off: u32,
        idx_off: u32,
        elem: u32,
        tick: u32,
    },
    /// `dst = Ptr(src.to_ptr() + off)`, failing on NULL base.
    MemberAddr {
        dst: u16,
        src: u16,
        off: u32,
        tick: u32,
    },
    /// `++`/`--` on a frame slot (infallible).
    IncDecLocal {
        dst: u16,
        off: u32,
        delta: i64,
        post: bool,
    },
    /// `++`/`--` on a static-image slot (infallible).
    IncDecGlobal {
        dst: u16,
        idx: u32,
        delta: i64,
        post: bool,
    },
    /// `++`/`--` through a pointer register (fallible).
    IncDec {
        dst: u16,
        addr: u16,
        delta: i64,
        post: bool,
        tick: u32,
    },
    /// `dst = a <mode> b` (`tick` nonzero only for fallible modes).
    Arith {
        dst: u16,
        a: u16,
        b: u16,
        mode: ArithMode,
        tick: u32,
    },
    /// `dst = stack[fp+off_a] <mode> stack[fp+off_b]` (fused loads).
    ArithLL {
        dst: u16,
        off_a: u32,
        off_b: u32,
        mode: ArithMode,
        tick: u32,
    },
    /// `dst = stack[fp+off] <mode> Int(imm)`.
    ArithLI {
        dst: u16,
        off: u32,
        imm: i32,
        mode: ArithMode,
        tick: u32,
    },
    /// `dst = dst <mode> stack[fp+off]` (rhs load fused).
    ArithRL {
        dst: u16,
        off: u32,
        mode: ArithMode,
        tick: u32,
    },
    /// `dst = dst <mode> Int(imm)` (rhs constant fused).
    ArithRI {
        dst: u16,
        imm: i32,
        mode: ArithMode,
        tick: u32,
    },
    /// `Arith` + `StoreLocal` fused: compute `a <mode> b`, convert
    /// for `class`, store to frame slot `off` *and* register `dst`
    /// (the assignment's value — kept live for nested assignments).
    StoreRR {
        off: u32,
        a: u16,
        b: u16,
        mode: ArithMode,
        class: TyClass,
        dst: u16,
    },
    /// `ArithLL` + `StoreLocal` fused.
    StoreLL {
        off: u32,
        off_a: u32,
        off_b: u32,
        mode: ArithMode,
        class: TyClass,
        dst: u16,
    },
    /// `ArithLI` + `StoreLocal` fused.
    StoreLI {
        off: u32,
        off_a: u32,
        imm: i32,
        mode: ArithMode,
        class: TyClass,
        dst: u16,
    },
    /// `ArithRL` + `StoreLocal` fused.
    StoreRL {
        off: u32,
        off_b: u32,
        mode: ArithMode,
        class: TyClass,
        dst: u16,
    },
    /// `ArithRI` + `StoreLocal` fused.
    StoreRI {
        off: u32,
        imm: i32,
        mode: ArithMode,
        class: TyClass,
        dst: u16,
    },
    /// Compound assignment on a frame slot.
    RmwLocal {
        off: u32,
        src: u16,
        mode: ArithMode,
        class: TyClass,
        dst: u16,
        tick: u32,
    },
    /// Compound assignment on a static-image slot.
    RmwGlobal {
        idx: u32,
        src: u16,
        mode: ArithMode,
        class: TyClass,
        dst: u16,
        tick: u32,
    },
    /// Compound assignment through a pointer register (fallible).
    Rmw {
        addr: u16,
        src: u16,
        mode: ArithMode,
        class: TyClass,
        dst: u16,
        tick: u32,
    },
    /// Unconditional jump.
    Jump { target: u32, tick: u32 },
    /// Jump when `src` is falsy.
    JumpIfFalse { src: u16, target: u32, tick: u32 },
    /// Jump when `src` is truthy.
    JumpIfTrue { src: u16, target: u32, tick: u32 },
    /// Two-way branch: bump branch counter `branch` (unless `NONE32`)
    /// by truthiness, fall through when true, jump when false.
    CondBranch {
        src: u16,
        branch: u32,
        else_target: u32,
        tick: u32,
    },
    /// Fused compare-and-branch over two frame slots (the dominant
    /// loop-header shape: `LoadLocal2` + `Arith(Cmp)` + `CondBranch`).
    /// The comparison result register is dead (every later read is
    /// preceded by a write — see `compile.rs`), so none is written.
    CmpBranchLL {
        off_a: u32,
        off_b: u32,
        op: BinOp,
        branch: u32,
        else_target: u32,
        tick: u32,
    },
    /// Compare a frame slot against an immediate, then branch.
    CmpBranchLI {
        off: u32,
        imm: i32,
        op: BinOp,
        branch: u32,
        else_target: u32,
        tick: u32,
    },
    /// Compare two registers, then branch.
    CmpBranchRR {
        a: u16,
        b: u16,
        op: BinOp,
        branch: u32,
        else_target: u32,
        tick: u32,
    },
    /// Compare register `a` against a frame slot, then branch.
    CmpBranchRL {
        a: u16,
        off: u32,
        op: BinOp,
        branch: u32,
        else_target: u32,
        tick: u32,
    },
    /// Compare register `a` against an immediate, then branch.
    CmpBranchRI {
        a: u16,
        imm: i32,
        op: BinOp,
        branch: u32,
        else_target: u32,
        tick: u32,
    },
    /// Multi-way jump through `switch_tables[table]` on `src.to_int()`.
    SwitchJump { src: u16, table: u32, tick: u32 },
    /// The fused CFG transition: bump edge counter `edge` and block
    /// counter `block` (the jump target's), then jump. One dispatch
    /// per taken CFG edge instead of Tick + BumpEdge + BumpBlock + Jump.
    EdgeJump {
        edge: u32,
        block: u32,
        target: u32,
        tick: u32,
    },
    /// Fail with `NotAFunction` unless `src` is a function value.
    CheckFn { src: u16, tick: u32 },
    /// Call a defined user function.
    CallDirect {
        func: u32,
        argbase: u16,
        nargs: u16,
        dst: u16,
        tick: u32,
    },
    /// Call through the function value in `callee`.
    CallIndirect {
        callee: u16,
        argbase: u16,
        nargs: u16,
        dst: u16,
        tick: u32,
    },
    /// Call a builtin shim.
    CallBuiltin {
        b: Builtin,
        argbase: u16,
        nargs: u16,
        dst: u16,
        tick: u32,
    },
    /// Return `src` to the caller (or halt if this is `main`).
    Ret { src: u16, tick: u32 },
    /// Abort the run with `fails[idx]`.
    Fail(u32),

    // ----- mined superinstructions -----
    // Fused forms of the op digrams measured hottest across the
    // benchmark suite under estimator block frequencies (the `opt`
    // crate's miner synthesizes them; the VM emitter never does).
    // Each charges one dispatch tick where its source pair charged
    // two, and replicates the pair's counter bumps exactly.
    /// `Const{dst, Int(imm)}` then `Jump{target}`.
    ConstJump {
        dst: u16,
        imm: i32,
        target: u32,
        tick: u32,
    },
    /// `Const{src, Int(imm)}` then `Ret{src}` — the register write is
    /// dead past the return and dropped.
    ConstRet { imm: i32, tick: u32 },
    /// `StoreLocal{off, src, class, dst: src}` then `EdgeJump`.
    StoreLEdge {
        off: u32,
        src: u16,
        class: TyClass,
        edge: u32,
        block: u32,
        target: u32,
        tick: u32,
    },
    /// Pre-increment `IncDecLocal{dst, off, delta, post: false}` then
    /// `EdgeJump` (the classic loop latch).
    IncDecLEdge {
        off: u32,
        dst: u16,
        delta: i8,
        edge: u32,
        block: u32,
        target: u32,
        tick: u32,
    },
    /// `LoadLocal{dst, off}` then `CondBranch{src: dst, ..}`.
    LoadLBranch {
        off: u32,
        dst: u16,
        branch: u32,
        else_target: u32,
        tick: u32,
    },
    /// `LoadGlobal{dst, idx}` then `ArithRI{dst, imm, mode}`.
    ArithGI {
        dst: u16,
        idx: u32,
        imm: i32,
        mode: ArithMode,
        tick: u32,
    },
    /// `Const{dst, Int(imm)}` then `CmpBranchRR{a, b: dst, ..}` — the
    /// constant write is preserved (later code may read it).
    CmpBranchRCI {
        a: u16,
        dst: u16,
        imm: i32,
        op: BinOp,
        branch: u32,
        else_target: u32,
        tick: u32,
    },
    /// `ArithRL{dst, off, mode}` then `JumpIfFalse{src: dst, target}`.
    ArithRLJumpF {
        dst: u16,
        off: u32,
        mode: ArithMode,
        target: u32,
        tick: u32,
    },
    /// `LoadLocal{dst, off}` then `LoadIdx{dst, base: dst, idx, elem}`
    /// with `idx != dst` — an array load through a local pointer.
    LoadIdxLR {
        dst: u16,
        off: u32,
        idx: u16,
        elem: u32,
        tick: u32,
    },
}

/// A `switch` lowered at compile time. Case values are deduplicated
/// keeping the first occurrence, so both lookup shapes agree with the
/// interpreter's linear first-match scan.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // field names are self-describing; semantics live on the variants
pub enum SwitchTable {
    /// Compact value range: `targets[v - min]`, `NONE32` = default.
    Dense {
        min: i64,
        targets: Vec<u32>,
        default: u32,
    },
    /// Sparse values: binary search over sorted keys.
    Sorted {
        keys: Vec<i64>,
        targets: Vec<u32>,
        default: u32,
    },
}

/// How one parameter is bound on function entry.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names are self-describing; semantics live on the variants
pub enum ParamBind {
    /// Scalar: convert for the declared type and store into the frame.
    Scalar { off: u32, class: TyClass },
    /// Aggregate: copy `size` words from the argument pointer.
    Agg { off: u32, size: u32 },
}

/// Per-function compiled metadata.
#[derive(Debug, Clone)]
pub struct FuncMeta {
    /// Entry pc, or [`NONE32`] for bodiless prototypes.
    pub entry: u32,
    /// Flat block-counter index of the entry block (bumped on call;
    /// all other block entries go through [`Op::EdgeJump`]).
    pub entry_block: u32,
    /// Frame size in words.
    pub frame_size: u32,
    /// Register-window size.
    pub max_regs: u32,
    /// Parameter bindings, in order.
    pub params: Vec<ParamBind>,
    /// Function name (for `Undefined` errors).
    pub name: String,
    /// The function's contiguous op range `[start, end)` in
    /// [`CompiledProgram::ops`] (`(0, 0)` for bodiless prototypes).
    /// All control flow is intra-function, so this range is closed
    /// under jumps — the optimizer lifts and relocates it wholesale.
    pub code: (u32, u32),
    /// Per-CFG-block start pc (indexed by `BlockId`), recorded so the
    /// optimizer can map lifted ops back to flowgraph blocks.
    pub block_pc: Vec<u32>,
}

/// A program lowered to bytecode: fully owned and `Send + Sync`, so
/// one compiled image can profile many inputs on concurrent threads.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The flat instruction stream, all functions concatenated.
    pub ops: Vec<Op>,
    /// Per-function metadata, indexed by `FuncId`.
    pub funcs: Vec<FuncMeta>,
    /// `main`'s id, if the program defines one.
    pub main: Option<FuncId>,
    /// Lowered `switch` lookup tables.
    pub switch_tables: Vec<SwitchTable>,
    /// Precompiled local initializer images (`InitStr` word arrays).
    pub images: Vec<Vec<Value>>,
    /// Interned runtime errors for `Op::Fail`.
    pub fails: Vec<RuntimeError>,
    /// The static data segment (globals + string literals), laid out
    /// exactly as the AST interpreter's `load_statics`.
    pub data_image: Vec<Value>,
    /// Flat block-counter layout: `block_base[f] + block`.
    pub block_base: Vec<u32>,
    /// Block-counter count per function (parallel to `block_base`).
    pub block_lens: Vec<u32>,
    /// Dense edge-counter keys, parallel to the runtime counter array.
    pub edge_keys: Vec<(FuncId, BlockId, BlockId)>,
    /// Number of registered branch sites.
    pub n_branches: usize,
    /// Number of registered call sites.
    pub n_sites: usize,
}

impl CompiledProgram {
    /// Executes the compiled program on one input.
    ///
    /// Observably identical to [`crate::run_ast`] on the same
    /// program: same exit code, output, step count, profile, and
    /// error — the proptest oracle in `tests/vm_oracle.rs` checks
    /// profile-for-profile equality on random programs.
    ///
    /// # Errors
    ///
    /// Returns the same [`RuntimeError`]s the AST interpreter would.
    pub fn execute(&self, config: &RunConfig) -> Result<RunOutcome, RuntimeError> {
        // One span per run; the dispatch loop itself is never probed —
        // step totals are read from the outcome after the fact.
        let _sp = obs::span("profiler.execute");
        let out = exec::execute(self, config);
        if obs::enabled() {
            obs::counter_add("profiler.runs", 1);
            if let Ok(o) = &out {
                obs::counter_add("profiler.steps", o.steps);
            }
        }
        out
    }

    /// [`Self::execute`] with caller-owned VM buffers: corpus-scale
    /// drivers that execute thousands of programs back-to-back keep
    /// one [`ExecScratch`] per worker and skip the per-run stack /
    /// register / counter-array allocations.
    ///
    /// # Errors
    ///
    /// Returns the same [`RuntimeError`]s as [`Self::execute`].
    pub fn execute_in(
        &self,
        config: &RunConfig,
        scratch: &mut ExecScratch,
    ) -> Result<RunOutcome, RuntimeError> {
        let _sp = obs::span("profiler.execute");
        let out = exec::execute_in(self, config, scratch);
        if obs::enabled() {
            obs::counter_add("profiler.runs", 1);
            if let Ok(o) = &out {
                obs::counter_add("profiler.steps", o.steps);
            }
        }
        out
    }

    /// [`Self::execute`] with exact reuse-distance tracing: every
    /// *data-segment* access (globals, string literals, `malloc`
    /// storage — never VM stack traffic) feeds an LRU stack-distance
    /// collector partitioned by the object map. The tap is a
    /// monomorphized generic, so the normal dispatch loop compiled for
    /// [`Self::execute`] stays probe-free; the traced instantiation
    /// additionally uses *checked* register/frame/data indexing, so a
    /// trace of a buggy program fails deterministically instead of
    /// reading garbage.
    ///
    /// The profile inside the returned [`RunOutcome`] is identical to
    /// the untraced one — tracing observes memory traffic and changes
    /// no frequency counter.
    ///
    /// # Errors
    ///
    /// Returns the same [`RuntimeError`]s as [`Self::execute`], plus
    /// out-of-stream program-counter errors that the unchecked build
    /// would turn into UB.
    pub fn execute_traced(
        &self,
        config: &RunConfig,
        objects: &ObjectMap,
    ) -> Result<(RunOutcome, ReuseTrace), RuntimeError> {
        let _sp = obs::span("reuse.trace");
        let mut tap = ReuseCollector::new(objects.clone());
        let mut scratch = ExecScratch::default();
        let out = exec::execute_tapped(self, config, &mut scratch, &mut tap)?;
        let trace = tap.finish();
        if obs::enabled() {
            obs::counter_add("reuse.traced_runs", 1);
            obs::counter_add("reuse.traced_accesses", trace.events);
        }
        Ok((out, trace))
    }

    /// 128-bit fingerprint of the post-fold IR: everything execution
    /// reads (ops, function metadata, switch tables, data image,
    /// initializer images). Two programs with the same fingerprint
    /// are observationally identical on every input, so corpus
    /// deduplication counts them once.
    ///
    /// Unlike the process-local compile-cache fingerprint, this one
    /// uses a fixed FNV-1a construction (the same as the artifact
    /// cache's key hash) and is stable across processes and runs.
    pub fn ir_fingerprint(&self) -> u128 {
        /// Two independently-salted 64-bit FNV-1a streams fed from one
        /// `Debug` rendering, without materializing the string.
        struct Fnv2 {
            a: u64,
            b: u64,
        }
        impl std::fmt::Write for Fnv2 {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for &byte in s.as_bytes() {
                    self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
                    self.b = (self.b ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
                }
                Ok(())
            }
        }
        let mut h = Fnv2 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0xcbf2_9ce4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15,
        };
        use std::fmt::Write as _;
        write!(
            h,
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.ops, self.funcs, self.main, self.switch_tables, self.images, self.data_image,
        )
        .expect("hashing cannot fail");
        ((h.a as u128) << 64) | h.b as u128
    }

    /// Summary sizes of the compiled image: `(ops, funcs, blocks,
    /// data words)`. Exposed so the artifact cache can persist
    /// bytecode metadata without reaching into `pub(crate)` fields.
    pub fn image_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.ops.len() as u64,
            self.funcs.len() as u64,
            self.block_lens.iter().map(|&n| u64::from(n)).sum(),
            self.data_image.len() as u64,
        )
    }

    /// An all-zero profile shaped like this program's.
    pub fn empty_profile(&self) -> Profile {
        Profile {
            block_counts: self
                .block_lens
                .iter()
                .map(|&n| vec![0; n as usize])
                .collect(),
            branch_counts: vec![(0, 0); self.n_branches],
            call_site_counts: vec![0; self.n_sites],
            func_counts: vec![0; self.funcs.len()],
            edge_counts: HashMap::new(),
            func_cost: vec![0; self.funcs.len()],
        }
    }
}

/// Compiles a program to bytecode (no caching — see [`run`] for the
/// cached path). Compilation is a single linear pass per CFG; the
/// suite compiles in well under a millisecond per program.
pub fn compile(program: &Program) -> CompiledProgram {
    let _sp = obs::span("profiler.compile");
    compile::compile(program)
}

/// Runs `main` on the bytecode VM and collects a profile.
///
/// Drop-in replacement for the old AST-walking `run`: same signature,
/// same observable behaviour. Programs are compiled once and cached
/// by a structural fingerprint, so re-running the same program on
/// many inputs (the suite, proptest loops) pays compilation once.
///
/// # Errors
///
/// Returns a [`RuntimeError`] on any dynamic error, exactly as
/// [`crate::run_ast`] would.
///
/// # Examples
///
/// ```
/// use profiler::{run, RunConfig};
///
/// let module = minic::compile(r#"
///     int main(void) {
///         int i, s = 0;
///         for (i = 0; i < 10; i++) s += i;
///         printf("%d\n", s);
///         return 0;
///     }
/// "#).unwrap();
/// let program = flowgraph::build_program(&module);
/// let out = run(&program, &RunConfig::default()).unwrap();
/// assert_eq!(out.stdout(), "45\n");
/// assert_eq!(out.exit_code, 0);
/// ```
pub fn run(program: &Program, config: &RunConfig) -> Result<RunOutcome, RuntimeError> {
    cached_compile(program).execute(config)
}

/// [`run`] with exact reuse-distance tracing (see
/// [`CompiledProgram::execute_traced`]). Uses the same compile-once
/// cache as [`run`]; the object map is derived from the module's
/// global layout.
///
/// # Errors
///
/// Returns the same [`RuntimeError`]s as [`run`].
pub fn run_traced(
    program: &Program,
    config: &RunConfig,
) -> Result<(RunOutcome, ReuseTrace), RuntimeError> {
    let objects = ObjectMap::for_module(&program.module);
    cached_compile(program).execute_traced(config, &objects)
}

/// Upper bound on cached compiled programs; the cache is cleared when
/// it fills (tests and proptest loops churn many tiny programs).
const CACHE_CAP: usize = 64;

fn cache() -> &'static Mutex<HashMap<u128, Arc<CompiledProgram>>> {
    static CACHE: OnceLock<Mutex<HashMap<u128, Arc<CompiledProgram>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Compile with a content-addressed cache: the key is a 128-bit
/// structural fingerprint, so the cache stays correct when a caller
/// rebuilds an identical `Program` at a different address (and when a
/// new program reuses a dropped one's address).
pub(crate) fn cached_compile(program: &Program) -> Arc<CompiledProgram> {
    let key = fingerprint(program);
    let map = cache().lock().expect("compile cache poisoned");
    if let Some(hit) = map.get(&key) {
        obs::counter_add("profiler.cache.hits", 1);
        return Arc::clone(hit);
    }
    drop(map); // don't hold the lock across compilation
    obs::counter_add("profiler.cache.misses", 1);
    let compiled = Arc::new(compile(program));
    let mut map = cache().lock().expect("compile cache poisoned");
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(key, Arc::clone(&compiled));
    compiled
}

/// 128-bit structural fingerprint: the `Debug` rendering of the whole
/// program streamed through two differently-salted hashers. Covers
/// everything compilation reads (module, side tables, CFGs).
fn fingerprint(program: &Program) -> u128 {
    struct TwoHash {
        a: DefaultHasher,
        b: DefaultHasher,
    }
    impl std::fmt::Write for TwoHash {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.a.write(s.as_bytes());
            self.b.write(s.as_bytes());
            Ok(())
        }
    }
    let mut h = TwoHash {
        a: DefaultHasher::new(),
        b: DefaultHasher::new(),
    };
    h.b.write_u64(0x9E3779B97F4A7C15); // salt the second stream
    use std::fmt::Write as _;
    write!(h, "{program:?}").expect("hashing cannot fail");
    ((h.a.finish() as u128) << 64) | h.b.finish() as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_program_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledProgram>();
    }

    #[test]
    fn ops_stay_small() {
        // The dispatch loop streams these; keep them cache-friendly.
        assert!(
            std::mem::size_of::<Op>() <= 24,
            "{}",
            std::mem::size_of::<Op>()
        );
    }

    #[test]
    fn cache_hits_are_shared() {
        let module = minic::compile("int main(void) { return 7; }").unwrap();
        let program = flowgraph::build_program(&module);
        let a = cached_compile(&program);
        let b = cached_compile(&program);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_programs_get_distinct_code() {
        let m1 = minic::compile("int main(void) { return 1; }").unwrap();
        let m2 = minic::compile("int main(void) { return 2; }").unwrap();
        let p1 = flowgraph::build_program(&m1);
        let p2 = flowgraph::build_program(&m2);
        let c1 = cached_compile(&p1);
        let c2 = cached_compile(&p2);
        assert_eq!(c1.execute(&RunConfig::default()).unwrap().exit_code, 1);
        assert_eq!(c2.execute(&RunConfig::default()).unwrap().exit_code, 2);
    }
}
