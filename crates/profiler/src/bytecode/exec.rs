//! The bytecode dispatch loop.
//!
//! A single non-recursive loop over the flat op stream with an
//! explicit frame stack — MiniC recursion no longer nests Rust stack
//! frames, so no oversized interpreter thread is needed. Registers
//! live in one shared vector addressed through a per-frame window
//! base (`rp`); memory is the interpreter's exact model (word
//! addressed, NULL = 0, static data + heap low, stack above
//! [`STACK_BASE`]).
//!
//! Builtin shims reuse three persistent `String` buffers instead of
//! allocating per call (`read_cstring`/`format` in the AST walker
//! built fresh `String`s on every `printf`/`strcmp`). The quirky
//! byte-to-`char` semantics of the originals (bytes ≥ 128 widen to
//! two UTF-8 bytes in `strlen`, `%s`, `strncpy`, …) are preserved
//! exactly — the differential oracle covers them.

use super::{ArithMode, CompiledProgram, Op, ParamBind, SwitchTable, NONE32};
use crate::interp::{
    convert_for_class, RunConfig, RunOutcome, RuntimeError, Value, CALL_COST, STACK_BASE,
};
use crate::reuse::{MemTap, NoTap};
use minic::ast::BinOp;
use minic::builtins::Builtin;
use std::cmp::Ordering;

/// Non-local control flow out of a builtin or the dispatch loop.
enum VmAbort {
    Error(RuntimeError),
    Exit(i64),
}

impl From<RuntimeError> for VmAbort {
    fn from(e: RuntimeError) -> Self {
        VmAbort::Error(e)
    }
}

struct Frame {
    ret_pc: usize,
    ret_dst: u16,
    func: usize,
    fp: usize,
    rp: usize,
}

struct Vm<'a, T: MemTap> {
    cp: &'a CompiledProgram,
    /// Data-segment access probe ([`NoTap`] in normal runs — the
    /// `T::ACTIVE` checks below monomorphize away entirely).
    tap: &'a mut T,
    data: Vec<Value>,
    stack: Vec<Value>,
    regs: Vec<Value>,
    frames: Vec<Frame>,
    fp: usize,
    rp: usize,
    cur_fn: usize,
    steps: u64,
    max_steps: u64,
    depth: usize,
    max_depth: usize,
    input: &'a [u8],
    input_pos: usize,
    output: Vec<u8>,
    rng: u64,
    // Dense profile counters (reshaped into a `Profile` at the end).
    blocks: Vec<u64>,
    edges: Vec<u64>,
    branches: Vec<(u64, u64)>,
    sites: Vec<u64>,
    func_counts: Vec<u64>,
    func_cost: Vec<u64>,
    // Reusable builtin string buffers.
    sbuf_a: String,
    sbuf_b: String,
    fmt_out: String,
}

/// Reusable per-run VM buffers: the data image copy, stack, register
/// file, frame stack, dense block/edge counters, and builtin string
/// buffers. One run of a ~12k-step generated program otherwise pays
/// ten-plus allocations; a corpus run re-executing thousands of
/// programs on one scratch pays them once and then only grows to the
/// high-water mark. Buffers that escape into the [`RunOutcome`]
/// (profile vectors, output) still allocate per run.
#[derive(Default)]
pub struct ExecScratch {
    data: Vec<Value>,
    stack: Vec<Value>,
    regs: Vec<Value>,
    frames: Vec<Frame>,
    blocks: Vec<u64>,
    edges: Vec<u64>,
    sbuf_a: String,
    sbuf_b: String,
    fmt_out: String,
}

impl ExecScratch {
    /// Releases any buffer whose capacity grew past `max_elems`
    /// elements. Scratches were built for one-shot corpus runs, where
    /// growing to the corpus high-water mark is the whole point; a
    /// resident service that keeps scratches for its process lifetime
    /// must instead shed the occasional deep-recursion or huge-program
    /// outlier, or every worker permanently retains the worst case it
    /// ever executed.
    pub fn trim(&mut self, max_elems: usize) {
        fn shed<T>(v: &mut Vec<T>, cap: usize) {
            if v.capacity() > cap {
                *v = Vec::new();
            }
        }
        shed(&mut self.data, max_elems);
        shed(&mut self.stack, max_elems);
        shed(&mut self.regs, max_elems);
        shed(&mut self.frames, max_elems);
        shed(&mut self.blocks, max_elems);
        shed(&mut self.edges, max_elems);
        for s in [&mut self.sbuf_a, &mut self.sbuf_b, &mut self.fmt_out] {
            if s.capacity() > max_elems {
                *s = String::new();
            }
        }
    }

    /// The largest element capacity across the recycled buffers —
    /// what [`ExecScratch::trim`] bounds; exposed so lifetime tests
    /// can assert the bound without reaching into the fields.
    pub fn high_water(&self) -> usize {
        self.data
            .capacity()
            .max(self.stack.capacity())
            .max(self.regs.capacity())
            .max(self.frames.capacity())
            .max(self.blocks.capacity())
            .max(self.edges.capacity())
            .max(self.sbuf_a.capacity())
            .max(self.sbuf_b.capacity())
            .max(self.fmt_out.capacity())
    }
}

pub(super) fn execute(
    cp: &CompiledProgram,
    config: &RunConfig,
) -> Result<RunOutcome, RuntimeError> {
    execute_in(cp, config, &mut ExecScratch::default())
}

pub(super) fn execute_in(
    cp: &CompiledProgram,
    config: &RunConfig,
    scratch: &mut ExecScratch,
) -> Result<RunOutcome, RuntimeError> {
    execute_tapped(cp, config, scratch, &mut NoTap)
}

/// The generic engine: runs `cp` with `tap` observing every
/// data-segment access. With [`NoTap`] this monomorphizes to the
/// probe-free fast path `execute_in` has always been; with an active
/// tap every register/frame/data accessor additionally switches to
/// checked indexing (see the accessor comments below).
pub(super) fn execute_tapped<T: MemTap>(
    cp: &CompiledProgram,
    config: &RunConfig,
    scratch: &mut ExecScratch,
    tap: &mut T,
) -> Result<RunOutcome, RuntimeError> {
    let main = cp.main.ok_or(RuntimeError::NoMain)?;
    // Move the recycled buffers into the Vm (pointer swaps), reset
    // their contents, and hand them back below. `clear` + zero-fill
    // keeps each buffer's capacity.
    let mut data = std::mem::take(&mut scratch.data);
    data.clear();
    data.extend_from_slice(&cp.data_image);
    let mut stack = std::mem::take(&mut scratch.stack);
    stack.clear();
    let mut regs = std::mem::take(&mut scratch.regs);
    regs.clear();
    let mut frames = std::mem::take(&mut scratch.frames);
    frames.clear();
    let mut blocks = std::mem::take(&mut scratch.blocks);
    blocks.clear();
    blocks.resize(
        cp.block_lens.iter().map(|&n| n as u64).sum::<u64>() as usize,
        0,
    );
    let mut edges = std::mem::take(&mut scratch.edges);
    edges.clear();
    edges.resize(cp.edge_keys.len(), 0);
    let mut vm = Vm {
        cp,
        tap,
        data,
        stack,
        regs,
        frames,
        fp: 0,
        rp: 0,
        cur_fn: main.0 as usize,
        steps: 0,
        max_steps: config.max_steps,
        depth: 0,
        max_depth: config.max_call_depth,
        input: &config.input,
        input_pos: 0,
        output: Vec::new(),
        rng: 0x2545F4914F6CDD1D,
        blocks,
        edges,
        branches: vec![(0, 0); cp.n_branches],
        sites: vec![0; cp.n_sites],
        func_counts: vec![0; cp.funcs.len()],
        func_cost: vec![0; cp.funcs.len()],
        sbuf_a: std::mem::take(&mut scratch.sbuf_a),
        sbuf_b: std::mem::take(&mut scratch.sbuf_b),
        fmt_out: std::mem::take(&mut scratch.fmt_out),
    };
    let run_result = vm.run(main.0 as usize);

    let mut profile = cp.empty_profile();
    for (f, counts) in profile.block_counts.iter_mut().enumerate() {
        let base = cp.block_base[f] as usize;
        let len = counts.len();
        counts.copy_from_slice(&vm.blocks[base..base + len]);
    }
    profile.branch_counts = vm.branches;
    profile.call_site_counts = vm.sites;
    profile.func_counts = vm.func_counts;
    profile.func_cost = vm.func_cost;
    for (i, &c) in vm.edges.iter().enumerate() {
        if c > 0 {
            profile.edge_counts.insert(cp.edge_keys[i], c);
        }
    }

    scratch.data = vm.data;
    scratch.stack = vm.stack;
    scratch.regs = vm.regs;
    scratch.frames = vm.frames;
    scratch.blocks = vm.blocks;
    scratch.edges = vm.edges;
    scratch.sbuf_a = vm.sbuf_a;
    scratch.sbuf_b = vm.sbuf_b;
    scratch.fmt_out = vm.fmt_out;

    let exit_code = match run_result {
        Ok(code) => code,
        Err(VmAbort::Exit(code)) => code,
        Err(VmAbort::Error(e)) => return Err(e),
    };
    Ok(RunOutcome {
        exit_code,
        profile,
        output: vm.output,
        steps: vm.steps,
    })
}

impl<'a, T: MemTap> Vm<'a, T> {
    // ----- memory (identical to the AST interpreter's) -----

    fn load(&mut self, addr: u64) -> Result<Value, RuntimeError> {
        load_mem(&mut *self.tap, &self.data, &self.stack, addr)
    }

    fn store(&mut self, addr: u64, v: Value) -> Result<(), RuntimeError> {
        store_mem(&mut *self.tap, &mut self.data, &mut self.stack, addr, v)
    }

    fn copy_words(&mut self, dst: u64, src: u64, n: usize) -> Result<(), RuntimeError> {
        for i in 0..n as u64 {
            let v = self.load(src + i)?;
            self.store(dst + i, v)?;
        }
        Ok(())
    }

    fn alloc_static(&mut self, words: usize) -> u64 {
        let addr = self.data.len() as u64 + 1;
        self.data.extend(std::iter::repeat_n(Value::Int(0), words));
        addr
    }

    // ----- registers and frame slots -----
    //
    // The hot accessors skip bounds checks: the compiler guarantees
    // every register operand is `< max_regs` (the `touch` watermark)
    // and every frame offset is `< frame_size` (sema's layout), and
    // `enter`/`run` size the register window and frame before any op
    // of the function executes. Debug builds keep the assertions.
    //
    // Trace mode (`T::ACTIVE`) switches every one of them to checked
    // indexing with a deterministic fallback (reads yield `Int(0)`,
    // writes become no-ops): a reuse trace of a program that trips a
    // compiler-invariant bug must read garbage *deterministically*,
    // never exercise UB. The branch is compile-time, so the normal
    // dispatch loop keeps the unchecked fast path.

    #[inline(always)]
    fn reg(&self, r: u16) -> Value {
        let i = self.rp + r as usize;
        if T::ACTIVE {
            return self.regs.get(i).copied().unwrap_or(Value::Int(0));
        }
        debug_assert!(i < self.regs.len());
        // SAFETY: see above — `rp + max_regs <= regs.len()` holds
        // between `enter`/`Ret` transitions, and `r < max_regs`.
        unsafe { *self.regs.get_unchecked(i) }
    }

    #[inline(always)]
    fn set_reg(&mut self, r: u16, v: Value) {
        let i = self.rp + r as usize;
        if T::ACTIVE {
            if let Some(slot) = self.regs.get_mut(i) {
                *slot = v;
            }
            return;
        }
        debug_assert!(i < self.regs.len());
        // SAFETY: as in `reg`.
        unsafe { *self.regs.get_unchecked_mut(i) = v }
    }

    #[inline(always)]
    fn local(&self, off: u32) -> Value {
        let i = self.fp + off as usize;
        if T::ACTIVE {
            return self.stack.get(i).copied().unwrap_or(Value::Int(0));
        }
        debug_assert!(i < self.stack.len());
        // SAFETY: `fp + frame_size <= stack.len()` for the running
        // frame, and every compiled offset is `< frame_size`.
        unsafe { *self.stack.get_unchecked(i) }
    }

    #[inline(always)]
    fn set_local(&mut self, off: u32, v: Value) {
        let i = self.fp + off as usize;
        if T::ACTIVE {
            if let Some(slot) = self.stack.get_mut(i) {
                *slot = v;
            }
            return;
        }
        debug_assert!(i < self.stack.len());
        // SAFETY: as in `local`.
        unsafe { *self.stack.get_unchecked_mut(i) = v }
    }

    #[inline(always)]
    fn global(&self, idx: u32) -> Value {
        if T::ACTIVE {
            return self
                .data
                .get(idx as usize)
                .copied()
                .unwrap_or(Value::Int(0));
        }
        debug_assert!((idx as usize) < self.data.len());
        // SAFETY: global indices address the static image laid out at
        // compile time, and `data` only ever grows (malloc appends).
        unsafe { *self.data.get_unchecked(idx as usize) }
    }

    #[inline(always)]
    fn set_global(&mut self, idx: u32, v: Value) {
        if T::ACTIVE {
            if let Some(slot) = self.data.get_mut(idx as usize) {
                *slot = v;
            }
            return;
        }
        debug_assert!((idx as usize) < self.data.len());
        // SAFETY: as in `global`.
        unsafe { *self.data.get_unchecked_mut(idx as usize) = v }
    }

    /// The data-segment word address of global slot `idx` (the image
    /// is 1-based: address 0 is NULL).
    #[inline(always)]
    fn global_addr(idx: u32) -> u64 {
        idx as u64 + 1
    }

    // ----- profile counters -----

    #[inline]
    fn bump_branch(&mut self, branch: u32, taken: bool) {
        if branch != NONE32 {
            let slot = &mut self.branches[branch as usize];
            if taken {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }

    // ----- calls -----

    /// Push a frame and return `f`'s entry pc. The callee's entry pc
    /// must be valid (the compiler guarantees it for direct calls;
    /// indirect calls check before entering).
    fn enter(
        &mut self,
        f: usize,
        argbase: u16,
        nargs: u16,
        dst: u16,
        ret_pc: usize,
    ) -> Result<usize, RuntimeError> {
        if self.depth >= self.max_depth {
            return Err(RuntimeError::StackOverflow {
                limit: self.max_depth,
            });
        }
        self.depth += 1;
        let meta = &self.cp.funcs[f];
        self.frames.push(Frame {
            ret_pc,
            ret_dst: dst,
            func: self.cur_fn,
            fp: self.fp,
            rp: self.rp,
        });
        let new_fp = self.stack.len();
        self.stack
            .extend(std::iter::repeat_n(Value::Int(0), meta.frame_size as usize));
        self.func_counts[f] += 1;
        self.func_cost[f] += CALL_COST;
        self.blocks[meta.entry_block as usize] += 1;
        let new_rp = self.rp + self.cp.funcs[self.cur_fn].max_regs as usize;
        if self.regs.len() < new_rp + meta.max_regs as usize {
            self.regs
                .resize(new_rp + meta.max_regs as usize, Value::Int(0));
        }
        // Bind parameters (structs are copied by value).
        for i in 0..(nargs as usize).min(meta.params.len()) {
            let arg = self.regs[self.rp + argbase as usize + i];
            match self.cp.funcs[f].params[i] {
                ParamBind::Scalar { off, class } => {
                    self.stack[new_fp + off as usize] = convert_for_class(class, arg);
                }
                ParamBind::Agg { off, size } => {
                    let dst_addr = STACK_BASE + (new_fp + off as usize) as u64;
                    self.copy_words(dst_addr, arg.to_ptr(), size as usize)?;
                }
            }
        }
        self.fp = new_fp;
        self.rp = new_rp;
        self.cur_fn = f;
        Ok(self.cp.funcs[f].entry as usize)
    }

    // ----- the dispatch loop -----

    fn run(&mut self, main: usize) -> Result<i64, VmAbort> {
        let meta = &self.cp.funcs[main];
        if meta.entry == NONE32 {
            return Err(RuntimeError::Undefined {
                name: meta.name.clone(),
            }
            .into());
        }
        if self.depth >= self.max_depth {
            return Err(RuntimeError::StackOverflow {
                limit: self.max_depth,
            }
            .into());
        }
        self.depth = 1;
        self.stack
            .extend(std::iter::repeat_n(Value::Int(0), meta.frame_size as usize));
        self.regs.resize(meta.max_regs as usize, Value::Int(0));
        self.func_counts[main] += 1;
        self.func_cost[main] += CALL_COST;
        self.blocks[meta.entry_block as usize] += 1;
        self.cur_fn = main;
        self.fp = 0;
        self.rp = 0;

        // The hot VM state lives in locals: `pc` and `steps` would
        // otherwise cost a memory round-trip per dispatched op, and
        // `cost_acc` batches `func_cost[cur_fn]` updates between
        // function transitions. They are written back to `self` only
        // where someone can observe them: calls/returns for the cost,
        // the final return and `exit()` for the step count.
        let cp = self.cp;
        let max_steps = self.max_steps;
        let mut pc = meta.entry as usize;
        let mut steps: u64 = 0;
        let mut cost_acc: u64 = 0;

        macro_rules! tick {
            ($n:expr) => {{
                let n = $n;
                if n != 0 {
                    steps += n as u64;
                    cost_acc += n as u64;
                    if steps > max_steps {
                        return Err(RuntimeError::StepLimit { limit: max_steps }.into());
                    }
                }
            }};
        }

        loop {
            let op = if T::ACTIVE {
                // Trace mode: a wild pc (a compiler bug) must fail
                // deterministically, not read past the op stream.
                match cp.ops.get(pc) {
                    Some(&op) => op,
                    None => {
                        return Err(
                            RuntimeError::Other(format!("pc {pc} outside the op stream")).into(),
                        )
                    }
                }
            } else {
                debug_assert!(pc < cp.ops.len());
                // SAFETY: `pc` is either a compiler-emitted jump target
                // or the successor of a non-terminating op; every block
                // ends in a control transfer, so execution cannot run
                // off the end of the stream.
                unsafe { *cp.ops.get_unchecked(pc) }
            };
            pc += 1;
            match op {
                Op::Tick(n) => tick!(n),
                Op::BumpSite(i) => self.sites[i as usize] += 1,
                Op::BumpFunc(f) => {
                    let f = f as usize;
                    self.func_counts[f] += 1;
                    self.blocks[cp.funcs[f].entry_block as usize] += 1;
                }
                Op::BumpBranch { branch, taken } => self.bump_branch(branch, taken),
                Op::Mov { dst, src } => {
                    let v = self.reg(src);
                    self.set_reg(dst, v);
                }
                Op::Const { dst, v } => self.set_reg(dst, v),
                Op::LeaLocal { dst, off } => {
                    let addr = STACK_BASE + (self.fp + off as usize) as u64;
                    self.set_reg(dst, Value::Ptr(addr));
                }
                Op::LoadLocal { dst, off } => {
                    let v = self.local(off);
                    self.set_reg(dst, v);
                }
                Op::LoadLocal2 { dst, off_a, off_b } => {
                    let a = self.local(off_a);
                    let b = self.local(off_b);
                    self.set_reg(dst, a);
                    self.set_reg(dst + 1, b);
                }
                Op::LoadLocalImm { dst, off, imm } => {
                    let a = self.local(off);
                    self.set_reg(dst, a);
                    self.set_reg(dst + 1, Value::Int(imm));
                }
                Op::StoreLocal {
                    off,
                    src,
                    class,
                    dst,
                } => {
                    let v = convert_for_class(class, self.reg(src));
                    self.set_local(off, v);
                    self.set_reg(dst, v);
                }
                Op::LoadGlobal { dst, idx } => {
                    let v = self.global(idx);
                    if T::ACTIVE {
                        self.tap.access(Self::global_addr(idx));
                    }
                    self.set_reg(dst, v);
                }
                Op::StoreGlobal {
                    idx,
                    src,
                    class,
                    dst,
                } => {
                    let v = convert_for_class(class, self.reg(src));
                    self.set_global(idx, v);
                    if T::ACTIVE {
                        self.tap.access(Self::global_addr(idx));
                    }
                    self.set_reg(dst, v);
                }
                Op::Load { dst, addr, tick } => {
                    tick!(tick);
                    let v = self.load(self.reg(addr).to_ptr())?;
                    self.set_reg(dst, v);
                }
                Op::Store {
                    addr,
                    src,
                    class,
                    dst,
                    tick,
                } => {
                    tick!(tick);
                    let v = convert_for_class(class, self.reg(src));
                    self.store(self.reg(addr).to_ptr(), v)?;
                    self.set_reg(dst, v);
                }
                Op::CopyWords {
                    dst_addr,
                    src,
                    n,
                    dst,
                    tick,
                } => {
                    tick!(tick);
                    let d = self.reg(dst_addr).to_ptr();
                    let s = self.reg(src).to_ptr();
                    self.copy_words(d, s, n as usize)?;
                    self.set_reg(dst, Value::Ptr(d));
                }
                Op::InitWordsLocal { off, img } => {
                    let img = &self.cp.images[img as usize];
                    let base = self.fp + off as usize;
                    self.stack[base..base + img.len()].copy_from_slice(img);
                }
                Op::ZeroLocal { off, len } => {
                    let base = self.fp + off as usize;
                    self.stack[base..base + len as usize].fill(Value::Int(0));
                }
                Op::ToPtr { dst, src } => {
                    let v = Value::Ptr(self.reg(src).to_ptr());
                    self.set_reg(dst, v);
                }
                Op::Bool { dst, src } => {
                    let v = Value::Int(self.reg(src).truthy() as i64);
                    self.set_reg(dst, v);
                }
                Op::LogicNot { dst, src } => {
                    let v = Value::Int(!self.reg(src).truthy() as i64);
                    self.set_reg(dst, v);
                }
                Op::Neg { dst, src } => {
                    let v = match self.reg(src) {
                        Value::Float(f) => Value::Float(-f),
                        other => Value::Int(other.to_int().wrapping_neg()),
                    };
                    self.set_reg(dst, v);
                }
                Op::BitNot { dst, src } => {
                    let v = Value::Int(!self.reg(src).to_int());
                    self.set_reg(dst, v);
                }
                Op::Conv { dst, src, class } => {
                    let v = convert_for_class(class, self.reg(src));
                    self.set_reg(dst, v);
                }
                Op::IndexAddr {
                    dst,
                    base,
                    idx,
                    elem,
                } => {
                    let b = self.reg(base).to_ptr();
                    let i = self.reg(idx).to_int();
                    let addr = b.wrapping_add_signed(i.wrapping_mul(elem as i64));
                    self.set_reg(dst, Value::Ptr(addr));
                }
                Op::IndexAddrLL {
                    dst,
                    off_a,
                    off_b,
                    elem,
                } => {
                    let b = self.local(off_a).to_ptr();
                    let i = self.local(off_b).to_int();
                    let addr = b.wrapping_add_signed(i.wrapping_mul(elem as i64));
                    self.set_reg(dst, Value::Ptr(addr));
                }
                Op::IndexAddrPL {
                    dst,
                    base,
                    idx_off,
                    elem,
                } => {
                    let i = self.local(idx_off).to_int();
                    let addr = base.wrapping_add_signed(i.wrapping_mul(elem as i64));
                    self.set_reg(dst, Value::Ptr(addr));
                }
                Op::IndexAddrLeaL {
                    dst,
                    lea_off,
                    idx_off,
                    elem,
                } => {
                    let b = STACK_BASE + (self.fp + lea_off as usize) as u64;
                    let i = self.local(idx_off).to_int();
                    let addr = b.wrapping_add_signed(i.wrapping_mul(elem as i64));
                    self.set_reg(dst, Value::Ptr(addr));
                }
                Op::LoadIdx {
                    dst,
                    base,
                    idx,
                    elem,
                    tick,
                } => {
                    tick!(tick);
                    let b = self.reg(base).to_ptr();
                    let i = self.reg(idx).to_int();
                    let v = self.load(b.wrapping_add_signed(i.wrapping_mul(elem as i64)))?;
                    self.set_reg(dst, v);
                }
                Op::LoadIdxLL {
                    dst,
                    off_a,
                    off_b,
                    elem,
                    tick,
                } => {
                    tick!(tick);
                    let b = self.local(off_a).to_ptr();
                    let i = self.local(off_b).to_int();
                    let v = self.load(b.wrapping_add_signed(i.wrapping_mul(elem as i64)))?;
                    self.set_reg(dst, v);
                }
                Op::LoadIdxPL {
                    dst,
                    base,
                    idx_off,
                    elem,
                    tick,
                } => {
                    tick!(tick);
                    let i = self.local(idx_off).to_int();
                    let v = self.load(base.wrapping_add_signed(i.wrapping_mul(elem as i64)))?;
                    self.set_reg(dst, v);
                }
                Op::LoadIdxLeaL {
                    dst,
                    lea_off,
                    idx_off,
                    elem,
                    tick,
                } => {
                    tick!(tick);
                    let b = STACK_BASE + (self.fp + lea_off as usize) as u64;
                    let i = self.local(idx_off).to_int();
                    let v = self.load(b.wrapping_add_signed(i.wrapping_mul(elem as i64)))?;
                    self.set_reg(dst, v);
                }
                Op::MemberAddr {
                    dst,
                    src,
                    off,
                    tick,
                } => {
                    tick!(tick);
                    let base = self.reg(src).to_ptr();
                    if base == 0 {
                        return Err(RuntimeError::NullDeref.into());
                    }
                    self.set_reg(dst, Value::Ptr(base + off as u64));
                }
                Op::IncDecLocal {
                    dst,
                    off,
                    delta,
                    post,
                } => {
                    let old = self.local(off);
                    let new = incdec(old, delta);
                    self.set_local(off, new);
                    self.set_reg(dst, if post { old } else { new });
                }
                Op::IncDecGlobal {
                    dst,
                    idx,
                    delta,
                    post,
                } => {
                    let old = self.global(idx);
                    if T::ACTIVE {
                        self.tap.access(Self::global_addr(idx));
                    }
                    let new = incdec(old, delta);
                    self.set_global(idx, new);
                    if T::ACTIVE {
                        self.tap.access(Self::global_addr(idx));
                    }
                    self.set_reg(dst, if post { old } else { new });
                }
                Op::IncDec {
                    dst,
                    addr,
                    delta,
                    post,
                    tick,
                } => {
                    tick!(tick);
                    let a = self.reg(addr).to_ptr();
                    let old = self.load(a)?;
                    let new = incdec(old, delta);
                    self.store(a, new)?;
                    self.set_reg(dst, if post { old } else { new });
                }
                Op::Arith {
                    dst,
                    a,
                    b,
                    mode,
                    tick,
                } => {
                    tick!(tick);
                    let v = arith(mode, self.reg(a), self.reg(b))?;
                    self.set_reg(dst, v);
                }
                Op::ArithLL {
                    dst,
                    off_a,
                    off_b,
                    mode,
                    tick,
                } => {
                    tick!(tick);
                    let a = self.local(off_a);
                    let b = self.local(off_b);
                    let v = arith(mode, a, b)?;
                    self.set_reg(dst, v);
                }
                Op::ArithLI {
                    dst,
                    off,
                    imm,
                    mode,
                    tick,
                } => {
                    tick!(tick);
                    let a = self.local(off);
                    let v = arith(mode, a, Value::Int(imm as i64))?;
                    self.set_reg(dst, v);
                }
                Op::ArithRL {
                    dst,
                    off,
                    mode,
                    tick,
                } => {
                    tick!(tick);
                    let b = self.local(off);
                    let v = arith(mode, self.reg(dst), b)?;
                    self.set_reg(dst, v);
                }
                Op::ArithRI {
                    dst,
                    imm,
                    mode,
                    tick,
                } => {
                    tick!(tick);
                    let v = arith(mode, self.reg(dst), Value::Int(imm as i64))?;
                    self.set_reg(dst, v);
                }
                Op::StoreRR {
                    off,
                    a,
                    b,
                    mode,
                    class,
                    dst,
                } => {
                    let v = convert_for_class(class, arith(mode, self.reg(a), self.reg(b))?);
                    self.set_local(off, v);
                    self.set_reg(dst, v);
                }
                Op::StoreLL {
                    off,
                    off_a,
                    off_b,
                    mode,
                    class,
                    dst,
                } => {
                    let a = self.local(off_a);
                    let b = self.local(off_b);
                    let v = convert_for_class(class, arith(mode, a, b)?);
                    self.set_local(off, v);
                    self.set_reg(dst, v);
                }
                Op::StoreLI {
                    off,
                    off_a,
                    imm,
                    mode,
                    class,
                    dst,
                } => {
                    let a = self.local(off_a);
                    let v = convert_for_class(class, arith(mode, a, Value::Int(imm as i64))?);
                    self.set_local(off, v);
                    self.set_reg(dst, v);
                }
                Op::StoreRL {
                    off,
                    off_b,
                    mode,
                    class,
                    dst,
                } => {
                    let b = self.local(off_b);
                    let v = convert_for_class(class, arith(mode, self.reg(dst), b)?);
                    self.set_local(off, v);
                    self.set_reg(dst, v);
                }
                Op::StoreRI {
                    off,
                    imm,
                    mode,
                    class,
                    dst,
                } => {
                    let a = self.reg(dst);
                    let v = convert_for_class(class, arith(mode, a, Value::Int(imm as i64))?);
                    self.set_local(off, v);
                    self.set_reg(dst, v);
                }
                Op::RmwLocal {
                    off,
                    src,
                    mode,
                    class,
                    dst,
                    tick,
                } => {
                    tick!(tick);
                    let cur = self.local(off);
                    let v = convert_for_class(class, arith(mode, cur, self.reg(src))?);
                    self.set_local(off, v);
                    self.set_reg(dst, v);
                }
                Op::RmwGlobal {
                    idx,
                    src,
                    mode,
                    class,
                    dst,
                    tick,
                } => {
                    tick!(tick);
                    let cur = self.global(idx);
                    if T::ACTIVE {
                        self.tap.access(Self::global_addr(idx));
                    }
                    let v = convert_for_class(class, arith(mode, cur, self.reg(src))?);
                    self.set_global(idx, v);
                    if T::ACTIVE {
                        self.tap.access(Self::global_addr(idx));
                    }
                    self.set_reg(dst, v);
                }
                Op::Rmw {
                    addr,
                    src,
                    mode,
                    class,
                    dst,
                    tick,
                } => {
                    tick!(tick);
                    let a = self.reg(addr).to_ptr();
                    let cur = self.load(a)?;
                    let v = convert_for_class(class, arith(mode, cur, self.reg(src))?);
                    self.store(a, v)?;
                    self.set_reg(dst, v);
                }
                Op::Jump { target, tick } => {
                    tick!(tick);
                    pc = target as usize;
                }
                Op::JumpIfFalse { src, target, tick } => {
                    tick!(tick);
                    if !self.reg(src).truthy() {
                        pc = target as usize;
                    }
                }
                Op::JumpIfTrue { src, target, tick } => {
                    tick!(tick);
                    if self.reg(src).truthy() {
                        pc = target as usize;
                    }
                }
                Op::CondBranch {
                    src,
                    branch,
                    else_target,
                    tick,
                } => {
                    tick!(tick);
                    let taken = self.reg(src).truthy();
                    self.bump_branch(branch, taken);
                    if !taken {
                        pc = else_target as usize;
                    }
                }
                Op::CmpBranchLL {
                    off_a,
                    off_b,
                    op,
                    branch,
                    else_target,
                    tick,
                } => {
                    tick!(tick);
                    let a = self.local(off_a);
                    let b = self.local(off_b);
                    let taken = cmp_vals(op, a, b);
                    self.bump_branch(branch, taken);
                    if !taken {
                        pc = else_target as usize;
                    }
                }
                Op::CmpBranchLI {
                    off,
                    imm,
                    op,
                    branch,
                    else_target,
                    tick,
                } => {
                    tick!(tick);
                    let a = self.local(off);
                    let taken = cmp_vals(op, a, Value::Int(imm as i64));
                    self.bump_branch(branch, taken);
                    if !taken {
                        pc = else_target as usize;
                    }
                }
                Op::CmpBranchRR {
                    a,
                    b,
                    op,
                    branch,
                    else_target,
                    tick,
                } => {
                    tick!(tick);
                    let taken = cmp_vals(op, self.reg(a), self.reg(b));
                    self.bump_branch(branch, taken);
                    if !taken {
                        pc = else_target as usize;
                    }
                }
                Op::CmpBranchRL {
                    a,
                    off,
                    op,
                    branch,
                    else_target,
                    tick,
                } => {
                    tick!(tick);
                    let b = self.local(off);
                    let taken = cmp_vals(op, self.reg(a), b);
                    self.bump_branch(branch, taken);
                    if !taken {
                        pc = else_target as usize;
                    }
                }
                Op::CmpBranchRI {
                    a,
                    imm,
                    op,
                    branch,
                    else_target,
                    tick,
                } => {
                    tick!(tick);
                    let taken = cmp_vals(op, self.reg(a), Value::Int(imm as i64));
                    self.bump_branch(branch, taken);
                    if !taken {
                        pc = else_target as usize;
                    }
                }
                Op::EdgeJump {
                    edge,
                    block,
                    target,
                    tick,
                } => {
                    tick!(tick);
                    self.edges[edge as usize] += 1;
                    self.blocks[block as usize] += 1;
                    pc = target as usize;
                }
                Op::SwitchJump { src, table, tick } => {
                    tick!(tick);
                    let v = self.reg(src).to_int();
                    pc = match &cp.switch_tables[table as usize] {
                        SwitchTable::Dense {
                            min,
                            targets,
                            default,
                        } => {
                            let off = v as i128 - *min as i128;
                            if off >= 0 && (off as usize) < targets.len() {
                                let t = targets[off as usize];
                                if t == NONE32 {
                                    *default as usize
                                } else {
                                    t as usize
                                }
                            } else {
                                *default as usize
                            }
                        }
                        SwitchTable::Sorted {
                            keys,
                            targets,
                            default,
                        } => match keys.binary_search(&v) {
                            Ok(i) => targets[i] as usize,
                            Err(_) => *default as usize,
                        },
                    };
                }
                Op::CheckFn { src, tick } => {
                    tick!(tick);
                    if !matches!(self.reg(src), Value::Fn(_)) {
                        return Err(RuntimeError::NotAFunction.into());
                    }
                }
                Op::CallDirect {
                    func,
                    argbase,
                    nargs,
                    dst,
                    tick,
                } => {
                    tick!(tick);
                    self.func_cost[self.cur_fn] += cost_acc;
                    cost_acc = 0;
                    pc = self.enter(func as usize, argbase, nargs, dst, pc)?;
                }
                Op::CallIndirect {
                    callee,
                    argbase,
                    nargs,
                    dst,
                    tick,
                } => {
                    tick!(tick);
                    let Value::Fn(fid) = self.reg(callee) else {
                        return Err(RuntimeError::NotAFunction.into());
                    };
                    let f = fid.0 as usize;
                    if cp.funcs[f].entry == NONE32 {
                        return Err(RuntimeError::Undefined {
                            name: cp.funcs[f].name.clone(),
                        }
                        .into());
                    }
                    self.func_cost[self.cur_fn] += cost_acc;
                    cost_acc = 0;
                    pc = self.enter(f, argbase, nargs, dst, pc)?;
                }
                Op::CallBuiltin {
                    b,
                    argbase,
                    nargs,
                    dst,
                    tick,
                } => {
                    tick!(tick);
                    self.func_cost[self.cur_fn] += CALL_COST;
                    match self.builtin(b, argbase as usize, nargs as usize) {
                        Ok(v) => self.set_reg(dst, v),
                        Err(abort) => {
                            // `exit()` surfaces as an outcome, so the
                            // locals must be visible to `execute`.
                            self.steps = steps;
                            self.func_cost[self.cur_fn] += cost_acc;
                            return Err(abort);
                        }
                    }
                }
                Op::Ret { src, tick } => {
                    tick!(tick);
                    let v = self.reg(src);
                    self.func_cost[self.cur_fn] += cost_acc;
                    cost_acc = 0;
                    match self.frames.pop() {
                        None => {
                            self.steps = steps;
                            return Ok(v.to_int());
                        }
                        Some(fr) => {
                            self.stack.truncate(self.fp);
                            self.depth -= 1;
                            self.fp = fr.fp;
                            self.rp = fr.rp;
                            self.cur_fn = fr.func;
                            pc = fr.ret_pc;
                            self.regs[fr.rp + fr.ret_dst as usize] = v;
                        }
                    }
                }
                Op::Fail(i) => {
                    return Err(cp.fails[i as usize].clone().into());
                }

                // ----- mined superinstructions -----
                // Each replicates its source pair's effects in order;
                // only the dispatch (one tick instead of two) differs.
                Op::ConstJump {
                    dst,
                    imm,
                    target,
                    tick,
                } => {
                    tick!(tick);
                    self.set_reg(dst, Value::Int(imm as i64));
                    pc = target as usize;
                }
                Op::ConstRet { imm, tick } => {
                    tick!(tick);
                    let v = Value::Int(imm as i64);
                    self.func_cost[self.cur_fn] += cost_acc;
                    cost_acc = 0;
                    match self.frames.pop() {
                        None => {
                            self.steps = steps;
                            return Ok(v.to_int());
                        }
                        Some(fr) => {
                            self.stack.truncate(self.fp);
                            self.depth -= 1;
                            self.fp = fr.fp;
                            self.rp = fr.rp;
                            self.cur_fn = fr.func;
                            pc = fr.ret_pc;
                            self.regs[fr.rp + fr.ret_dst as usize] = v;
                        }
                    }
                }
                Op::StoreLEdge {
                    off,
                    src,
                    class,
                    edge,
                    block,
                    target,
                    tick,
                } => {
                    tick!(tick);
                    let v = convert_for_class(class, self.reg(src));
                    self.set_local(off, v);
                    self.set_reg(src, v);
                    self.edges[edge as usize] += 1;
                    self.blocks[block as usize] += 1;
                    pc = target as usize;
                }
                Op::IncDecLEdge {
                    off,
                    dst,
                    delta,
                    edge,
                    block,
                    target,
                    tick,
                } => {
                    tick!(tick);
                    let new = incdec(self.local(off), delta as i64);
                    self.set_local(off, new);
                    self.set_reg(dst, new);
                    self.edges[edge as usize] += 1;
                    self.blocks[block as usize] += 1;
                    pc = target as usize;
                }
                Op::LoadLBranch {
                    off,
                    dst,
                    branch,
                    else_target,
                    tick,
                } => {
                    tick!(tick);
                    let v = self.local(off);
                    self.set_reg(dst, v);
                    let taken = v.truthy();
                    self.bump_branch(branch, taken);
                    if !taken {
                        pc = else_target as usize;
                    }
                }
                Op::ArithGI {
                    dst,
                    idx,
                    imm,
                    mode,
                    tick,
                } => {
                    tick!(tick);
                    let g = self.global(idx);
                    if T::ACTIVE {
                        self.tap.access(Self::global_addr(idx));
                    }
                    let v = arith(mode, g, Value::Int(imm as i64))?;
                    self.set_reg(dst, v);
                }
                Op::CmpBranchRCI {
                    a,
                    dst,
                    imm,
                    op,
                    branch,
                    else_target,
                    tick,
                } => {
                    tick!(tick);
                    self.set_reg(dst, Value::Int(imm as i64));
                    let taken = cmp_vals(op, self.reg(a), Value::Int(imm as i64));
                    self.bump_branch(branch, taken);
                    if !taken {
                        pc = else_target as usize;
                    }
                }
                Op::ArithRLJumpF {
                    dst,
                    off,
                    mode,
                    target,
                    tick,
                } => {
                    tick!(tick);
                    let b = self.local(off);
                    let v = arith(mode, self.reg(dst), b)?;
                    self.set_reg(dst, v);
                    if !v.truthy() {
                        pc = target as usize;
                    }
                }
                Op::LoadIdxLR {
                    dst,
                    off,
                    idx,
                    elem,
                    tick,
                } => {
                    tick!(tick);
                    let b = self.local(off).to_ptr();
                    let i = self.reg(idx).to_int();
                    let v = self.load(b.wrapping_add_signed(i.wrapping_mul(elem as i64)))?;
                    self.set_reg(dst, v);
                }
            }
        }
    }

    // ----- builtins -----

    /// Argument `i`, defaulting to `Int(0)` past the end (the AST
    /// interpreter's `arg()` helper behaves identically).
    fn barg(&self, argbase: usize, nargs: usize, i: usize) -> Value {
        if i < nargs {
            self.regs[self.rp + argbase + i]
        } else {
            Value::Int(0)
        }
    }

    fn builtin(&mut self, b: Builtin, argbase: usize, nargs: usize) -> Result<Value, VmAbort> {
        // Hoisted up front so the match arms can split-borrow the
        // string buffers (no builtin takes more than three args).
        let args = [
            self.barg(argbase, nargs, 0),
            self.barg(argbase, nargs, 1),
            self.barg(argbase, nargs, 2),
        ];
        let arg = |i: usize| args[i];
        Ok(match b {
            Builtin::Printf => {
                let fmt_ptr = arg(0).to_ptr();
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    fmt_ptr,
                    &mut self.sbuf_a,
                )?;
                let lo = self.rp + argbase + 1.min(nargs);
                let hi = self.rp + argbase + nargs;
                format_into(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    &self.sbuf_a,
                    &self.regs[lo..hi],
                    &mut self.fmt_out,
                    &mut self.sbuf_b,
                )?;
                self.output.extend_from_slice(self.fmt_out.as_bytes());
                Value::Int(self.fmt_out.len() as i64)
            }
            Builtin::Sprintf => {
                let buf = arg(0).to_ptr();
                let fmt_ptr = arg(1).to_ptr();
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    fmt_ptr,
                    &mut self.sbuf_a,
                )?;
                let lo = self.rp + argbase + 2.min(nargs);
                let hi = self.rp + argbase + nargs;
                format_into(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    &self.sbuf_a,
                    &self.regs[lo..hi],
                    &mut self.fmt_out,
                    &mut self.sbuf_b,
                )?;
                write_cs(
                    &mut *self.tap,
                    &mut self.data,
                    &mut self.stack,
                    buf,
                    &self.fmt_out,
                )?;
                Value::Int(self.fmt_out.len() as i64)
            }
            Builtin::Putchar => {
                self.output.push(arg(0).to_int() as u8);
                arg(0)
            }
            Builtin::Puts => {
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(0).to_ptr(),
                    &mut self.sbuf_a,
                )?;
                self.output.extend_from_slice(self.sbuf_a.as_bytes());
                self.output.push(b'\n');
                Value::Int(0)
            }
            Builtin::Getchar => {
                if self.input_pos < self.input.len() {
                    let c = self.input[self.input_pos];
                    self.input_pos += 1;
                    Value::Int(c as i64)
                } else {
                    Value::Int(-1)
                }
            }
            Builtin::Malloc => {
                let n = arg(0).to_int().max(1) as usize;
                Value::Ptr(self.alloc_static(n))
            }
            Builtin::Calloc => {
                let n = (arg(0).to_int().max(0) as usize) * (arg(1).to_int().max(1) as usize);
                Value::Ptr(self.alloc_static(n.max(1)))
            }
            Builtin::Free => Value::Int(0),
            Builtin::Memset => {
                let p = arg(0).to_ptr();
                let v = arg(1).to_int();
                let n = arg(2).to_int().max(0) as u64;
                for i in 0..n {
                    self.store(p + i, Value::Int(v))?;
                }
                Value::Ptr(p)
            }
            Builtin::Memcpy => {
                let d = arg(0).to_ptr();
                let s = arg(1).to_ptr();
                let n = arg(2).to_int().max(0) as usize;
                self.copy_words(d, s, n)?;
                Value::Ptr(d)
            }
            Builtin::Strlen => {
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(0).to_ptr(),
                    &mut self.sbuf_a,
                )?;
                Value::Int(self.sbuf_a.len() as i64)
            }
            Builtin::Strcpy => {
                let d = arg(0).to_ptr();
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(1).to_ptr(),
                    &mut self.sbuf_a,
                )?;
                write_cs(
                    &mut *self.tap,
                    &mut self.data,
                    &mut self.stack,
                    d,
                    &self.sbuf_a,
                )?;
                Value::Ptr(d)
            }
            Builtin::Strncpy => {
                let d = arg(0).to_ptr();
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(1).to_ptr(),
                    &mut self.sbuf_a,
                )?;
                let n = arg(2).to_int().max(0) as usize;
                // Byte length of the first `n` chars (chars ≥ 128 are
                // two UTF-8 bytes — the oracle's `chars().take(n)`
                // then byte-wise copy does exactly this).
                let s = &self.sbuf_a;
                let byte_end = s.char_indices().nth(n).map(|(i, _)| i).unwrap_or(s.len());
                for i in 0..byte_end {
                    let b2 = s.as_bytes()[i];
                    store_mem(
                        &mut *self.tap,
                        &mut self.data,
                        &mut self.stack,
                        d + i as u64,
                        Value::Int(b2 as i64),
                    )?;
                }
                for i in byte_end..n {
                    self.store(d + i as u64, Value::Int(0))?;
                }
                Value::Ptr(d)
            }
            Builtin::Strcmp => {
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(0).to_ptr(),
                    &mut self.sbuf_a,
                )?;
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(1).to_ptr(),
                    &mut self.sbuf_b,
                )?;
                Value::Int(ord_to_int(self.sbuf_a.cmp(&self.sbuf_b)))
            }
            Builtin::Strncmp => {
                let n = arg(2).to_int().max(0) as usize;
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(0).to_ptr(),
                    &mut self.sbuf_a,
                )?;
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(1).to_ptr(),
                    &mut self.sbuf_b,
                )?;
                // Char-sequence order equals the order of the collected
                // strings (UTF-8 preserves code-point order).
                let ord = self.sbuf_a.chars().take(n).cmp(self.sbuf_b.chars().take(n));
                Value::Int(ord_to_int(ord))
            }
            Builtin::Strcat => {
                let d = arg(0).to_ptr();
                read_cs(&mut *self.tap, &self.data, &self.stack, d, &mut self.sbuf_a)?;
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(1).to_ptr(),
                    &mut self.sbuf_b,
                )?;
                let at = d + self.sbuf_a.len() as u64;
                write_cs(
                    &mut *self.tap,
                    &mut self.data,
                    &mut self.stack,
                    at,
                    &self.sbuf_b,
                )?;
                Value::Ptr(d)
            }
            Builtin::Atoi => {
                read_cs(
                    &mut *self.tap,
                    &self.data,
                    &self.stack,
                    arg(0).to_ptr(),
                    &mut self.sbuf_a,
                )?;
                Value::Int(self.sbuf_a.trim().parse::<i64>().unwrap_or(0))
            }
            Builtin::Abs => Value::Int(arg(0).to_int().wrapping_abs()),
            Builtin::Exit => return Err(VmAbort::Exit(arg(0).to_int())),
            Builtin::Abort => return Err(RuntimeError::Aborted.into()),
            Builtin::Rand => {
                // xorshift64*: deterministic across runs.
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                Value::Int(((x.wrapping_mul(0x2545F4914F6CDD1D)) >> 33) as i64)
            }
            Builtin::Srand => {
                self.rng = (arg(0).to_int() as u64) | 1;
                Value::Int(0)
            }
            Builtin::Sqrt => Value::Float(arg(0).to_float().sqrt()),
            Builtin::Fabs => Value::Float(arg(0).to_float().abs()),
            Builtin::Sin => Value::Float(arg(0).to_float().sin()),
            Builtin::Cos => Value::Float(arg(0).to_float().cos()),
            Builtin::Exp => Value::Float(arg(0).to_float().exp()),
            Builtin::Log => Value::Float(arg(0).to_float().ln()),
            Builtin::Pow => Value::Float(arg(0).to_float().powf(arg(1).to_float())),
            Builtin::Floor => Value::Float(arg(0).to_float().floor()),
            Builtin::Ceil => Value::Float(arg(0).to_float().ceil()),
        })
    }
}

fn incdec(old: Value, delta: i64) -> Value {
    match old {
        Value::Float(f) => Value::Float(f + delta as f64),
        Value::Ptr(p) => Value::Ptr(p.wrapping_add_signed(delta)),
        other => Value::Int(other.to_int().wrapping_add(delta)),
    }
}

fn ord_to_int(o: Ordering) -> i64 {
    match o {
        Ordering::Less => -1,
        Ordering::Equal => 0,
        Ordering::Greater => 1,
    }
}

/// A comparison's truth value; the float/int split stays dynamic and
/// NaN compares false, exactly as in `Interp::arith`. Public (via
/// `bytecode`) so the optimizer folds constants with the VM's exact
/// semantics.
pub fn cmp_vals(op: BinOp, va: Value, vb: Value) -> bool {
    use BinOp::*;
    let cmp = if matches!(va, Value::Float(_)) || matches!(vb, Value::Float(_)) {
        // IEEE comparison is the *specified* behaviour here (C source
        // semantics), not an ordering bug — see clippy.toml.
        #[allow(clippy::disallowed_methods)]
        va.to_float().partial_cmp(&vb.to_float())
    } else {
        Some(va.to_int().cmp(&vb.to_int()))
    };
    let Some(ord) = cmp else {
        return false; // NaN compares false
    };
    match op {
        Lt => ord.is_lt(),
        Le => ord.is_le(),
        Gt => ord.is_gt(),
        Ge => ord.is_ge(),
        Eq => ord.is_eq(),
        Ne => ord.is_ne(),
        _ => unreachable!("non-comparison in Cmp mode"),
    }
}

/// Binary arithmetic with the compile-time mode; the float/int split
/// stays dynamic, exactly as in `Interp::arith`. Public (via
/// `bytecode`) so the optimizer folds constants with the VM's exact
/// semantics.
pub fn arith(mode: ArithMode, va: Value, vb: Value) -> Result<Value, RuntimeError> {
    use BinOp::*;
    Ok(match mode {
        ArithMode::Cmp(op) => Value::Int(cmp_vals(op, va, vb) as i64),
        ArithMode::PtrAddL(elem) => Value::Ptr(
            va.to_ptr()
                .wrapping_add_signed(vb.to_int().wrapping_mul(elem as i64)),
        ),
        ArithMode::PtrAddR(elem) => Value::Ptr(
            vb.to_ptr()
                .wrapping_add_signed(va.to_int().wrapping_mul(elem as i64)),
        ),
        ArithMode::PtrDiff(elem) => {
            let diff = va.to_ptr() as i64 - vb.to_ptr() as i64;
            Value::Int(diff / elem as i64)
        }
        ArithMode::PtrSubInt(elem) => Value::Ptr(
            va.to_ptr()
                .wrapping_add_signed(-(vb.to_int().wrapping_mul(elem as i64))),
        ),
        ArithMode::Num(op) => match op {
            Add | Sub | Mul | Div
                if matches!(va, Value::Float(_)) || matches!(vb, Value::Float(_)) =>
            {
                let (x, y) = (va.to_float(), vb.to_float());
                Value::Float(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => unreachable!(),
                })
            }
            Add => Value::Int(va.to_int().wrapping_add(vb.to_int())),
            Sub => Value::Int(va.to_int().wrapping_sub(vb.to_int())),
            Mul => Value::Int(va.to_int().wrapping_mul(vb.to_int())),
            Div => {
                let d = vb.to_int();
                if d == 0 {
                    return Err(RuntimeError::DivByZero);
                }
                Value::Int(va.to_int().wrapping_div(d))
            }
            Rem => {
                let d = vb.to_int();
                if d == 0 {
                    return Err(RuntimeError::DivByZero);
                }
                Value::Int(va.to_int().wrapping_rem(d))
            }
            Shl => Value::Int(va.to_int().wrapping_shl((vb.to_int() & 63) as u32)),
            Shr => Value::Int(va.to_int().wrapping_shr((vb.to_int() & 63) as u32)),
            BitAnd => Value::Int(va.to_int() & vb.to_int()),
            BitOr => Value::Int(va.to_int() | vb.to_int()),
            BitXor => Value::Int(va.to_int() ^ vb.to_int()),
            Lt | Le | Gt | Ge | Eq | Ne => unreachable!("comparisons use Cmp mode"),
        },
    })
}

// ----- memory free functions (split borrows with the string buffers) -----
//
// Each takes the tap explicitly so builtins can keep split-borrowing
// the VM's string buffers; the tap fires only on *successful*
// data-segment accesses (`0 < addr < STACK_BASE`), mirroring the AST
// walker's `load`/`store` exactly.

fn load_mem<T: MemTap>(
    tap: &mut T,
    data: &[Value],
    stack: &[Value],
    addr: u64,
) -> Result<Value, RuntimeError> {
    if addr == 0 {
        return Err(RuntimeError::NullDeref);
    }
    if addr >= STACK_BASE {
        let i = (addr - STACK_BASE) as usize;
        stack
            .get(i)
            .copied()
            .ok_or(RuntimeError::OutOfBounds { addr })
    } else {
        let i = (addr - 1) as usize;
        let v = data
            .get(i)
            .copied()
            .ok_or(RuntimeError::OutOfBounds { addr })?;
        if T::ACTIVE {
            tap.access(addr);
        }
        Ok(v)
    }
}

fn store_mem<T: MemTap>(
    tap: &mut T,
    data: &mut [Value],
    stack: &mut [Value],
    addr: u64,
    v: Value,
) -> Result<(), RuntimeError> {
    if addr == 0 {
        return Err(RuntimeError::NullDeref);
    }
    if addr >= STACK_BASE {
        match stack.get_mut((addr - STACK_BASE) as usize) {
            Some(s) => {
                *s = v;
                Ok(())
            }
            None => Err(RuntimeError::OutOfBounds { addr }),
        }
    } else {
        match data.get_mut((addr - 1) as usize) {
            Some(s) => {
                *s = v;
                if T::ACTIVE {
                    tap.access(addr);
                }
                Ok(())
            }
            None => Err(RuntimeError::OutOfBounds { addr }),
        }
    }
}

/// Read a NUL-terminated string into `out` (cleared first), with the
/// oracle's byte-as-`char` semantics and 1M-word runaway guard.
fn read_cs<T: MemTap>(
    tap: &mut T,
    data: &[Value],
    stack: &[Value],
    mut addr: u64,
    out: &mut String,
) -> Result<(), RuntimeError> {
    out.clear();
    for _ in 0..1_000_000 {
        let c = load_mem(tap, data, stack, addr)?.to_int();
        if c == 0 {
            return Ok(());
        }
        out.push((c as u8) as char);
        addr += 1;
    }
    Err(RuntimeError::Other("unterminated string".into()))
}

fn write_cs<T: MemTap>(
    tap: &mut T,
    data: &mut [Value],
    stack: &mut [Value],
    addr: u64,
    s: &str,
) -> Result<(), RuntimeError> {
    for (i, b) in s.bytes().enumerate() {
        store_mem(tap, data, stack, addr + i as u64, Value::Int(b as i64))?;
    }
    store_mem(tap, data, stack, addr + s.len() as u64, Value::Int(0))
}

/// `printf`-style formatting into `out` (cleared first); `tmp` holds
/// `%s` operands. Mirrors `Interp::format` conversion-for-conversion.
fn format_into<T: MemTap>(
    tap: &mut T,
    data: &[Value],
    stack: &[Value],
    fmt: &str,
    args: &[Value],
    out: &mut String,
    tmp: &mut String,
) -> Result<(), RuntimeError> {
    use std::fmt::Write as _;
    out.clear();
    let mut chars = fmt.chars().peekable();
    let mut next = 0usize;
    let take = |next: &mut usize| -> Value {
        let v = args.get(*next).copied().unwrap_or(Value::Int(0));
        *next += 1;
        v
    };
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Skip flags/width/precision; honor the conversion letter.
        let mut conv = None;
        while let Some(&c2) = chars.peek() {
            if c2.is_ascii_digit() || matches!(c2, '-' | '+' | '.' | ' ' | '0' | 'l' | 'h') {
                chars.next();
            } else {
                conv = chars.next();
                break;
            }
        }
        let w = match conv {
            Some('d') | Some('i') | Some('u') => write!(out, "{}", take(&mut next).to_int()),
            Some('x') => write!(out, "{:x}", take(&mut next).to_int()),
            Some('o') => write!(out, "{:o}", take(&mut next).to_int()),
            Some('c') => {
                out.push((take(&mut next).to_int() as u8) as char);
                Ok(())
            }
            Some('s') => {
                read_cs(tap, data, stack, take(&mut next).to_ptr(), tmp)?;
                out.push_str(tmp);
                Ok(())
            }
            Some('f') => write!(out, "{:.6}", take(&mut next).to_float()),
            Some('g') | Some('e') => write!(out, "{}", take(&mut next).to_float()),
            Some('%') => {
                out.push('%');
                Ok(())
            }
            Some(other) => {
                out.push('%');
                out.push(other);
                Ok(())
            }
            None => {
                out.push('%');
                Ok(())
            }
        };
        w.expect("writing to a String cannot fail");
    }
    Ok(())
}
