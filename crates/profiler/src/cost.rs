//! The abstract cost model behind the Figure 10 experiment.
//!
//! The paper timed `compress` with different subsets of its functions
//! compiled at `-O2`. We cannot produce native code, but the experiment
//! only needs *relative* run times as functions move into the optimized
//! set. The interpreter charges one cost unit per expression-evaluation
//! step to the function executing it; "optimizing" a function scales
//! its accumulated cost by [`OPT_FACTOR`] — roughly the speedup gcc's
//! `-O2` delivered on inner-loop C code of the era.

use crate::profile::Profile;
use minic::sema::FuncId;
use std::collections::HashSet;

/// Cost multiplier for optimized functions (smaller = faster).
pub const OPT_FACTOR: f64 = 0.55;

/// Simulated run time (cost units) with the given functions optimized.
///
/// # Examples
///
/// ```
/// use profiler::cost::{simulated_time, OPT_FACTOR};
/// use profiler::Profile;
/// use minic::sema::FuncId;
/// use std::collections::HashSet;
///
/// let mut p = Profile::default();
/// p.func_cost = vec![100, 900];
/// let none: HashSet<FuncId> = HashSet::new();
/// let hot: HashSet<FuncId> = [FuncId(1)].into_iter().collect();
/// let t0 = simulated_time(&p, &none);
/// let t1 = simulated_time(&p, &hot);
/// assert!(t1 < t0);
/// assert!((t0 - (100.0 + 900.0)).abs() < 1e-9);
/// assert!((t1 - (100.0 + 900.0 * OPT_FACTOR)).abs() < 1e-9);
/// ```
pub fn simulated_time(profile: &Profile, optimized: &HashSet<FuncId>) -> f64 {
    profile
        .func_cost
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let factor = if optimized.contains(&FuncId(i as u32)) {
                OPT_FACTOR
            } else {
                1.0
            };
            c as f64 * factor
        })
        .sum()
}

/// Speedup of optimizing `optimized` relative to no optimization.
pub fn speedup(profile: &Profile, optimized: &HashSet<FuncId>) -> f64 {
    let base = simulated_time(profile, &HashSet::new());
    let opt = simulated_time(profile, optimized);
    if opt > 0.0 {
        base / opt
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizing_everything_gives_full_factor() {
        let p = Profile {
            func_cost: vec![10, 20, 30],
            ..Profile::default()
        };
        let all: HashSet<FuncId> = (0..3).map(FuncId).collect();
        let s = speedup(&p, &all);
        assert!((s - 1.0 / OPT_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn optimizing_cold_function_changes_little() {
        let p = Profile {
            func_cost: vec![1, 100_000],
            ..Profile::default()
        };
        let cold: HashSet<FuncId> = [FuncId(0)].into_iter().collect();
        assert!((speedup(&p, &cold) - 1.0).abs() < 1e-3);
    }
}
