//! Exact memory-reuse tracing.
//!
//! A *reuse distance* (LRU stack distance) is the number of distinct
//! other addresses touched between two consecutive accesses to the
//! same address. This module supplies the pieces both execution
//! engines share to measure it exactly:
//!
//! - [`MemTap`]: a compile-time probe the VM and the AST walker thread
//!   through their memory paths. The inactive [`NoTap`] monomorphizes
//!   to nothing, so the normal dispatch loop stays probe-free.
//! - [`ReuseCollector`]: an active tap implementing Olken's exact
//!   algorithm (hash map of last-access times + a Fenwick tree over
//!   the access timeline), binning each measured distance into a
//!   per-object log₂ histogram.
//! - [`ObjectMap`]: the static data-segment layout (one object per
//!   global, plus a catch-all for string literals and the heap), which
//!   attributes every traced address to a source-level object.
//!
//! **What is traced:** every load and store whose address lands in the
//! data segment (`0 < addr < STACK_BASE`) — globals, string literals,
//! and the heap. Stack and register traffic is deliberately excluded:
//! the VM keeps locals in registers while the AST walker spills them
//! to its memory stack, so only the data segment has an identical
//! access stream in both engines (the layout is bit-identical by
//! construction: globals in declaration order, then strings, then
//! `malloc` appends). The differential oracle exploits exactly this —
//! the two engines must produce byte-identical [`ReuseTrace`]s.

use minic::sema::Module;
use std::collections::HashMap;

/// A probe observing every data-segment memory access.
///
/// The VM and AST walker are generic over this trait; `ACTIVE` lets
/// the dispatch loops compile the probe (and the trace-mode checked
/// accessors) out entirely when tracing is off.
pub trait MemTap {
    /// Whether this tap observes accesses (false compiles the probe
    /// away).
    const ACTIVE: bool;
    /// Called once per successful data-segment load or store, with the
    /// word address.
    fn access(&mut self, addr: u64);
}

/// The inactive tap: zero-sized, compiles to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoTap;

impl MemTap for NoTap {
    const ACTIVE: bool = false;
    #[inline(always)]
    fn access(&mut self, _addr: u64) {}
}

/// Number of histogram bins: bin 0 holds distance 0, bins 1..=32 hold
/// `floor(log2(d)) + 1` (clamped), and bin [`COLD_BIN`] holds cold
/// (first-ever) accesses.
pub const BINS: usize = 34;

/// The bin recording cold (first-access) events.
pub const COLD_BIN: usize = 33;

/// The histogram bin for an exact reuse distance.
#[inline]
pub fn bin_of(dist: u64) -> usize {
    if dist == 0 {
        0
    } else {
        (64 - dist.leading_zeros() as usize).min(32)
    }
}

/// The inclusive distance range `(lo, hi)` a bin covers (`COLD_BIN`
/// reports `(u64::MAX, u64::MAX)`).
pub fn bin_range(bin: usize) -> (u64, u64) {
    match bin {
        0 => (0, 0),
        COLD_BIN => (u64::MAX, u64::MAX),
        b => (1 << (b - 1), (1u64 << b) - 1),
    }
}

/// The static data-segment layout: one object per global (in
/// declaration order, exactly as `load_statics` and the bytecode
/// compiler lay them out), plus one catch-all region for string
/// literals and everything `malloc` appends after them.
#[derive(Debug, Clone)]
pub struct ObjectMap {
    /// Ascending start addresses, one per object; object `i` covers
    /// `[starts[i], starts[i+1])` and the last object is unbounded.
    starts: Vec<u64>,
    names: Vec<String>,
}

impl ObjectMap {
    /// Builds the map from a module's globals. Address 1 is the first
    /// global's first word — the same layout both engines construct.
    pub fn for_module(module: &Module) -> Self {
        let mut starts = Vec::with_capacity(module.globals.len() + 1);
        let mut names = Vec::with_capacity(module.globals.len() + 1);
        let mut cur = 1u64;
        for g in &module.globals {
            starts.push(cur);
            names.push(g.name.clone());
            cur += g.size as u64;
        }
        // Strings + heap.
        starts.push(cur);
        names.push("<str/heap>".to_string());
        ObjectMap { starts, names }
    }

    /// Number of objects (globals + the catch-all region).
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the map has no objects (never: the catch-all always
    /// exists).
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Object names, in layout order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The object index covering `addr` (which must be a nonzero
    /// data-segment address).
    #[inline]
    pub fn object_of(&self, addr: u64) -> usize {
        debug_assert!(addr >= 1);
        self.starts.partition_point(|&s| s <= addr) - 1
    }
}

/// The result of one traced run: a per-object reuse-distance
/// histogram. Byte-identical across the VM and the AST walker, and
/// across any merge order (bins are plain sums).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseTrace {
    /// Per-object histograms, in [`ObjectMap`] layout order.
    pub objects: Vec<ReuseObject>,
    /// Total traced accesses.
    pub events: u64,
}

/// One object's reuse-distance histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseObject {
    /// The global's name, or `<str/heap>` for the catch-all region.
    pub name: String,
    /// `hist[bin_of(d)]` counts reuses at distance `d`;
    /// `hist[COLD_BIN]` counts cold accesses.
    pub hist: [u64; BINS],
}

impl ReuseTrace {
    /// An all-zero trace with the map's object shape.
    pub fn empty(map: &ObjectMap) -> Self {
        ReuseTrace {
            objects: map
                .names()
                .iter()
                .map(|n| ReuseObject {
                    name: n.clone(),
                    hist: [0; BINS],
                })
                .collect(),
            events: 0,
        }
    }

    /// Adds `other`'s counts into `self`. Both traces must come from
    /// the same program (same object list).
    ///
    /// # Panics
    ///
    /// Panics if the object lists differ.
    pub fn merge(&mut self, other: &ReuseTrace) {
        assert_eq!(
            self.objects.len(),
            other.objects.len(),
            "merging traces of different programs"
        );
        for (a, b) in self.objects.iter_mut().zip(&other.objects) {
            debug_assert_eq!(a.name, b.name);
            for (x, y) in a.hist.iter_mut().zip(&b.hist) {
                *x += y;
            }
        }
        self.events += other.events;
    }

    /// The histogram flattened to a normalized mass vector over
    /// `(object, bin)` cells — the entity weights the weight-matching
    /// metric scores. Sums to 1 (or is all-zero for an empty trace).
    pub fn mass(&self) -> Vec<f64> {
        let total: u64 = self.objects.iter().flat_map(|o| o.hist.iter()).sum();
        let scale = if total == 0 { 0.0 } else { 1.0 / total as f64 };
        self.objects
            .iter()
            .flat_map(|o| o.hist.iter().map(move |&c| c as f64 * scale))
            .collect()
    }
}

/// Olken's exact reuse-distance algorithm as an active [`MemTap`].
///
/// Each address's last-access time lives in a hash map; a Fenwick
/// tree over the access timeline holds a 1 at every address's *latest*
/// time, so the distance on a reuse is `live - prefix_sum(prev)` in
/// O(log n). When the timeline fills, times are compacted (renumbered
/// in order), bounding memory by the number of distinct addresses.
#[derive(Debug)]
pub struct ReuseCollector {
    map: ObjectMap,
    hists: Vec<[u64; BINS]>,
    /// addr → timeline slot of its most recent access.
    last: HashMap<u64, u32>,
    /// Fenwick tree (1-based) over timeline slots.
    fen: Vec<u32>,
    /// Next free timeline slot (1-based).
    next: u32,
    /// Number of distinct live addresses (1-bits in the tree).
    live: u32,
    events: u64,
}

impl ReuseCollector {
    /// A collector for the given layout.
    pub fn new(map: ObjectMap) -> Self {
        let hists = vec![[0u64; BINS]; map.len()];
        ReuseCollector {
            map,
            hists,
            last: HashMap::new(),
            fen: vec![0; 1 << 12],
            next: 1,
            live: 0,
            events: 0,
        }
    }

    #[inline]
    fn fen_add(&mut self, mut i: u32, delta: i32) {
        let n = self.fen.len() as u32;
        while i < n {
            self.fen[i as usize] = (self.fen[i as usize] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    #[inline]
    fn fen_sum(&self, mut i: u32) -> u64 {
        let mut s = 0u64;
        while i > 0 {
            s += self.fen[i as usize] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Renumbers live timeline slots to 1..=live (in order) and
    /// rebuilds the tree, growing it if the live set needs room.
    fn compact(&mut self) {
        let mut order: Vec<(u32, u64)> = self.last.iter().map(|(&a, &t)| (t, a)).collect();
        order.sort_unstable();
        let need = (order.len() as u32 + 2).next_power_of_two().max(1 << 12) as usize;
        let cap = if need * 2 > self.fen.len() {
            need * 2
        } else {
            self.fen.len()
        };
        self.fen.clear();
        self.fen.resize(cap, 0);
        for (new_t, &(_, addr)) in order.iter().enumerate() {
            let t = new_t as u32 + 1;
            self.last.insert(addr, t);
            self.fen_add(t, 1);
        }
        self.next = order.len() as u32 + 1;
    }

    /// Finishes the trace.
    pub fn finish(self) -> ReuseTrace {
        ReuseTrace {
            objects: self
                .map
                .names()
                .iter()
                .zip(self.hists)
                .map(|(name, hist)| ReuseObject {
                    name: name.clone(),
                    hist,
                })
                .collect(),
            events: self.events,
        }
    }
}

impl MemTap for ReuseCollector {
    const ACTIVE: bool = true;

    fn access(&mut self, addr: u64) {
        self.events += 1;
        let obj = self.map.object_of(addr);
        if self.next as usize >= self.fen.len() {
            self.compact();
        }
        let t = self.next;
        self.next += 1;
        match self.last.insert(addr, t) {
            None => {
                self.hists[obj][COLD_BIN] += 1;
                self.live += 1;
            }
            Some(prev) => {
                // Distinct *other* addresses touched since `prev`:
                // live slots strictly after it.
                let dist = self.live as u64 - self.fen_sum(prev);
                self.fen_add(prev, -1);
                self.hists[obj][bin_of(dist)] += 1;
            }
        }
        self.fen_add(t, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector_for(n_objects: usize, sizes: &[u64]) -> ReuseCollector {
        // Hand-build a map without a module: starts from sizes.
        let mut starts = Vec::new();
        let mut names = Vec::new();
        let mut cur = 1u64;
        for (i, &s) in sizes.iter().enumerate() {
            starts.push(cur);
            names.push(format!("g{i}"));
            cur += s;
        }
        starts.push(cur);
        names.push("<str/heap>".into());
        assert_eq!(starts.len(), n_objects + 1);
        ReuseCollector::new(ObjectMap { starts, names })
    }

    #[test]
    fn bins_cover_the_distance_scale() {
        assert_eq!(bin_of(0), 0);
        assert_eq!(bin_of(1), 1);
        assert_eq!(bin_of(2), 2);
        assert_eq!(bin_of(3), 2);
        assert_eq!(bin_of(4), 3);
        assert_eq!(bin_of(1023), 10);
        assert_eq!(bin_of(1024), 11);
        assert_eq!(bin_of(u64::MAX), 32);
        for b in 1..=32 {
            let (lo, hi) = bin_range(b);
            assert_eq!(bin_of(lo), b);
            assert_eq!(bin_of(hi), b);
        }
    }

    #[test]
    fn exact_distances_on_a_known_stream() {
        // Stream over addresses 1..=3 (one object of size 8):
        // 1 2 3 1  → reuse of 1 at distance 2
        // 2        → reuse of 2 at distance 2 (3 and 1 intervened)
        // 2        → distance 0
        let mut c = collector_for(1, &[8]);
        for a in [1u64, 2, 3, 1, 2, 2] {
            c.access(a);
        }
        let t = c.finish();
        assert_eq!(t.events, 6);
        let h = &t.objects[0].hist;
        assert_eq!(h[COLD_BIN], 3);
        assert_eq!(h[bin_of(2)], 2);
        assert_eq!(h[0], 1);
    }

    #[test]
    fn objects_partition_the_address_space() {
        let mut c = collector_for(2, &[4, 4]);
        assert_eq!(c.map.object_of(1), 0);
        assert_eq!(c.map.object_of(4), 0);
        assert_eq!(c.map.object_of(5), 1);
        assert_eq!(c.map.object_of(8), 1);
        assert_eq!(c.map.object_of(9), 2); // str/heap
        assert_eq!(c.map.object_of(1 << 30), 2);
        c.access(3);
        c.access(7);
        c.access(3);
        let t = c.finish();
        assert_eq!(t.objects[0].hist[COLD_BIN], 1);
        assert_eq!(t.objects[0].hist[bin_of(1)], 1);
        assert_eq!(t.objects[1].hist[COLD_BIN], 1);
    }

    #[test]
    fn compaction_preserves_distances() {
        // Force many compactions with a small working set; distances
        // must stay exact throughout.
        let mut c = collector_for(1, &[64]);
        c.fen = vec![0; 64]; // tiny timeline so compaction triggers often
        for round in 0..10_000u64 {
            // Cycle over 8 addresses: after warmup every access reuses
            // at distance 7.
            c.access(1 + (round % 8));
        }
        let t = c.finish();
        let h = &t.objects[0].hist;
        assert_eq!(h[COLD_BIN], 8);
        assert_eq!(h[bin_of(7)], 10_000 - 8);
    }

    #[test]
    fn merge_sums_bins_orderless() {
        let mut a = collector_for(1, &[8]);
        a.access(1);
        a.access(1);
        let ta = a.finish();
        let mut b = collector_for(1, &[8]);
        b.access(2);
        let tb = b.finish();
        let mut m1 = ta.clone();
        m1.merge(&tb);
        let mut m2 = tb.clone();
        m2.merge(&ta);
        assert_eq!(m1, m2);
        assert_eq!(m1.events, 3);
    }

    #[test]
    fn mass_is_normalized() {
        let mut c = collector_for(1, &[8]);
        for a in [1u64, 2, 1, 2] {
            c.access(a);
        }
        let m = c.finish().mass();
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(m.iter().all(|&x| x.is_finite() && x >= 0.0));
    }
}
