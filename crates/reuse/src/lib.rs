//! # reuse — static reuse-distance estimation
//!
//! The paper's recipe is *predict a runtime distribution statically,
//! then score the prediction against an exact profile*. This crate
//! applies it to memory behavior: it predicts, without executing the
//! program, the **reuse-distance histogram** of every global array —
//! the number of distinct other words touched between consecutive
//! accesses to the same word, the quantity that determines cache hit
//! rates at every capacity simultaneously.
//!
//! The prediction pipeline:
//!
//! 1. **Frequencies** — the Markov intra-procedural estimator gives
//!    per-block execution frequencies (entry = 1) with static trip
//!    counts folded in, and the Markov inter-procedural estimator
//!    gives per-function invocation counts, so accesses behind skewed
//!    branches are weighted exactly as the paper weights instruction
//!    frequencies.
//! 2. **Loop nests** — [`flowgraph::analysis::LoopForest`] organizes
//!    each CFG's natural loops into a nesting forest.
//! 3. **Access sites** — [`minic::access`] classifies global-array
//!    subscripts (`a[i][j]` with per-dimension strides), global
//!    scalars, and string-literal reads by output builtins.
//! 4. **Reuse model** — per site, the innermost enclosing loop whose
//!    iterations revisit the same addresses (index variables either
//!    invariant or driven by deeper loops that replay each iteration)
//!    is the *reuse loop*; the predicted distance is the data
//!    footprint of one iteration of that loop, computed from the same
//!    frequencies. Sites that vary at every level (hash probes,
//!    streaming scans) fall back to the whole-invocation footprint,
//!    first touches are cold, and compound assignments contribute
//!    their write at distance 0.
//!
//! [`score`] compares a prediction against the exact trace collected
//! by `profiler::run_traced` with the same weight-matching metric the
//! frequency estimators use (§6 of the paper).

#![warn(missing_docs)]

use flowgraph::analysis::LoopForest;
use flowgraph::{Block, BlockId, Cfg, Instr, Program, Terminator};
use minic::access::{self, VarRef};
use minic::ast::{Expr, ExprKind, UnOp};
use minic::builtins::Builtin;
use minic::sema::{CalleeKind, FuncId, GlobalId, Module};
use minic::types::Type;
use profiler::reuse::{bin_of, ObjectMap, ReuseTrace};
pub use profiler::reuse::{BINS, COLD_BIN};
use std::collections::{HashMap, HashSet};

use estimators::inter::{estimate_invocations, InterEstimator};
use estimators::intra::{edge_probabilities, estimate_program_with, IntraEstimator, IntraOptions};

/// Guard for divisions by tiny frequencies.
const EPS: f64 = 1e-9;

/// The score cutoff used by [`score`] — the same fraction the CLI's
/// frequency-estimator tables use.
pub const SCORE_CUTOFF: f64 = 0.25;

/// A statically predicted reuse-distance histogram, shaped exactly
/// like [`profiler::reuse::ReuseTrace`]: one histogram per object
/// (globals in declaration order, then the `<str/heap>` catch-all),
/// with fractional expected access counts per distance bin.
#[derive(Debug, Clone)]
pub struct ReuseEstimate {
    /// Object names, parallel to `hists`.
    pub names: Vec<String>,
    /// Per-object expected accesses per bin (see
    /// [`profiler::reuse::bin_of`]; the last bin is cold misses).
    pub hists: Vec<[f64; BINS]>,
}

impl ReuseEstimate {
    fn empty(map: &ObjectMap) -> Self {
        ReuseEstimate {
            names: map.names().to_vec(),
            hists: vec![[0.0; BINS]; map.len()],
        }
    }

    /// Total predicted accesses.
    pub fn total(&self) -> f64 {
        self.hists.iter().flatten().sum()
    }

    /// The flattened `(object × bin)` distribution, normalized to sum
    /// to 1 (all zeros when nothing was predicted). Comparable cell
    /// for cell with [`ReuseTrace::mass`].
    pub fn mass(&self) -> Vec<f64> {
        let total = self.total();
        let scale = if total > 0.0 { 1.0 / total } else { 0.0 };
        self.hists.iter().flatten().map(|&v| v * scale).collect()
    }
}

/// Scores a prediction against an exact trace with the paper's
/// weight-matching metric at the standard cutoff: the fraction of the
/// top quarter of traced mass that the estimate also places in its
/// top quarter (1.0 = perfect agreement on where the mass is).
pub fn score(est: &ReuseEstimate, trace: &ReuseTrace) -> f64 {
    estimators::weight_matching(&est.mass(), &trace.mass(), SCORE_CUTOFF)
}

/// Predicts the reuse-distance histogram of every object in
/// `program` without executing it.
pub fn estimate(program: &Program) -> ReuseEstimate {
    let _sp = obs::span("reuse.estimate");
    let map = ObjectMap::for_module(&program.module);
    let intra = estimate_program_with(
        program,
        IntraEstimator::Markov,
        &IntraOptions {
            trip_counts: true,
            ..IntraOptions::default()
        },
    );
    let inter = estimate_invocations(program, &intra, InterEstimator::Markov);
    let mut est = ReuseEstimate::empty(&map);
    let mut n_sites = 0u64;
    for f in program.defined_ids() {
        let w = inter.of(f);
        if w <= 0.0 || !w.is_finite() {
            continue;
        }
        n_sites += FuncModel::build(
            program,
            f,
            &intra.block_freqs[f.0 as usize],
            &intra.predictions,
            &map,
        )
        .accumulate(w, &mut est);
    }
    if obs::enabled() {
        obs::counter_add("reuse.estimates", 1);
        obs::counter_add("reuse.sites", n_sites);
    }
    est
}

// ----- access sites -----

/// One classified access site: a place in one block that touches a
/// known object with a static index shape.
struct Site {
    block: BlockId,
    /// Object index in [`ObjectMap`] order.
    obj: usize,
    /// Words the whole object can hold (caps every footprint term).
    cap: f64,
    /// Distinct words touched per execution (1 for scalar elements;
    /// `len + 1` for a string literal; half the buffer for a string
    /// builtin scanning a global `char` array).
    width: f64,
    /// Accesses per word per execution: 1, or 2 for read-modify-write.
    mult: f64,
    /// Variables the address depends on.
    vary: HashSet<VarRef>,
}

/// Walks one function's blocks collecting [`Site`]s.
struct Scanner<'p> {
    module: &'p Module,
    catch_all: usize,
    catch_all_cap: f64,
    block: BlockId,
    sites: Vec<Site>,
}

impl<'p> Scanner<'p> {
    fn scan_cfg(module: &'p Module, cfg: &Cfg, map: &ObjectMap) -> Vec<Site> {
        let catch_all_cap = module
            .strings
            .iter()
            .map(|s| s.len() as f64 + 1.0)
            .sum::<f64>()
            .max(1.0);
        let mut scanner = Scanner {
            module,
            catch_all: map.len() - 1,
            catch_all_cap,
            block: cfg.entry,
            sites: Vec::new(),
        };
        for b in &cfg.blocks {
            scanner.block = b.id;
            for e in block_exprs(b) {
                scanner.scan(e);
            }
        }
        scanner.sites
    }

    fn emit_array(&mut self, acc: &access::ArrayAccess<'_>, mult: f64) {
        let g = &self.module.globals[acc.global.0 as usize];
        let mut vary = HashSet::new();
        for i in &acc.indices {
            access::collect_vars(self.module, i, &mut vary);
        }
        self.sites.push(Site {
            block: self.block,
            obj: acc.global.0 as usize,
            cap: g.size as f64,
            width: 1.0,
            mult,
            vary,
        });
    }

    fn emit_scalar(&mut self, gid: GlobalId, mult: f64) {
        self.sites.push(Site {
            block: self.block,
            obj: gid.0 as usize,
            cap: 1.0,
            width: 1.0,
            mult,
            vary: HashSet::new(),
        });
    }

    /// A string builtin touching `arg`: a literal contributes its
    /// `len + 1` words to the catch-all object; a global `char`
    /// buffer contributes an expected half-scan of itself.
    fn emit_string_arg(&mut self, arg: &Expr) {
        match &arg.kind {
            ExprKind::StrLit(s) => {
                let width = s.len() as f64 + 1.0;
                self.sites.push(Site {
                    block: self.block,
                    obj: self.catch_all,
                    cap: self.catch_all_cap.min(width),
                    width,
                    mult: 1.0,
                    vary: HashSet::new(),
                });
            }
            ExprKind::Ident(_) => {
                let Some(minic::sema::Resolution::Global(gid)) =
                    self.module.side.resolutions.get(&arg.id)
                else {
                    return;
                };
                let g = &self.module.globals[gid.0 as usize];
                if let Type::Array(elem, n) = &g.ty {
                    if matches!(**elem, Type::Char) {
                        self.sites.push(Site {
                            block: self.block,
                            obj: gid.0 as usize,
                            cap: *n as f64,
                            width: (*n as f64 / 2.0).max(1.0),
                            mult: 1.0,
                            vary: HashSet::new(),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    /// Classifies a store target; unclassified places (pointer
    /// stores, members, locals) still have their subscripts scanned.
    fn scan_place(&mut self, lhs: &Expr, mult: f64) {
        if let Some(acc) = access::array_access(self.module, lhs) {
            for i in acc.indices.iter().copied() {
                self.scan(i);
            }
            self.emit_array(&acc, mult);
        } else if let Some(gid) = access::scalar_global(self.module, lhs) {
            self.emit_scalar(gid, mult);
        } else {
            access::for_each_child(lhs, &mut |c| self.scan(c));
        }
    }

    fn scan(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign(op, lhs, rhs) => {
                self.scan(rhs);
                self.scan_place(lhs, if op.is_some() { 2.0 } else { 1.0 });
            }
            ExprKind::Unary(UnOp::PreInc | UnOp::PostInc | UnOp::PreDec | UnOp::PostDec, inner) => {
                self.scan_place(inner, 2.0);
            }
            ExprKind::Index(..) => {
                if let Some(acc) = access::array_access(self.module, e) {
                    for i in acc.indices.iter().copied() {
                        self.scan(i);
                    }
                    self.emit_array(&acc, 1.0);
                } else {
                    access::for_each_child(e, &mut |c| self.scan(c));
                }
            }
            ExprKind::Ident(_) => {
                if let Some(gid) = access::scalar_global(self.module, e) {
                    self.emit_scalar(gid, 1.0);
                }
            }
            ExprKind::Call(_, args) => {
                if let Some(b) = builtin_of(self.module, e) {
                    for &pos in string_touch_positions(b, args.len()) {
                        if let Some(a) = args.get(pos) {
                            self.emit_string_arg(a);
                        }
                    }
                }
                for a in args {
                    self.scan(a);
                }
            }
            _ => access::for_each_child(e, &mut |c| self.scan(c)),
        }
    }
}

fn builtin_of(module: &Module, call: &Expr) -> Option<Builtin> {
    let site = module.side.call_site_of.get(&call.id)?;
    match module.side.call_sites[site.0 as usize].callee {
        CalleeKind::Builtin(b) => Some(b),
        _ => None,
    }
}

/// Argument positions of `b` that reach memory through C strings.
fn string_touch_positions(b: Builtin, nargs: usize) -> &'static [usize] {
    const ALL: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
    match b {
        // Format + every vararg: `%s` operands read their strings.
        Builtin::Printf => &ALL[..nargs.min(ALL.len())],
        Builtin::Sprintf => &ALL[1..nargs.min(ALL.len())],
        Builtin::Puts | Builtin::Strlen | Builtin::Atoi => &ALL[..1],
        Builtin::Strcpy | Builtin::Strcat | Builtin::Strcmp | Builtin::Strncmp => &ALL[..2],
        _ => &[],
    }
}

/// Top-level expressions of a block (instruction and terminator).
fn block_exprs(b: &Block) -> Vec<&Expr> {
    let mut out = Vec::new();
    for i in &b.instrs {
        match i {
            Instr::Eval(e) | Instr::Init { value: e, .. } => out.push(e),
            Instr::InitStr { .. } | Instr::InitZero { .. } => {}
        }
    }
    match &b.term {
        Terminator::Branch { cond, .. } => out.push(cond),
        Terminator::Switch { scrut, .. } => out.push(scrut),
        Terminator::Return(Some(e)) => out.push(e),
        _ => {}
    }
    out
}

// ----- per-function reuse model -----

struct FuncModel<'p> {
    module: &'p Module,
    map: &'p ObjectMap,
    freqs: &'p [f64],
    forest: LoopForest,
    /// Variables modified anywhere inside each loop's body.
    mods: Vec<HashSet<VarRef>>,
    /// Markov trip estimate per loop: header frequency over
    /// loop-entry frequency.
    trips: Vec<f64>,
    sites: Vec<Site>,
    /// Loop nest of each site's block, innermost first (memoized).
    nests: Vec<Vec<usize>>,
}

impl<'p> FuncModel<'p> {
    fn build(
        program: &'p Program,
        f: FuncId,
        freqs: &'p [f64],
        predictions: &HashMap<minic::sema::BranchId, estimators::Prediction>,
        map: &'p ObjectMap,
    ) -> Self {
        let module = &program.module;
        let cfg = program.cfg(f);
        let forest = LoopForest::compute(cfg);
        let probs = edge_probabilities(program, cfg, predictions);
        let preds = cfg.predecessors();

        let mods: Vec<HashSet<VarRef>> = forest
            .loops
            .iter()
            .map(|l| {
                let mut set = HashSet::new();
                for &b in &l.body {
                    collect_mods(module, cfg.block(b), &mut set);
                }
                set
            })
            .collect();

        let freq = |b: BlockId| freqs.get(b.0 as usize).copied().unwrap_or(0.0);
        let trips: Vec<f64> = forest
            .loops
            .iter()
            .map(|l| {
                let head = freq(l.header).max(EPS);
                let enter: f64 = preds[l.header.0 as usize]
                    .iter()
                    .filter(|p| !l.contains(**p))
                    .map(|&p| {
                        let edge = probs[p.0 as usize]
                            .iter()
                            .find(|(t, _)| *t == l.header)
                            .map(|(_, pr)| *pr)
                            .unwrap_or(0.0);
                        freq(p) * edge
                    })
                    .sum();
                (head / enter.max(EPS)).clamp(1.0, 1e9)
            })
            .collect();

        let sites = Scanner::scan_cfg(module, cfg, map);
        let nests = sites.iter().map(|s| forest.nest_of(s.block)).collect();
        FuncModel {
            module,
            map,
            freqs,
            forest,
            mods,
            trips,
            sites,
            nests,
        }
    }

    fn freq(&self, b: BlockId) -> f64 {
        self.freqs.get(b.0 as usize).copied().unwrap_or(0.0)
    }

    /// Whether `v` replays the same trajectory every iteration of the
    /// loop at nest position `pos`: it is driven by a deeper loop.
    fn replays(&self, nest: &[usize], pos: usize, v: VarRef) -> bool {
        nest[..pos].iter().any(|&li| self.mods[li].contains(&v))
    }

    /// The site's *reuse loop* within the innermost `limit` nest
    /// levels: the innermost loop whose iterations revisit the same
    /// addresses — every index variable is either not modified in the
    /// loop or replayed by a deeper one. `None` = varies everywhere.
    fn reuse_level(&self, s: usize, limit: usize) -> Option<usize> {
        let nest = &self.nests[s];
        let vary = &self.sites[s].vary;
        (0..limit.min(nest.len())).find(|&j| {
            vary.iter()
                .all(|v| !self.mods[nest[j]].contains(v) || self.replays(nest, j, *v))
        })
    }

    /// Expected distinct words the site touches during one iteration
    /// of the loop at nest position `bound` (`bound = nest.len()`
    /// means one whole function invocation). The base rate is the
    /// site's execution count per iteration of its reuse loop; each
    /// enclosing loop (up to the bound) that freshly drives an index
    /// variable multiplies by its trip count; the object caps it.
    fn distinct(&self, s: usize, bound: usize) -> f64 {
        let site = &self.sites[s];
        let nest = &self.nests[s];
        let bound = bound.min(nest.len());
        let m = self.reuse_level(s, bound);
        let base_freq = match m {
            Some(j) => self.freq(self.forest.loops[nest[j]].header).max(EPS),
            None if bound < nest.len() => self.freq(self.forest.loops[nest[bound]].header).max(EPS),
            None => 1.0,
        };
        let mut d = site.width * self.freq(site.block) / base_freq;
        if let Some(j0) = m {
            for (j, &lj) in nest.iter().enumerate().take(bound).skip(j0 + 1) {
                let fresh = site
                    .vary
                    .iter()
                    .any(|v| self.mods[lj].contains(v) && !self.replays(nest, j, *v));
                if fresh {
                    d *= self.trips[lj];
                }
            }
        }
        d.min(site.cap)
    }

    /// Data footprint (expected distinct words across all objects) of
    /// one iteration of loop `li`, or of one whole invocation.
    fn footprint(&self, li: Option<usize>) -> f64 {
        let mut per_obj: HashMap<usize, f64> = HashMap::new();
        for s in 0..self.sites.len() {
            let (inside, bound) = match li {
                Some(li) => {
                    let pos = self.nests[s].iter().position(|&l| l == li);
                    (pos.is_some(), pos.unwrap_or(0))
                }
                None => (true, self.nests[s].len()),
            };
            if !inside {
                continue;
            }
            *per_obj.entry(self.sites[s].obj).or_insert(0.0) += self.distinct(s, bound);
        }
        per_obj
            .into_iter()
            .map(|(obj, words)| words.min(self.obj_cap(obj)))
            .sum()
    }

    fn obj_cap(&self, obj: usize) -> f64 {
        if obj + 1 == self.map.len() {
            // Catch-all: all string literals (heap is unmodeled).
            self.module
                .strings
                .iter()
                .map(|s| s.len() as f64 + 1.0)
                .sum::<f64>()
                .max(1.0)
        } else {
            self.module.globals[obj].size as f64
        }
    }

    /// Adds this function's predicted accesses (scaled by `w`
    /// invocations) into `est`. Returns the number of sites.
    fn accumulate(&self, w: f64, est: &mut ReuseEstimate) -> u64 {
        // Footprints are shared across sites; memoize per reuse level.
        let mut fp: HashMap<Option<usize>, f64> = HashMap::new();
        let mut fp_of = |model: &Self, li: Option<usize>| -> f64 {
            *fp.entry(li).or_insert_with(|| model.footprint(li))
        };
        for s in 0..self.sites.len() {
            let site = &self.sites[s];
            let freq = self.freq(site.block);
            if freq <= 0.0 || !freq.is_finite() {
                continue;
            }
            let nest_len = self.nests[s].len();
            let reads_inv = freq * site.width;
            let writes_inv = reads_inv * (site.mult - 1.0);
            // Distinct words one invocation ever touches.
            let cold_inv = self.distinct(s, nest_len).min(reads_inv);
            let m = self.reuse_level(s, nest_len);
            let d_intra = match m {
                Some(j) => fp_of(self, Some(self.nests[s][j])),
                None => fp_of(self, None),
            };
            let d_cross = fp_of(self, None);
            let hist = &mut est.hists[site.obj];
            // First invocation: cold first touches, then intra reuse.
            hist[COLD_BIN] += cold_inv;
            hist[dist_bin(d_intra)] += (reads_inv - cold_inv).max(0.0) * w;
            // Later invocations re-touch the "cold" set at the
            // whole-invocation footprint.
            hist[dist_bin(d_cross)] += cold_inv * (w - 1.0).max(0.0);
            // The write of a read-modify-write lands at distance 0.
            hist[0] += writes_inv * w;
        }
        self.sites.len() as u64
    }
}

/// Distance → histogram bin, with the self-word discounted.
fn dist_bin(footprint: f64) -> usize {
    let d = (footprint - 1.0).max(0.0).round();
    bin_of(d.min(9e15) as u64)
}

/// Records every variable assigned anywhere in `b` (assignments,
/// `++`/`--`, and declaration initializers).
fn collect_mods(module: &Module, b: &Block, out: &mut HashSet<VarRef>) {
    fn record_ident(module: &Module, e: &Expr, out: &mut HashSet<VarRef>) {
        if let ExprKind::Ident(_) = e.kind {
            match module.side.resolutions.get(&e.id) {
                Some(minic::sema::Resolution::Local(l)) => {
                    out.insert(VarRef::Local(*l));
                }
                Some(minic::sema::Resolution::Global(g)) => {
                    out.insert(VarRef::Global(*g));
                }
                _ => {}
            }
        }
    }
    fn record(module: &Module, e: &Expr, out: &mut HashSet<VarRef>) {
        match &e.kind {
            ExprKind::Assign(_, lhs, _) => record_ident(module, lhs, out),
            ExprKind::Unary(UnOp::PreInc | UnOp::PostInc | UnOp::PreDec | UnOp::PostDec, inner) => {
                record_ident(module, inner, out)
            }
            _ => {}
        }
    }
    for i in &b.instrs {
        match i {
            Instr::Eval(e) => e.walk(&mut |e| record(module, e, out)),
            Instr::Init { local, value, .. } => {
                out.insert(VarRef::Local(*local));
                value.walk(&mut |e| record(module, e, out));
            }
            Instr::InitStr { local, .. } | Instr::InitZero { local, .. } => {
                out.insert(VarRef::Local(*local));
            }
        }
    }
    match &b.term {
        Terminator::Branch { cond, .. } => cond.walk(&mut |e| record(module, e, out)),
        Terminator::Switch { scrut, .. } => scrut.walk(&mut |e| record(module, e, out)),
        Terminator::Return(Some(e)) => e.walk(&mut |e| record(module, e, out)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profiler::{run_traced, RunConfig};

    fn program(src: &str) -> Program {
        let module = minic::compile(src).expect("valid MiniC");
        flowgraph::build_program(&module)
    }

    #[test]
    fn estimate_is_finite_and_normalized() {
        let p = program(
            r#"
            int a[64]; int sum;
            int main(void) {
                int i, j;
                for (i = 0; i < 16; i++)
                    for (j = 0; j < 64; j++)
                        sum += a[j];
                printf("%d\n", sum);
                return 0;
            }
            "#,
        );
        let est = estimate(&p);
        let mass = est.mass();
        assert!(mass.iter().all(|v| v.is_finite() && *v >= 0.0));
        let total: f64 = mass.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "normalized, got {total}");
    }

    #[test]
    fn invariant_scalar_predicts_short_distances() {
        // `sum` is re-touched every iteration with only `a[j]` in
        // between: nearly all its accesses should be short-distance,
        // and `a`'s accesses mostly cold + streaming.
        let p = program(
            r#"
            int a[64]; int sum;
            int main(void) {
                int j;
                for (j = 0; j < 64; j++) sum += a[j];
                return sum;
            }
            "#,
        );
        let est = estimate(&p);
        let sum_obj = est.names.iter().position(|n| n == "sum").unwrap();
        let h = &est.hists[sum_obj];
        let near: f64 = h[..4].iter().sum();
        let total: f64 = h.iter().sum();
        assert!(total > 0.0);
        assert!(
            near / total > 0.8,
            "sum should reuse at short distance: {h:?}"
        );
        let a_obj = est.names.iter().position(|n| n == "a").unwrap();
        assert!(
            est.hists[a_obj][COLD_BIN] > 32.0,
            "streaming scan of a[] is mostly cold: {:?}",
            est.hists[a_obj]
        );
    }

    #[test]
    fn scores_well_against_exact_trace_on_loop_nest() {
        let p = program(
            r#"
            int a[32][32]; int b[32]; int acc;
            int main(void) {
                int i, j;
                for (i = 0; i < 32; i++)
                    for (j = 0; j < 32; j++)
                        acc += a[i][j] * b[j];
                printf("%d\n", acc);
                return 0;
            }
            "#,
        );
        let est = estimate(&p);
        let (_, trace) = run_traced(&p, &RunConfig::default()).expect("runs");
        let s = score(&est, &trace);
        assert!(s > 0.5, "weight-matching score too low: {s}");
    }
}
