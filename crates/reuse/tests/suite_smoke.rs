//! Predicted-vs-traced reuse histograms over the benchmark suite.
//!
//! Mirrors the frequency estimators' validation loop: run each suite
//! program under the exact reuse tracer, predict the histogram
//! statically, and weight-match the two distributions. The floors are
//! deliberately conservative — the point is to catch regressions in
//! the model, not to freeze today's exact scores.

use profiler::{run_traced, RunConfig};
use reuse::{estimate, score};

fn traced_score(name: &str) -> f64 {
    let prog = suite::by_name(name).expect("known program");
    let program = prog.compile().expect("suite program compiles");
    let est = estimate(&program);
    let inputs = prog.inputs();
    let mut merged = None;
    for input in &inputs {
        let config = RunConfig {
            input: input.clone(),
            ..RunConfig::default()
        };
        let (_, trace) = run_traced(&program, &config).expect("suite program runs");
        match &mut merged {
            None => merged = Some(trace),
            Some(m) => m.merge(&trace),
        }
    }
    score(&est, &merged.expect("at least one input"))
}

#[test]
fn all_programs_score_above_noise() {
    let mut rows = Vec::new();
    for prog in suite::all() {
        let s = traced_score(prog.name);
        rows.push((prog.name, s));
    }
    for (name, s) in &rows {
        println!("{name:<12} {s:.3}");
        assert!(s.is_finite() && (0.0..=1.0).contains(s), "{name}: {s}");
    }
    let mean = rows.iter().map(|(_, s)| s).sum::<f64>() / rows.len() as f64;
    println!("mean         {mean:.3}");
    assert!(mean > 0.45, "suite mean weight-matching too low: {mean:.3}");
}

/// The merged trace is a plain per-bin sum, so fanning the inputs out
/// over any number of workers must produce byte-identical histograms.
#[test]
fn merged_trace_is_identical_at_any_pool_size() {
    let prog = suite::by_name("compress").expect("known program");
    let program = prog.compile().expect("compiles");
    let compiled = profiler::compile(&program);
    let objects = profiler::ObjectMap::for_module(&program.module);
    let inputs = prog.inputs();

    let merged_with = |threads: usize| {
        let pool = pool::Pool::new(threads);
        let mut slots: Vec<Option<profiler::ReuseTrace>> = Vec::new();
        slots.resize_with(inputs.len(), || None);
        pool.scope(|s| {
            for (slot, input) in slots.iter_mut().zip(&inputs) {
                let compiled = &compiled;
                let objects = &objects;
                s.spawn(move |_| {
                    let config = RunConfig::with_input(input.clone());
                    let (_, t) = compiled.execute_traced(&config, objects).expect("runs");
                    *slot = Some(t);
                });
            }
        });
        let mut merged = profiler::ReuseTrace::empty(&objects);
        for t in slots.into_iter().flatten() {
            merged.merge(&t);
        }
        merged
    };

    let one = merged_with(1);
    let two = merged_with(2);
    let four = merged_with(4);
    assert_eq!(one, two, "pool size must not change the merged trace");
    assert_eq!(one, four, "pool size must not change the merged trace");
}

#[test]
fn compress_scores_against_exact_trace() {
    let s = traced_score("compress");
    assert!(s > 0.55, "compress predicted-vs-traced score: {s:.3}");
}

#[test]
fn cholesky_scores_against_exact_trace() {
    let s = traced_score("cholesky");
    assert!(s > 0.55, "cholesky predicted-vs-traced score: {s:.3}");
}
