//! Property tests for the cache codec and the store's recovery
//! behavior: random profiles round-trip exactly, every corruption of
//! an on-disk entry degrades to a clean miss (with the `cache.corrupt`
//! counter bumped), and keys change whenever any ingredient does.

use cache::codec::{decode_entry, encode_entry, Artifact};
use cache::{ArtifactKey, ArtifactKind, BytecodeMeta, Cache};
use flowgraph::BlockId;
use minic::sema::FuncId;
use profiler::{Profile, RunConfig};
use proptest::{proptest, ProptestConfig, Strategy, TestRng};
use std::path::PathBuf;

/// Generates structurally arbitrary profiles: ragged block tables,
/// arbitrary counts (including the u64 extremes), and random sparse
/// edge maps.
struct ProfileGen;

fn big(rng: &mut TestRng) -> u64 {
    // Mix small counts with extreme magnitudes so the codec sees
    // every byte pattern, not just low-entropy integers.
    match rng.below(4) {
        0 => rng.below(10) as u64,
        1 => rng.below(1 << 16) as u64,
        2 => u64::MAX - rng.below(1000) as u64,
        _ => (rng.below(1 << 30) as u64) << rng.below(34),
    }
}

impl Strategy for ProfileGen {
    type Value = Profile;

    fn generate(&self, rng: &mut TestRng) -> Profile {
        let n_funcs = rng.below(6);
        let mut p = Profile {
            block_counts: (0..n_funcs)
                .map(|_| (0..rng.below(8)).map(|_| big(rng)).collect())
                .collect(),
            branch_counts: (0..rng.below(8)).map(|_| (big(rng), big(rng))).collect(),
            call_site_counts: (0..rng.below(8)).map(|_| big(rng)).collect(),
            func_counts: (0..n_funcs).map(|_| big(rng)).collect(),
            edge_counts: std::collections::HashMap::new(),
            func_cost: (0..n_funcs).map(|_| big(rng)).collect(),
        };
        for _ in 0..rng.below(12) {
            let key = (
                FuncId(rng.below(6) as u32),
                BlockId(rng.below(8) as u32),
                BlockId(rng.below(8) as u32),
            );
            p.edge_counts.insert(key, big(rng));
        }
        p
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sfe-cache-it-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _fresh = std::fs::remove_dir_all(&dir);
    dir
}

/// The single entry file in a store holding exactly one artifact.
fn sole_entry_file(cache: &Cache) -> PathBuf {
    let mut found = Vec::new();
    for shard in std::fs::read_dir(cache.dir()).unwrap().flatten() {
        if !shard.path().is_dir() {
            continue;
        }
        for f in std::fs::read_dir(shard.path()).unwrap().flatten() {
            if f.path().extension().and_then(|e| e.to_str()) == Some("sfea") {
                found.push(f.path());
            }
        }
    }
    assert_eq!(found.len(), 1, "expected exactly one entry: {found:?}");
    found.pop().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn profile_round_trips_exactly(profile in ProfileGen) {
        let entry = encode_entry(&Artifact::Profile(profile.clone()));
        match decode_entry(&entry) {
            Some(Artifact::Profile(back)) => assert_eq!(back, profile),
            other => panic!("decode failed: {other:?}"),
        }
        // Encoding is canonical: re-encoding the decoded value is
        // byte-identical despite HashMap iteration order.
        let Some(back) = decode_entry(&entry) else {
            panic!("second decode failed")
        };
        assert_eq!(encode_entry(&back), entry);
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_equal(profile in ProfileGen) {
        // Flipping any one byte must either fail validation (the
        // overwhelmingly common case) or — never — decode to a
        // different value. The checksum makes "decodes differently"
        // impossible, which is exactly what this asserts.
        let entry = encode_entry(&Artifact::Profile(profile.clone()));
        // Probe a spread of positions rather than all (entries can be
        // kilobytes): every header byte plus every 7th payload byte.
        let positions = (0..24).chain((24..entry.len()).step_by(7));
        for pos in positions {
            let mut bad = entry.clone();
            bad[pos] ^= 0x20;
            if let Some(Artifact::Profile(back)) = decode_entry(&bad) {
                assert_eq!(back, profile, "byte {pos} silently changed the value");
            }
        }
    }
}

#[test]
fn corrupt_entry_on_disk_recovers_by_recompute_path() {
    let cache = Cache::open(temp_dir("corrupt")).unwrap();
    let cfg = RunConfig::with_input("x");
    let key = ArtifactKey::derive(ArtifactKind::Profile, "int main(void){}", &cfg);
    let profile = Profile {
        func_counts: vec![1, 2, 3],
        ..Profile::default()
    };
    cache.store(key, &Artifact::Profile(profile.clone()));
    let path = sole_entry_file(&cache);

    obs::reset();
    obs::set_enabled(true);

    // Flip one payload byte: load must miss, count the corruption,
    // and remove the poisoned file so a re-store heals the entry.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(cache.load_profile(key), None, "corrupt entry must miss");
    assert!(!path.exists(), "poisoned entry should be dropped");

    // The recompute path: store again, and the hit comes back.
    cache.store(key, &Artifact::Profile(profile.clone()));
    assert_eq!(cache.load_profile(key), Some(profile.clone()));

    // Truncation is just another corruption.
    std::fs::write(&path, &std::fs::read(&path).unwrap()[..10]).unwrap();
    assert_eq!(cache.load_profile(key), None, "truncated entry must miss");

    obs::set_enabled(false);
    let m = obs::snapshot();
    obs::reset();
    assert_eq!(m.counters.get("cache.corrupt").copied(), Some(2));
    assert_eq!(m.counters.get("cache.hits").copied(), Some(1));
    let _cleanup = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn version_skew_invalidates_without_error() {
    let cache = Cache::open(temp_dir("version")).unwrap();
    let key = ArtifactKey::derive(ArtifactKind::Profile, "src", &RunConfig::default());
    cache.store(key, &Artifact::Profile(Profile::default()));
    let path = sole_entry_file(&cache);

    // Rewrite the entry's format-version field (bytes 4..8): a future
    // (or past) format must read as a miss, not an error or a
    // misparse.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&(cache::FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(cache.load_profile(key), None);
    let _cleanup = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn bytecode_meta_round_trips_through_the_store() {
    let cache = Cache::open(temp_dir("meta")).unwrap();
    let key = ArtifactKey::derive(ArtifactKind::BytecodeMeta, "src", &RunConfig::default());
    let meta = BytecodeMeta {
        n_ops: u64::MAX,
        n_funcs: 0,
        n_blocks: 17,
        data_words: 1 << 40,
    };
    cache.store(key, &Artifact::BytecodeMeta(meta));
    assert_eq!(cache.load(key), Some(Artifact::BytecodeMeta(meta)));
    let _cleanup = std::fs::remove_dir_all(cache.dir());
}
