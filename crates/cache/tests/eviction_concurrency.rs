//! Eviction determinism and concurrency coverage: mtime ties broken
//! by key (pinned against coarse-granularity filesystems), many
//! writers racing an eviction scan without corruption, and exact
//! `cache.evictions` accounting.

use cache::{codec::Artifact, ArtifactKey, ArtifactKind, Cache};
use profiler::{Profile, RunConfig};
use std::fs::FileTimes;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::SystemTime;

/// Registry-touching tests share one lock: obs counters are
/// process-global.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfe-cache-itest-{}-{tag}", std::process::id()));
    let _fresh = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_profile(seed: u64) -> Profile {
    Profile {
        block_counts: vec![vec![seed, 2 * seed + 1]],
        branch_counts: vec![(seed, 1)],
        call_site_counts: vec![seed],
        func_counts: vec![1],
        edge_counts: std::collections::HashMap::new(),
        func_cost: vec![seed],
    }
}

fn key_for(i: u64) -> ArtifactKey {
    let cfg = RunConfig::with_input(i.to_le_bytes().to_vec());
    ArtifactKey::derive(ArtifactKind::Profile, "tie", &cfg)
}

fn entry_file(dir: &std::path::Path, key: ArtifactKey) -> PathBuf {
    let hex = format!("{:032x}", key.0);
    dir.join(&hex[..2]).join(format!("{}.sfea", &hex[2..]))
}

#[test]
fn mtime_ties_evict_in_key_order() {
    let _guard = serial();
    let dir = temp_dir("tiebreak");
    let profile = sample_profile(3);
    let keys: Vec<ArtifactKey> = {
        let cache = Cache::open(&dir).unwrap();
        (0..8)
            .map(|i| {
                let key = key_for(i);
                cache.store(key, &Artifact::Profile(profile.clone()));
                key
            })
            .collect()
    };

    // Force the pathological coarse-mtime case: every entry stamped
    // with one identical mtime, so ordering is decided purely by the
    // tie-break.
    let stamp = SystemTime::now();
    for &key in &keys {
        let f = std::fs::File::options()
            .append(true)
            .open(entry_file(&dir, key))
            .unwrap();
        f.set_times(FileTimes::new().set_modified(stamp)).unwrap();
    }

    // Reopening at capacity 4 scans and evicts; with all mtimes
    // equal, exactly the 4 lexicographically-smallest keys must go.
    let cache = Cache::with_capacity(&dir, 4).unwrap();
    let mut by_hex: Vec<(String, ArtifactKey)> =
        keys.iter().map(|&k| (format!("{:032x}", k.0), k)).collect();
    by_hex.sort();
    for (rank, (hex, key)) in by_hex.iter().enumerate() {
        let survived = cache.load_profile(*key).is_some();
        assert_eq!(
            survived,
            rank >= 4,
            "key {hex} (rank {rank}) must {} a same-mtime eviction",
            if rank >= 4 { "survive" } else { "lose" },
        );
    }
    let _cleanup = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_racing_eviction_stay_consistent() {
    let _guard = serial();
    let dir = temp_dir("race");
    let writers = 4u64;
    let per_writer = 50u64;
    let capacity = 20usize;
    let profile = sample_profile(7);

    obs::reset();
    obs::set_enabled(true);
    let cache = Cache::open(&dir).unwrap();
    std::thread::scope(|s| {
        for w in 0..writers {
            let (cache, profile) = (&cache, &profile);
            s.spawn(move || {
                for i in 0..per_writer {
                    cache.store(
                        key_for(w * per_writer + i),
                        &Artifact::Profile(profile.clone()),
                    );
                }
            });
        }
        // The evictor: repeated open-time scans at low capacity while
        // the writers are mid-burst.
        s.spawn(|| {
            for _ in 0..15 {
                let _scan = Cache::with_capacity(&dir, capacity).unwrap();
                std::thread::yield_now();
            }
        });
    });
    // One final scan with all writers quiesced.
    drop(Cache::with_capacity(&dir, capacity).unwrap());
    obs::set_enabled(false);
    let m = obs::snapshot();
    obs::reset();

    let total = writers * per_writer;
    assert_eq!(m.counters.get("cache.writes").copied().unwrap_or(0), total);
    assert_eq!(
        cache.entry_count(),
        capacity,
        "final scan trims to capacity"
    );
    // Every eviction counted exactly once: removals = writes - survivors.
    assert_eq!(
        m.counters.get("cache.evictions").copied().unwrap_or(0),
        total - capacity as u64,
        "evictions double- or under-counted"
    );
    // No entry was evicted mid-write: every surviving key decodes
    // cleanly (a torn entry would count as corrupt).
    let mut survivors = 0;
    for i in 0..total {
        if let Some(p) = cache.load_profile(key_for(i)) {
            assert_eq!(p, profile);
            survivors += 1;
        }
    }
    assert_eq!(survivors, capacity);
    let m = obs::snapshot();
    assert_eq!(
        m.counters.get("cache.corrupt").copied().unwrap_or(0),
        0,
        "an entry was observed mid-write"
    );
    let _cleanup = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_stores_are_readable_before_and_after_flush() {
    let _guard = serial();
    let dir = temp_dir("batch");
    let profile = sample_profile(11);
    let cache = Cache::open(&dir).unwrap();

    // Under the batch limit: nothing on disk, reads served from the
    // in-memory tier.
    for i in 0..10 {
        cache.store_batched(key_for(i), &Artifact::Profile(profile.clone()));
    }
    assert_eq!(cache.entry_count(), 0, "writes are parked in memory");
    for i in 0..10 {
        assert_eq!(cache.load_profile(key_for(i)), Some(profile.clone()));
    }

    cache.flush();
    assert_eq!(cache.entry_count(), 10, "flush writes the tier through");
    for i in 0..10 {
        assert_eq!(cache.load_profile(key_for(i)), Some(profile.clone()));
    }

    // Past the batch limit the tier self-drains.
    for i in 10..(10 + cache::WRITE_BATCH_LIMIT as u64) {
        cache.store_batched(key_for(i), &Artifact::Profile(profile.clone()));
    }
    assert!(
        cache.entry_count() > 10,
        "reaching WRITE_BATCH_LIMIT drains without an explicit flush"
    );

    // Dropping flushes the remainder; a fresh handle sees everything.
    drop(cache);
    let reopened = Cache::open(&dir).unwrap();
    for i in 0..(10 + cache::WRITE_BATCH_LIMIT as u64) {
        assert_eq!(reopened.load_profile(key_for(i)), Some(profile.clone()));
    }
    let _cleanup = std::fs::remove_dir_all(&dir);
}
