//! The on-disk binary codec for cache entries.
//!
//! Deliberately tiny and hand-rolled: the build environment is
//! offline, so serde is not an option, and the artifact shapes are
//! simple enough that an explicit little-endian encoding is both
//! smaller and easier to audit than a generic framework.
//!
//! ## Entry framing
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SFEA"
//! 4       4     format version (u32 LE) — must equal FORMAT_VERSION
//! 8       8     payload length (u64 LE)
//! 16      8     FNV-1a/64 checksum of the payload (u64 LE)
//! 24      n     payload (first byte = artifact tag)
//! ```
//!
//! Every field is validated on decode; any mismatch — short file,
//! wrong magic, version skew, length disagreement, checksum failure,
//! unknown tag, or trailing/short payload internals — yields `None`,
//! never a panic. Hostile or truncated bytes must be survivable
//! because the cache directory is world-writable state.
//!
//! ## Payload encodings
//!
//! A `Profile` payload is tag `1` followed by the six count tables,
//! each length-prefixed. The `edge_counts` hash map is serialized as
//! a `(func, from, to)`-sorted vector so that encoding is a pure
//! function of the profile *value* — equal profiles produce
//! byte-identical entries regardless of hash-map iteration order,
//! which the determinism tests rely on.
//!
//! A `BytecodeMeta` payload is tag `2` followed by four fixed `u64`s.

use crate::{fnv64, BytecodeMeta, FORMAT_VERSION};
use flowgraph::BlockId;
use minic::sema::FuncId;
use profiler::reuse::BINS;
use profiler::{Profile, ReuseTrace};

const MAGIC: [u8; 4] = *b"SFEA";
const HEADER_LEN: usize = 24;

const TAG_PROFILE: u8 = 1;
const TAG_BYTECODE_META: u8 = 2;
const TAG_OPT_PROFILE: u8 = 3;
const TAG_REUSE_PROFILE: u8 = 4;

/// One decoded cache entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A full execution profile.
    Profile(Profile),
    /// Compiled-bytecode summary statistics.
    BytecodeMeta(BytecodeMeta),
    /// A profile measured on the *optimized* program (same layout as
    /// [`Artifact::Profile`], distinct tag so the two artifact kinds
    /// can never be confused for one another).
    OptProfile(Profile),
    /// An exact reuse-distance trace from a traced run. Tagged
    /// separately from [`Artifact::Profile`] so a trace is never
    /// served where a plain profile was requested or vice versa.
    ReuseProfile(ReuseTrace),
}

/// Encodes `artifact` as a complete framed entry (header + payload).
pub fn encode_entry(artifact: &Artifact) -> Vec<u8> {
    let payload = encode_payload(artifact);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a framed entry, validating magic, version, length, and
/// checksum. `None` on any defect.
pub fn decode_entry(bytes: &[u8]) -> Option<Artifact> {
    if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != FORMAT_VERSION {
        return None;
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len || fnv64(payload) != checksum {
        return None;
    }
    decode_payload(payload)
}

fn encode_payload(artifact: &Artifact) -> Vec<u8> {
    let mut out = Vec::new();
    match artifact {
        Artifact::Profile(p) => {
            out.push(TAG_PROFILE);
            put_profile(&mut out, p);
        }
        Artifact::OptProfile(p) => {
            out.push(TAG_OPT_PROFILE);
            put_profile(&mut out, p);
        }
        Artifact::BytecodeMeta(m) => {
            out.push(TAG_BYTECODE_META);
            put_u64(&mut out, m.n_ops);
            put_u64(&mut out, m.n_funcs);
            put_u64(&mut out, m.n_blocks);
            put_u64(&mut out, m.data_words);
        }
        Artifact::ReuseProfile(t) => {
            out.push(TAG_REUSE_PROFILE);
            put_u64(&mut out, t.events);
            put_len(&mut out, t.objects.len());
            for o in &t.objects {
                put_len(&mut out, o.name.len());
                out.extend_from_slice(o.name.as_bytes());
                for &c in &o.hist {
                    put_u64(&mut out, c);
                }
            }
        }
    }
    out
}

fn put_profile(out: &mut Vec<u8>, p: &Profile) {
    put_len(out, p.block_counts.len());
    for row in &p.block_counts {
        put_len(out, row.len());
        for &c in row {
            put_u64(out, c);
        }
    }
    put_len(out, p.branch_counts.len());
    for &(taken, not_taken) in &p.branch_counts {
        put_u64(out, taken);
        put_u64(out, not_taken);
    }
    put_len(out, p.call_site_counts.len());
    for &c in &p.call_site_counts {
        put_u64(out, c);
    }
    put_len(out, p.func_counts.len());
    for &c in &p.func_counts {
        put_u64(out, c);
    }
    // Canonical order: equal maps must encode identically.
    let mut edges: Vec<(u32, u32, u32, u64)> = p
        .edge_counts
        .iter()
        .map(|(&(f, from, to), &n)| (f.0, from.0, to.0, n))
        .collect();
    edges.sort_unstable();
    put_len(out, edges.len());
    for (f, from, to, n) in edges {
        put_u32(out, f);
        put_u32(out, from);
        put_u32(out, to);
        put_u64(out, n);
    }
    put_len(out, p.func_cost.len());
    for &c in &p.func_cost {
        put_u64(out, c);
    }
}

fn read_profile(r: &mut Reader) -> Option<Profile> {
    let mut p = Profile::default();
    for _ in 0..r.len()? {
        let row = (0..r.len()?).map(|_| r.u64()).collect::<Option<_>>()?;
        p.block_counts.push(row);
    }
    for _ in 0..r.len()? {
        p.branch_counts.push((r.u64()?, r.u64()?));
    }
    for _ in 0..r.len()? {
        p.call_site_counts.push(r.u64()?);
    }
    for _ in 0..r.len()? {
        p.func_counts.push(r.u64()?);
    }
    for _ in 0..r.len()? {
        let key = (FuncId(r.u32()?), BlockId(r.u32()?), BlockId(r.u32()?));
        p.edge_counts.insert(key, r.u64()?);
    }
    for _ in 0..r.len()? {
        p.func_cost.push(r.u64()?);
    }
    Some(p)
}

fn decode_payload(payload: &[u8]) -> Option<Artifact> {
    let mut r = Reader(payload);
    let artifact = match r.u8()? {
        TAG_PROFILE => Artifact::Profile(read_profile(&mut r)?),
        TAG_OPT_PROFILE => Artifact::OptProfile(read_profile(&mut r)?),
        TAG_BYTECODE_META => Artifact::BytecodeMeta(BytecodeMeta {
            n_ops: r.u64()?,
            n_funcs: r.u64()?,
            n_blocks: r.u64()?,
            data_words: r.u64()?,
        }),
        TAG_REUSE_PROFILE => {
            let events = r.u64()?;
            let n = r.len()?;
            let mut objects = Vec::with_capacity(n);
            for _ in 0..n {
                let name_len = r.len()?;
                let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_string();
                let mut hist = [0u64; BINS];
                for slot in &mut hist {
                    *slot = r.u64()?;
                }
                objects.push(profiler::reuse::ReuseObject { name, hist });
            }
            Artifact::ReuseProfile(ReuseTrace { objects, events })
        }
        _ => return None,
    };
    // Trailing garbage means the writer and reader disagree about the
    // format — treat as corrupt rather than silently ignoring it.
    r.0.is_empty().then_some(artifact)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u64(out, n as u64);
}

/// A bounds-checked little-endian cursor; every read is `Option` so
/// truncation anywhere surfaces as a clean decode failure.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// A length prefix, sanity-capped so a corrupt length cannot make
    /// a decode loop attempt billions of iterations. Any genuine
    /// table in this workspace is far below the cap.
    fn len(&mut self) -> Option<usize> {
        let n = self.u64()?;
        // No table can have more entries than the payload has bytes.
        if n > self.0.len() as u64 {
            return None;
        }
        Some(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_every_header_defect() {
        let entry = encode_entry(&Artifact::BytecodeMeta(BytecodeMeta::default()));
        assert!(decode_entry(&entry).is_some());

        assert!(decode_entry(&[]).is_none(), "empty");
        assert!(decode_entry(&entry[..10]).is_none(), "truncated header");
        assert!(
            decode_entry(&entry[..entry.len() - 1]).is_none(),
            "truncated payload"
        );

        let mut bad = entry.clone();
        bad[0] = b'X';
        assert!(decode_entry(&bad).is_none(), "bad magic");

        let mut bad = entry.clone();
        bad[4] ^= 0xff;
        assert!(decode_entry(&bad).is_none(), "version skew");

        let mut bad = entry.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(decode_entry(&bad).is_none(), "checksum catches bit flip");

        let mut bad = entry.clone();
        bad.push(0);
        assert!(decode_entry(&bad).is_none(), "length catches trailing byte");
    }

    #[test]
    fn rejects_unknown_tag_and_oversized_length() {
        // A validly framed payload with an unknown tag.
        let payload = vec![99u8];
        let mut entry = Vec::new();
        entry.extend_from_slice(&MAGIC);
        entry.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(&fnv64(&payload).to_le_bytes());
        entry.extend_from_slice(&payload);
        assert!(decode_entry(&entry).is_none());

        // Tag 1 followed by a huge table length: must fail fast, not
        // loop for billions of iterations.
        let mut payload = vec![TAG_PROFILE];
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut entry = Vec::new();
        entry.extend_from_slice(&MAGIC);
        entry.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(&fnv64(&payload).to_le_bytes());
        entry.extend_from_slice(&payload);
        assert!(decode_entry(&entry).is_none());
    }
}
