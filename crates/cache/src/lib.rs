//! # cache — the persistent content-addressed artifact store
//!
//! The paper's pitch is that static estimates are cheap *because
//! profiling is expensive* — and the pipeline telemetry agrees:
//! profiler execution dwarfs every other stage combined, and before
//! this crate existed nothing survived the process, so every `sfe
//! suite` re-ran all of it. This store amortizes that cost across
//! runs the way production PGO pipelines amortize profile collection:
//! artifacts are keyed by a content fingerprint of everything that
//! could change the result, kept in a directory of small checksummed
//! files, consulted before executing, and written through after.
//!
//! ## Key derivation
//!
//! An [`ArtifactKey`] is a 128-bit FNV-1a fingerprint (two 64-bit
//! streams with different offset bases — deterministic across
//! processes, platforms, and Rust versions, unlike `DefaultHasher`)
//! over a length-prefixed encoding of:
//!
//! - the artifact kind tag (profile vs. bytecode metadata),
//! - [`FORMAT_VERSION`] (bump it and every old entry misses),
//! - the full program source text,
//! - the run configuration (`max_steps`, `max_call_depth`), and
//! - the input bytes served to `getchar()`.
//!
//! Any change to any ingredient changes the key, so invalidation is
//! automatic — there is no staleness protocol to get wrong.
//!
//! ## On-disk layout
//!
//! `<dir>/<k[0..2]>/<k[2..32]>.sfea`, where `k` is the 32-hex-digit
//! key: a 256-way fan-out keeps directories small. Each file is
//! `magic ‖ version ‖ payload_len ‖ fnv64(payload) ‖ payload` (see
//! [`codec`]). Writes go to a `.tmp-<pid>-<n>` sibling and are
//! `rename`d into place, so concurrent writers race benignly — both
//! write identical bytes for identical keys — and readers never see a
//! torn file.
//!
//! ## Failure policy
//!
//! A missing, truncated, corrupt, version-skewed, or
//! wrong-checksummed entry is *never* an error: [`Cache::load`]
//! returns `None`, bumps the `cache.corrupt` counter (when the bytes
//! were there but wrong), and the caller recomputes and overwrites.
//! The store is an accelerator, not a source of truth.
//!
//! ## Eviction
//!
//! Best-effort, capacity-based: when an opportunistic scan (at
//! [`Cache::open`], and every [`EVICT_SCAN_INTERVAL`] writes) finds
//! more than [`Cache::capacity`] entries, the oldest-modified entries
//! are removed down to capacity and `cache.evictions` is bumped.
//! Filesystem mtimes can have full-second granularity, so same-mtime
//! groups are common after a burst of writes; the scan breaks those
//! ties by key (the entry's hex filename), which makes eviction order
//! a pure function of (mtime, key) — identical on every filesystem.
//! Concurrent scans race benignly: `remove_file` succeeds in exactly
//! one racer, so each eviction is counted once, and the temp+rename
//! write protocol means a scan can never observe (or remove) a
//! half-written entry.
//!
//! ## Batched writes
//!
//! [`Cache::store_batched`] parks encoded entries in a bounded
//! in-memory tier instead of hitting the filesystem per call; the
//! tier drains to disk (same temp+rename protocol) when it reaches
//! [`WRITE_BATCH_LIMIT`] entries, on [`Cache::flush`], and on drop.
//! [`Cache::load`] consults the tier first, so a reader always sees
//! its own unflushed writes. This is what lets a corpus run push
//! 10,000 small artifacts through the store without serializing on
//! 10,000 interleaved `create_dir_all`/create/rename round-trips.

#![warn(missing_docs)]

pub mod codec;

use profiler::{Profile, RunConfig};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Bump when the codec layout or key derivation changes; every entry
/// written under another version silently misses. v2 added the
/// optimized-run profile kind ([`ArtifactKind::OptProfile`]); v3
/// added reuse-distance traces ([`ArtifactKind::ReuseProfile`]) and
/// folded the trace-mode flag into key derivation
/// ([`ArtifactKey::derive_reuse`]).
pub const FORMAT_VERSION: u32 = 3;

/// File extension for cache entries.
const ENTRY_EXT: &str = "sfea";

/// How many writes between opportunistic eviction scans.
pub const EVICT_SCAN_INTERVAL: u64 = 256;

/// How many entries the in-memory write tier holds before
/// [`Cache::store_batched`] drains it to disk.
pub const WRITE_BATCH_LIMIT: usize = 64;

/// Default [`Cache::capacity`]: far above one suite's needs (14
/// programs × a handful of inputs), far below anything that hurts.
pub const DEFAULT_CAPACITY: usize = 8192;

/// What kind of artifact a key addresses. The tag participates in key
/// derivation, so the two kinds can never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A full execution [`Profile`] of (source, config, input).
    Profile,
    /// [`BytecodeMeta`] for a compiled program (input-independent).
    BytecodeMeta,
    /// A [`Profile`] from executing the *optimized* program; its key
    /// is additionally salted with the optimization level and the
    /// optimizer's pass-pipeline version (see
    /// [`ArtifactKey::derive_opt`]), so a different level — or a
    /// pipeline change — always misses.
    OptProfile,
    /// An exact reuse-distance trace of (source, config, input) from
    /// the profiler's tracing mode; its key is additionally salted
    /// with the trace-mode flag (see [`ArtifactKey::derive_reuse`]),
    /// so a trace can never be served from a plain-profile entry.
    ReuseProfile,
}

impl ArtifactKind {
    fn tag(self) -> u8 {
        match self {
            ArtifactKind::Profile => 1,
            ArtifactKind::BytecodeMeta => 2,
            ArtifactKind::OptProfile => 3,
            ArtifactKind::ReuseProfile => 4,
        }
    }
}

/// Summary statistics of a compiled bytecode image — the cheap,
/// version-stable slice of `profiler::CompiledProgram` worth keeping
/// (op and function counts for capacity planning; the bytecode itself
/// recompiles in well under a millisecond, so caching the full image
/// would cost determinism risk for no win).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BytecodeMeta {
    /// Instructions in the compiled stream.
    pub n_ops: u64,
    /// Functions (defined + prototypes).
    pub n_funcs: u64,
    /// Total CFG blocks with counters.
    pub n_blocks: u64,
    /// Words in the static data image.
    pub data_words: u64,
}

/// A 128-bit content fingerprint; the cache address of one artifact.
/// Ordered by key value — the eviction tie-break order.
// The derived `partial_cmp` delegates to `Ord` on a `u128` — total, so
// exempt from the workspace NaN-ordering ban (clippy.toml).
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey(pub u128);

/// Incremental FNV-1a over two 64-bit streams with distinct offset
/// bases. Stable by construction — no std hasher internals involved.
struct Fnv128 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv128 {
    fn new() -> Self {
        Fnv128 {
            a: 0xcbf2_9ce4_8422_2325,
            // A second, unrelated offset basis (digits of pi) keeps
            // the two streams independent.
            b: 0x2437_0747_8584_2225,
        }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Length-prefixed field update, so `("ab","c")` and `("a","bc")`
    /// hash differently.
    fn field(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Stand-alone FNV-1a/64 used for payload checksums.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in bytes {
        h = (h ^ u64::from(x)).wrapping_mul(FNV_PRIME);
    }
    h
}

impl ArtifactKey {
    /// The key of `kind` for running `source` under `config` — the
    /// input bytes are part of `config`.
    pub fn derive(kind: ArtifactKind, source: &str, config: &RunConfig) -> ArtifactKey {
        let mut h = Fnv128::new();
        h.update(&[kind.tag()]);
        h.update(&FORMAT_VERSION.to_le_bytes());
        h.field(source.as_bytes());
        h.update(&config.max_steps.to_le_bytes());
        h.update(&(config.max_call_depth as u64).to_le_bytes());
        h.field(&config.input);
        ArtifactKey(h.finish())
    }

    /// The key of an [`ArtifactKind::OptProfile`]: [`ArtifactKey::derive`]
    /// additionally salted with the optimization level and the
    /// optimizer's pass-pipeline version, so changing either recomputes.
    pub fn derive_opt(
        source: &str,
        config: &RunConfig,
        opt_level: u8,
        pipeline_version: u32,
    ) -> ArtifactKey {
        let mut h = Fnv128::new();
        h.update(&[ArtifactKind::OptProfile.tag()]);
        h.update(&FORMAT_VERSION.to_le_bytes());
        h.field(source.as_bytes());
        h.update(&config.max_steps.to_le_bytes());
        h.update(&(config.max_call_depth as u64).to_le_bytes());
        h.field(&config.input);
        h.update(&[opt_level]);
        h.update(&pipeline_version.to_le_bytes());
        ArtifactKey(h.finish())
    }

    /// The key of an [`ArtifactKind::ReuseProfile`]:
    /// [`ArtifactKey::derive`] additionally salted with an explicit
    /// trace-mode byte. The kind tag already separates the artifact
    /// spaces; the extra byte makes the execution-mode dependency part
    /// of the key contract itself, so a future non-traced reuse
    /// summary (flag 0) can coexist without a format bump.
    pub fn derive_reuse(source: &str, config: &RunConfig) -> ArtifactKey {
        const TRACE_MODE: u8 = 1;
        let mut h = Fnv128::new();
        h.update(&[ArtifactKind::ReuseProfile.tag()]);
        h.update(&FORMAT_VERSION.to_le_bytes());
        h.field(source.as_bytes());
        h.update(&config.max_steps.to_le_bytes());
        h.update(&(config.max_call_depth as u64).to_le_bytes());
        h.field(&config.input);
        h.update(&[TRACE_MODE]);
        ArtifactKey(h.finish())
    }

    /// 32 lowercase hex digits.
    fn hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

/// A handle on one cache directory. Cheap to clone conceptually but
/// deliberately not `Clone`: share it by reference (it is `Sync`; all
/// internal state is atomic).
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    capacity: usize,
    writes: AtomicU64,
    tmp_counter: AtomicU64,
    /// Encoded-but-unflushed entries from [`Cache::store_batched`].
    pending: Mutex<HashMap<ArtifactKey, Vec<u8>>>,
    /// One flag per 2-hex-digit shard directory already created, so
    /// the drain path skips the `create_dir_all` syscall after the
    /// first write into a shard.
    shard_created: [AtomicBool; 256],
}

impl Cache {
    /// Opens (creating if needed) the store rooted at `dir` with the
    /// [`DEFAULT_CAPACITY`], and runs one eviction scan.
    ///
    /// # Errors
    ///
    /// Only if the directory cannot be created — a cache that cannot
    /// even hold its root is worth surfacing, unlike any later I/O
    /// trouble, which degrades to recomputation.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Cache> {
        Cache::with_capacity(dir, DEFAULT_CAPACITY)
    }

    /// [`Cache::open`] with an explicit entry-count capacity.
    ///
    /// # Errors
    ///
    /// See [`Cache::open`].
    pub fn with_capacity(dir: impl Into<PathBuf>, capacity: usize) -> std::io::Result<Cache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let cache = Cache {
            dir,
            capacity: capacity.max(1),
            writes: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            shard_created: [const { AtomicBool::new(false) }; 256],
        };
        cache.evict_to_capacity();
        Ok(cache)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Maximum entries the eviction scan keeps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn entry_path(&self, key: ArtifactKey) -> PathBuf {
        let hex = key.hex();
        self.dir
            .join(&hex[..2])
            .join(format!("{}.{ENTRY_EXT}", &hex[2..]))
    }

    /// Loads and decodes the artifact at `key`, or `None` on miss or
    /// on any validation failure (bumping `cache.corrupt` for bytes
    /// that exist but fail validation — the caller recomputes).
    pub fn load(&self, key: ArtifactKey) -> Option<codec::Artifact> {
        // The in-memory write tier first: a batched writer must see
        // its own stores before they reach disk.
        if let Some(bytes) = self.lock_pending().get(&key).cloned() {
            return match codec::decode_entry(&bytes) {
                Some(artifact) => {
                    obs::counter_add("cache.hits", 1);
                    Some(artifact)
                }
                None => {
                    obs::counter_add("cache.misses", 1);
                    obs::counter_add("cache.corrupt", 1);
                    self.lock_pending().remove(&key);
                    None
                }
            };
        }
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                obs::counter_add("cache.misses", 1);
                return None;
            }
        };
        match codec::decode_entry(&bytes) {
            Some(artifact) => {
                obs::counter_add("cache.hits", 1);
                Some(artifact)
            }
            None => {
                obs::counter_add("cache.misses", 1);
                obs::counter_add("cache.corrupt", 1);
                // Drop the poisoned entry so the write-through after
                // recomputation heals the store.
                let _best_effort = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Convenience: [`Cache::load`] narrowed to profiles.
    pub fn load_profile(&self, key: ArtifactKey) -> Option<Profile> {
        match self.load(key)? {
            codec::Artifact::Profile(p) => Some(p),
            _ => None,
        }
    }

    /// Convenience: [`Cache::load`] narrowed to optimized-run profiles.
    pub fn load_opt_profile(&self, key: ArtifactKey) -> Option<Profile> {
        match self.load(key)? {
            codec::Artifact::OptProfile(p) => Some(p),
            _ => None,
        }
    }

    /// Convenience: [`Cache::load`] narrowed to reuse-distance traces.
    /// Any other artifact kind at the key — including a plain profile
    /// — is *not* served.
    pub fn load_reuse_profile(&self, key: ArtifactKey) -> Option<profiler::ReuseTrace> {
        match self.load(key)? {
            codec::Artifact::ReuseProfile(t) => Some(t),
            _ => None,
        }
    }

    fn lock_pending(&self) -> std::sync::MutexGuard<'_, HashMap<ArtifactKey, Vec<u8>>> {
        match self.pending.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Temp+rename write of pre-encoded bytes; returns whether the
    /// entry landed. Shard directory creation is memoized per cache
    /// handle.
    fn write_entry(&self, key: ArtifactKey, entry: &[u8]) -> bool {
        let path = self.entry_path(key);
        let Some(parent) = path.parent() else {
            return false;
        };
        let shard = (key.0 >> 120) as u8;
        if !self.shard_created[shard as usize].load(Ordering::Relaxed) {
            if std::fs::create_dir_all(parent).is_err() {
                return false;
            }
            self.shard_created[shard as usize].store(true, Ordering::Relaxed);
        }
        let tmp = parent.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let written = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(entry))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                obs::counter_add("cache.writes", 1);
                true
            }
            Err(_) => {
                let _best_effort = std::fs::remove_file(&tmp);
                false
            }
        }
    }

    /// Bumps the write counter and runs the periodic eviction scan.
    fn account_writes(&self, n: u64) {
        if n == 0 {
            return;
        }
        let before = self.writes.fetch_add(n, Ordering::Relaxed);
        if before / EVICT_SCAN_INTERVAL != (before + n) / EVICT_SCAN_INTERVAL {
            self.evict_to_capacity();
        }
    }

    /// Encodes and writes `artifact` at `key` (write-through after a
    /// miss). All I/O errors degrade to "not cached": the tempfile is
    /// cleaned up and the store stays consistent.
    pub fn store(&self, key: ArtifactKey, artifact: &codec::Artifact) {
        let entry = codec::encode_entry(artifact);
        if self.write_entry(key, &entry) {
            self.account_writes(1);
        }
    }

    /// Like [`Cache::store`], but parks the encoded entry in the
    /// in-memory write tier instead of writing through; the tier
    /// drains when it reaches [`WRITE_BATCH_LIMIT`] entries, on
    /// [`Cache::flush`], and when the cache is dropped. Readers see
    /// the entry immediately via [`Cache::load`]'s tier check.
    pub fn store_batched(&self, key: ArtifactKey, artifact: &codec::Artifact) {
        let entry = codec::encode_entry(artifact);
        let drain: Vec<(ArtifactKey, Vec<u8>)> = {
            let mut pending = self.lock_pending();
            pending.insert(key, entry);
            if pending.len() < WRITE_BATCH_LIMIT {
                return;
            }
            pending.drain().collect()
        };
        self.drain_entries(drain);
    }

    /// Writes every entry parked by [`Cache::store_batched`] to disk.
    /// Idempotent; called automatically on drop.
    pub fn flush(&self) {
        let drain: Vec<(ArtifactKey, Vec<u8>)> = self.lock_pending().drain().collect();
        self.drain_entries(drain);
    }

    fn drain_entries(&self, entries: Vec<(ArtifactKey, Vec<u8>)>) {
        let mut written = 0u64;
        for (key, entry) in entries {
            if self.write_entry(key, &entry) {
                written += 1;
            }
        }
        self.account_writes(written);
    }

    /// Removes oldest-modified entries until at most `capacity`
    /// remain, breaking mtime ties by key so the order is a pure
    /// function of the store's contents (coarse-granularity
    /// filesystems stamp whole write bursts with one mtime — without
    /// the key tie-break, which entry survives would depend on
    /// directory iteration order). Best-effort: unreadable metadata
    /// sorts oldest, racing removals are counted by whichever racer's
    /// `remove_file` succeeds, so `cache.evictions` counts each entry
    /// once.
    fn evict_to_capacity(&self) {
        let mut entries: Vec<(std::time::SystemTime, String, PathBuf)> = Vec::new();
        let Ok(shards) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for shard in shards.flatten() {
            let Ok(files) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            let shard_name = shard.file_name().to_string_lossy().into_owned();
            for f in files.flatten() {
                let path = f.path();
                if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                    continue;
                }
                let mtime = f
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                // The entry's full hex key: shard prefix + stem.
                let key = match path.file_stem() {
                    Some(stem) => format!("{shard_name}{}", stem.to_string_lossy()),
                    None => continue,
                };
                entries.push((mtime, key, path));
            }
        }
        if entries.len() <= self.capacity {
            return;
        }
        entries.sort();
        let excess = entries.len() - self.capacity;
        for (_, _, path) in entries.into_iter().take(excess) {
            if std::fs::remove_file(path).is_ok() {
                obs::counter_add("cache.evictions", 1);
            }
        }
    }

    /// Number of entries currently on disk (test/diagnostic helper;
    /// walks the directory).
    pub fn entry_count(&self) -> usize {
        let Ok(shards) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|s| std::fs::read_dir(s.path()).ok())
            .flatten()
            .flatten()
            .filter(|f| f.path().extension().and_then(|e| e.to_str()) == Some(ENTRY_EXT))
            .count()
    }
}

impl Drop for Cache {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codec::Artifact;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfe-cache-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _fresh = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_profile(seed: u64) -> Profile {
        use flowgraph::BlockId;
        use minic::sema::FuncId;
        let mut p = Profile {
            block_counts: vec![vec![seed, seed * 2, 3], vec![]],
            branch_counts: vec![(seed, 1), (0, 0)],
            call_site_counts: vec![5, seed],
            func_counts: vec![1, seed],
            edge_counts: std::collections::HashMap::new(),
            func_cost: vec![seed * 100, 7],
        };
        p.edge_counts
            .insert((FuncId(0), BlockId(1), BlockId(2)), seed + 9);
        p.edge_counts.insert((FuncId(1), BlockId(0), BlockId(0)), 3);
        p
    }

    #[test]
    fn opt_profile_key_invalidates_on_level_and_pipeline_change() {
        let cache = Cache::open(temp_dir("optkey")).unwrap();
        let cfg = RunConfig::with_input("abc");
        let src = "int main(void){}";

        let k3 = ArtifactKey::derive_opt(src, &cfg, 3, 1);
        let profile = sample_profile(7);
        cache.store(k3, &Artifact::OptProfile(profile.clone()));
        assert_eq!(cache.load_opt_profile(k3).unwrap(), profile);

        // A different opt level misses.
        let k2 = ArtifactKey::derive_opt(src, &cfg, 2, 1);
        assert_ne!(k2, k3, "opt level participates in the key");
        assert_eq!(cache.load_opt_profile(k2), None);

        // A pass-pipeline version bump misses.
        let k3v2 = ArtifactKey::derive_opt(src, &cfg, 3, 2);
        assert_ne!(k3v2, k3, "pipeline version participates in the key");
        assert_eq!(cache.load_opt_profile(k3v2), None);

        // The unoptimized profile kind never aliases the optimized one.
        let kp = ArtifactKey::derive(ArtifactKind::Profile, src, &cfg);
        assert_ne!(kp, k3);
        cache.store(kp, &Artifact::Profile(sample_profile(1)));
        assert_eq!(cache.load_opt_profile(kp), None, "kinds are disjoint");
        assert!(cache.load_profile(k3).is_none(), "kinds are disjoint");
    }

    fn sample_trace(seed: u64) -> profiler::ReuseTrace {
        use profiler::reuse::{ReuseObject, BINS};
        let mut hist = [0u64; BINS];
        hist[0] = seed;
        hist[5] = seed * 3;
        hist[BINS - 1] = 2;
        profiler::ReuseTrace {
            objects: vec![
                ReuseObject {
                    name: "a".to_string(),
                    hist,
                },
                ReuseObject {
                    name: "<str/heap>".to_string(),
                    hist: [0; BINS],
                },
            ],
            events: seed * 3 + seed + 2,
        }
    }

    #[test]
    fn reuse_profile_key_invalidates_and_never_aliases_plain_profile() {
        let cache = Cache::open(temp_dir("reusekey")).unwrap();
        let cfg = RunConfig::with_input("abc");
        let src = "int main(void){}";

        let kr = ArtifactKey::derive_reuse(src, &cfg);
        let trace = sample_trace(11);
        cache.store(kr, &Artifact::ReuseProfile(trace.clone()));
        assert_eq!(cache.load_reuse_profile(kr).unwrap(), trace);

        // Source and input both participate in the key.
        assert_ne!(kr, ArtifactKey::derive_reuse("int x;", &cfg));
        assert_ne!(
            kr,
            ArtifactKey::derive_reuse(src, &RunConfig::with_input("xyz"))
        );

        // A trace is never served where a plain profile was asked for,
        // nor a profile where a trace was asked for — even if the keys
        // were somehow forced to collide, the codec tags are disjoint.
        let kp = ArtifactKey::derive(ArtifactKind::Profile, src, &cfg);
        assert_ne!(kp, kr, "trace flag + kind tag separate the key spaces");
        cache.store(kp, &Artifact::Profile(sample_profile(4)));
        assert_eq!(cache.load_reuse_profile(kp), None, "kinds are disjoint");
        assert!(cache.load_profile(kr).is_none(), "kinds are disjoint");

        // The explicit same-key cross-kind check: a plain profile
        // stored *at the trace's own key* still refuses to decode as
        // a trace.
        cache.store(kr, &Artifact::Profile(sample_profile(9)));
        assert_eq!(
            cache.load_reuse_profile(kr),
            None,
            "trace output never served from a plain-profile entry"
        );
        let _cleanup = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn round_trips_reuse_trace() {
        let dir = temp_dir("reusetrip");
        let cfg = RunConfig::default();
        let kr = ArtifactKey::derive_reuse("int a[4];", &cfg);
        let trace = sample_trace(99);
        {
            let cache = Cache::open(&dir).unwrap();
            cache.store(kr, &Artifact::ReuseProfile(trace.clone()));
        }
        // A fresh handle reads it back from disk byte-identically.
        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.load_reuse_profile(kr), Some(trace));
        let _cleanup = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn round_trips_profile_and_meta() {
        let cache = Cache::open(temp_dir("roundtrip")).unwrap();
        let cfg = RunConfig::with_input("abc");
        let kp = ArtifactKey::derive(ArtifactKind::Profile, "int main(void){}", &cfg);
        let km = ArtifactKey::derive(ArtifactKind::BytecodeMeta, "int main(void){}", &cfg);
        assert_ne!(kp, km, "kind participates in the key");

        let profile = sample_profile(42);
        cache.store(kp, &Artifact::Profile(profile.clone()));
        assert_eq!(cache.load_profile(kp).unwrap(), profile);

        let meta = BytecodeMeta {
            n_ops: 10,
            n_funcs: 2,
            n_blocks: 5,
            data_words: 64,
        };
        cache.store(km, &Artifact::BytecodeMeta(meta));
        assert_eq!(cache.load(km), Some(Artifact::BytecodeMeta(meta)));
        assert_eq!(cache.entry_count(), 2);
        let _cleanup = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn keys_separate_every_ingredient() {
        let cfg = RunConfig::with_input("in");
        let base = ArtifactKey::derive(ArtifactKind::Profile, "src", &cfg);
        assert_eq!(
            base,
            ArtifactKey::derive(ArtifactKind::Profile, "src", &cfg)
        );

        assert_ne!(
            base,
            ArtifactKey::derive(ArtifactKind::Profile, "src2", &cfg),
            "source changes the key"
        );
        assert_ne!(
            base,
            ArtifactKey::derive(ArtifactKind::Profile, "src", &RunConfig::with_input("in2")),
            "input changes the key"
        );
        let limits = RunConfig {
            max_steps: 1,
            ..RunConfig::with_input("in")
        };
        assert_ne!(
            base,
            ArtifactKey::derive(ArtifactKind::Profile, "src", &limits),
            "run limits change the key"
        );
        // Length-prefixing: moving a byte across the source/input
        // boundary must not collide.
        assert_ne!(
            ArtifactKey::derive(ArtifactKind::Profile, "ab", &RunConfig::with_input("c")),
            ArtifactKey::derive(ArtifactKind::Profile, "a", &RunConfig::with_input("bc")),
        );
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let cache = Cache::open(temp_dir("miss")).unwrap();
        let key = ArtifactKey::derive(ArtifactKind::Profile, "nothing here", &RunConfig::default());
        assert!(cache.load(key).is_none());
        let _cleanup = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn eviction_trims_oldest_to_capacity() {
        let dir = temp_dir("evict");
        let cache = Cache::with_capacity(&dir, 4).unwrap();
        let profile = sample_profile(1);
        let mut keys = Vec::new();
        for i in 0..8u64 {
            let cfg = RunConfig::with_input(i.to_le_bytes().to_vec());
            let key = ArtifactKey::derive(ArtifactKind::Profile, "src", &cfg);
            cache.store(key, &Artifact::Profile(profile.clone()));
            keys.push(key);
        }
        assert_eq!(cache.entry_count(), 8, "scan interval not reached yet");
        // Reopening runs a scan immediately.
        drop(cache);
        let cache = Cache::with_capacity(&dir, 4).unwrap();
        assert_eq!(cache.entry_count(), 4);
        let _cleanup = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn concurrent_stores_of_same_key_are_benign() {
        let cache = Cache::open(temp_dir("concurrent")).unwrap();
        let key = ArtifactKey::derive(ArtifactKind::Profile, "x", &RunConfig::default());
        let profile = sample_profile(9);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..20 {
                        cache.store(key, &Artifact::Profile(profile.clone()));
                        if let Some(p) = cache.load_profile(key) {
                            assert_eq!(p, profile);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.load_profile(key).unwrap(), profile);
        let _cleanup = std::fs::remove_dir_all(cache.dir());
    }
}
