//! Front-end edge cases: preprocessor, parser recovery behaviour,
//! tricky declarators, and semantic corner cases beyond the unit tests
//! inside the crate.

use minic::compile;
use minic::sema::Resolution;

#[test]
fn macros_expand_inside_macros_and_arrays() {
    let m = compile(
        r#"
        #define ROWS 4
        #define COLS (ROWS * 2)
        #define CELLS (ROWS * COLS)
        int grid[CELLS];
        int main(void) { return sizeof(int) * CELLS; }
        "#,
    )
    .unwrap();
    assert_eq!(m.globals[0].size, 32);
}

#[test]
fn octal_hex_char_and_suffixed_literals() {
    let m = compile(
        r#"
        int a = 0x10;
        int b = 010;
        int c = 'A';
        int d = 100L;
        int e = 1000UL;
        "#,
    )
    .unwrap();
    let vals: Vec<i64> = m
        .globals
        .iter()
        .map(|g| match g.init[0] {
            minic::sema::InitWord::Int(v) => v,
            _ => panic!(),
        })
        .collect();
    assert_eq!(vals, vec![16, 8, 65, 100, 1000]);
}

#[test]
fn deeply_nested_declarators() {
    let m = compile(
        r#"
        char matrix[3][4][5];
        int *pointers[10];
        int (*fns[3])(int, char *);
        int main(void) { return sizeof matrix + sizeof pointers + sizeof fns; }
        "#,
    )
    .unwrap();
    assert_eq!(m.globals[0].size, 60);
    assert_eq!(m.globals[1].size, 10);
    assert_eq!(m.globals[2].size, 3);
}

#[test]
fn shadowing_gets_distinct_locals() {
    let m = compile(
        r#"
        int f(int x) {
            int y = x;
            {
                int y = x * 2;
                x = y;
            }
            return y + x;
        }
        "#,
    )
    .unwrap();
    let f = m.function(m.function_id("f").unwrap());
    // x, outer y, inner y.
    assert_eq!(f.locals.len(), 3);
    let names: Vec<&str> = f.locals.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(names, vec!["x", "y", "y"]);
}

#[test]
fn for_loop_scope_does_not_leak() {
    assert!(compile("int f(void) { for (int i = 0; i < 3; i++) { } return i; }").is_err());
}

#[test]
fn block_scope_does_not_leak() {
    assert!(compile("int f(void) { { int hidden = 1; } return hidden; }").is_err());
}

#[test]
fn builtins_are_shadowed_by_user_functions() {
    // A user-defined `abs` takes priority over the builtin.
    let m = compile(
        r#"
        int abs(int x) { return 42; }
        int main(void) { return abs(-5); }
        "#,
    )
    .unwrap();
    let call = &m.side.call_sites[0];
    assert!(matches!(
        call.callee,
        minic::sema::CalleeKind::Direct(f) if m.function(f).name == "abs"
    ));
}

#[test]
fn locals_shadow_globals_and_functions() {
    let m = compile(
        r#"
        int value = 10;
        int f(int value) { return value; }
        "#,
    )
    .unwrap();
    // The parameter use resolves to the local, not the global.
    let f = m.function_id("f").unwrap();
    let body = m.function(f).body.as_ref().unwrap();
    let mut found = false;
    body.walk_exprs(&mut |e| {
        if let minic::ast::ExprKind::Ident(name) = &e.kind {
            if name == "value" {
                assert!(matches!(m.side.resolutions[&e.id], Resolution::Local(_)));
                found = true;
            }
        }
    });
    assert!(found);
}

#[test]
fn prototype_then_definition_share_one_function() {
    let m = compile(
        r#"
        int twice(int x);
        int use_it(int y) { return twice(y); }
        int twice(int x) { return x * 2; }
        "#,
    )
    .unwrap();
    assert_eq!(m.functions.len(), 2);
    assert!(m.function(m.function_id("twice").unwrap()).is_defined());
}

#[test]
fn conflicting_redeclaration_is_rejected() {
    assert!(compile("int f(int x); float f(int x) { return 1.0; }").is_err());
    assert!(compile("int f(void) { return 0; } int f(void) { return 1; }").is_err());
}

#[test]
fn void_variables_are_rejected() {
    assert!(compile("void v; int main(void) { return 0; }").is_err());
    assert!(compile("int main(void) { void x; return 0; }").is_err());
}

#[test]
fn switch_requires_integer_scrutinee() {
    assert!(compile("int f(float x) { switch (x) { case 1: return 1; } return 0; }").is_err());
}

#[test]
fn case_labels_fold_expressions() {
    let m = compile(
        r#"
        #define BASE 10
        int f(int n) {
            switch (n) {
                case BASE + 1: return 1;
                case BASE * 2: return 2;
            }
            return 0;
        }
        "#,
    )
    .unwrap();
    let sw = &m.side.switches[0];
    let values = &m.side.case_values[&sw.id];
    assert_eq!(values, &vec![vec![11], vec![20]]);
}

#[test]
fn string_escapes_round_trip_through_sema() {
    let m = compile(r#"char *s = "a\tb\\c\"d\n";"#).unwrap();
    assert_eq!(m.strings[0], "a\tb\\c\"d\n");
}

#[test]
fn empty_function_bodies_and_empty_statements() {
    let m = compile("void nop(void) { } int main(void) { ;;; nop(); return 0; }").unwrap();
    assert_eq!(m.functions.len(), 2);
}

#[test]
fn address_of_array_element_and_global() {
    let m = compile(
        r#"
        int arr[4];
        int *p = &arr;      /* &array: permissive */
        int main(void) {
            int *q = &arr[2];
            return q - arr;
        }
        "#,
    )
    .unwrap();
    assert!(matches!(
        m.globals[1].init[0],
        minic::sema::InitWord::GlobalAddr(_)
    ));
}

#[test]
fn dangling_else_chain_parses() {
    let m = compile(
        r#"
        int f(int a, int b, int c) {
            if (a)
                if (b) return 1;
                else if (c) return 2;
                else return 3;
            return 4;
        }
        "#,
    )
    .unwrap();
    // Three if-branches registered.
    assert_eq!(m.side.branches.len(), 3);
}

#[test]
fn line_numbers_in_errors_are_accurate() {
    let src = "int main(void) {\n  int x = 1;\n  int y = z;\n  return x;\n}";
    let err = compile(src).unwrap_err();
    assert!(err.render(src).contains("line 3"), "{}", err.render(src));
}

#[test]
fn sizeof_in_macro_context() {
    let m = compile(
        r#"
        struct big { int a[7]; int b; };
        int main(void) {
            struct big x;
            x.b = 1;
            return sizeof x + sizeof(struct big) + sizeof x.a;
        }
        "#,
    )
    .unwrap();
    let f = m.function(m.function_id("main").unwrap());
    assert_eq!(f.locals[0].size, 8);
}

#[test]
fn comma_separated_declarations_mix_derived_types() {
    let m = compile("int a, *b, c[3], (*d)(int);").unwrap();
    assert_eq!(m.globals.len(), 4);
    assert_eq!(m.globals[0].size, 1);
    assert_eq!(m.globals[2].size, 3);
}
