//! Tests for `enum` support: declaration forms, constant values,
//! resolution priority, and end-to-end behaviour.

use minic::compile;

#[test]
fn sequential_and_explicit_values() {
    let m = compile(
        r#"
        enum color { RED, GREEN, BLUE };
        enum flags { A = 1, B = 2, C = 4, D };
        int x = BLUE;
        int y = D;
        "#,
    )
    .unwrap();
    assert_eq!(m.enum_consts["RED"], 0);
    assert_eq!(m.enum_consts["GREEN"], 1);
    assert_eq!(m.enum_consts["BLUE"], 2);
    assert_eq!(m.enum_consts["C"], 4);
    assert_eq!(m.enum_consts["D"], 5);
    assert_eq!(m.globals[0].init[0], minic::sema::InitWord::Int(2));
    assert_eq!(m.globals[1].init[0], minic::sema::InitWord::Int(5));
}

#[test]
fn enum_values_reference_earlier_constants() {
    let m = compile("enum sizes { SMALL = 4, BIG = SMALL * 8, HUGE = BIG + 1 };").unwrap();
    assert_eq!(m.enum_consts["BIG"], 32);
    assert_eq!(m.enum_consts["HUGE"], 33);
}

#[test]
fn anonymous_enums_work() {
    let m = compile("enum { OK, FAIL = -1 }; int r = FAIL;").unwrap();
    assert_eq!(m.enum_consts["FAIL"], -1);
}

#[test]
fn enum_type_in_declarations_is_int() {
    let m = compile(
        r#"
        enum state { IDLE, BUSY };
        enum state current = IDLE;
        int f(enum state s) { return s == BUSY; }
        "#,
    )
    .unwrap();
    assert_eq!(m.globals[0].ty, minic::types::Type::Int);
}

#[test]
fn enum_constants_as_array_dims_and_case_labels() {
    let m = compile(
        r#"
        enum { NSLOTS = 8 };
        int table[NSLOTS];
        int f(int n) {
            switch (n) {
                case NSLOTS: return 1;
                default: return 0;
            }
        }
        "#,
    )
    .unwrap();
    assert_eq!(m.globals[0].size, 8);
    let sw = &m.side.switches[0];
    assert_eq!(m.side.case_values[&sw.id][0], vec![8]);
}

#[test]
fn locals_shadow_enum_constants() {
    let m = compile(
        r#"
        enum { VALUE = 9 };
        int f(int VALUE) { return VALUE; }
        "#,
    )
    .unwrap();
    // The parameter use resolves to the local, not the enum constant.
    let f = m.function(m.function_id("f").unwrap());
    let body = f.body.as_ref().unwrap();
    body.walk_exprs(&mut |e| {
        if let minic::ast::ExprKind::Ident(_) = e.kind {
            assert!(matches!(
                m.side.resolutions[&e.id],
                minic::sema::Resolution::Local(_)
            ));
        }
    });
}

#[test]
fn duplicate_enum_constant_is_rejected() {
    assert!(compile("enum a { X }; enum b { X };").is_err());
}

#[test]
fn assigning_to_enum_constant_is_rejected() {
    assert!(compile("enum { K = 1 }; int f(void) { K = 2; return K; }").is_err());
}

#[test]
fn constant_enum_conditions_fold_in_branch_registration() {
    let m = compile(
        r#"
        enum { DEBUG = 0 };
        int f(int x) {
            if (DEBUG) return -x;
            return x;
        }
        "#,
    )
    .unwrap();
    assert_eq!(m.side.branches[0].const_cond, Some(false));
}

#[test]
fn enums_pretty_print_round_trip() {
    let src = r#"
        enum color { RED, GREEN = 5, BLUE };
        int f(void) { return GREEN; }
    "#;
    let unit = minic::parser::parse(src).unwrap();
    let printed = minic::pretty::print_unit(&unit);
    let unit2 = minic::parser::parse(&printed).unwrap();
    assert_eq!(printed, minic::pretty::print_unit(&unit2));
    let m = compile(&printed).unwrap();
    assert_eq!(m.enum_consts["BLUE"], 6);
}

#[test]
fn enum_in_cast_position_is_rejected_gracefully() {
    // `(enum color) x` is not in the cast grammar; it should be a
    // parse error, not a panic.
    assert!(
        minic::parser::parse("enum color { R }; int f(int x) { return (enum color) x; }").is_err()
            || compile("enum color { R }; int f(int x) { return (enum color) x; }").is_ok()
    );
}
