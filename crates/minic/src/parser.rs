//! Recursive-descent parser for MiniC.
//!
//! The grammar is a C subset chosen to cover the idioms the PLDI 1994
//! branch heuristics exploit: pointer tests, error calls, loops of every
//! flavour, `switch` with fallthrough, `goto`, function pointers, and
//! recursion. There are no typedefs, so the classic cast/expression
//! ambiguity is resolved by one token of lookahead for type keywords.

use crate::ast::*;
use crate::error::{CompileError, ErrorKind};
use crate::lexer::lex;
use crate::token::{Keyword, Punct, Span, Token, TokenKind};

/// Parses a translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// let unit = minic::parser::parse("int add(int a, int b) { return a + b; }").unwrap();
/// assert_eq!(unit.items.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<Unit, CompileError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        ids: NodeIdGen::new(),
    };
    let mut items = Vec::new();
    while !p.at_eof() {
        // Give each top-level declaration its own id namespace (see
        // [`DECL_ID_STRIDE`]): an unchanged declaration at an unchanged
        // ordinal re-parses to identical node ids, which is what lets
        // the incremental database reuse its side-table-keyed artifacts.
        p.ids.align(DECL_ID_STRIDE);
        items.push(p.item()?);
    }
    Ok(Unit {
        items,
        node_count: p.ids.count(),
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    ids: NodeIdGen,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span, CompileError> {
        if self.peek() == &TokenKind::Punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{}`, found {}", p.as_str(), self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                let sp = self.bump().span;
                Ok((s, sp))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn err(&self, msg: String) -> CompileError {
        CompileError::new(ErrorKind::Parse, msg, self.span())
    }

    fn fresh(&mut self) -> NodeId {
        self.ids.fresh()
    }

    // ----- types and declarators -----

    /// Is the current token the start of a type?
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Kw(
                Keyword::Int
                    | Keyword::Char
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Long
                    | Keyword::Unsigned
                    | Keyword::Void
                    | Keyword::Struct
                    | Keyword::Const
                    | Keyword::Static
                    | Keyword::Extern
                    | Keyword::Enum
            )
        )
    }

    /// Parses storage-class/qualifier keywords and a base type.
    fn base_type(&mut self) -> Result<BaseType, CompileError> {
        // Skip storage classes and qualifiers.
        while self.eat_kw(Keyword::Static)
            || self.eat_kw(Keyword::Extern)
            || self.eat_kw(Keyword::Const)
        {}
        let base = match self.peek().clone() {
            TokenKind::Kw(Keyword::Void) => {
                self.bump();
                BaseType::Void
            }
            TokenKind::Kw(Keyword::Int) => {
                self.bump();
                BaseType::Int
            }
            TokenKind::Kw(Keyword::Char) => {
                self.bump();
                BaseType::Char
            }
            TokenKind::Kw(Keyword::Float) | TokenKind::Kw(Keyword::Double) => {
                self.bump();
                BaseType::Float
            }
            TokenKind::Kw(Keyword::Long) => {
                self.bump();
                // `long`, `long int`, `long long` — all Int.
                self.eat_kw(Keyword::Long);
                self.eat_kw(Keyword::Int);
                BaseType::Int
            }
            TokenKind::Kw(Keyword::Unsigned) => {
                self.bump();
                self.eat_kw(Keyword::Long);
                self.eat_kw(Keyword::Char);
                self.eat_kw(Keyword::Int);
                BaseType::Int
            }
            TokenKind::Kw(Keyword::Struct) => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                BaseType::Struct(name)
            }
            TokenKind::Kw(Keyword::Enum) => {
                // `enum Name` in type position: enums are ints.
                self.bump();
                self.expect_ident()?;
                BaseType::Int
            }
            other => return Err(self.err(format!("expected a type, found {other}"))),
        };
        // `const` can trail the base type too.
        while self.eat_kw(Keyword::Const) {}
        Ok(base)
    }

    /// Parses `*`s and optional `const`s following a base type.
    fn pointer_suffix(&mut self, mut ty: TypeName) -> TypeName {
        while self.eat_punct(Punct::Star) {
            while self.eat_kw(Keyword::Const) {}
            ty = TypeName::Ptr(Box::new(ty));
        }
        ty
    }

    /// Parses a declarator after the base type: pointers, a name (or a
    /// parenthesized function-pointer form), and array suffixes.
    /// Returns `(name, type, span)`. `allow_anon` permits a missing name
    /// (for prototypes' parameters).
    fn declarator(
        &mut self,
        base: &BaseType,
        allow_anon: bool,
    ) -> Result<(String, TypeName, Span), CompileError> {
        let start = self.span();
        let ty = self.pointer_suffix(TypeName::Base(base.clone()));

        // Function-pointer declarator: `( * name [dims] ) ( params )`.
        if self.peek() == &TokenKind::Punct(Punct::LParen)
            && self.peek2() == &TokenKind::Punct(Punct::Star)
        {
            self.bump(); // (
            self.bump(); // *
            let (name, _) = self.expect_ident()?;
            let mut inner_dims = Vec::new();
            while self.eat_punct(Punct::LBracket) {
                let dim = if self.peek() == &TokenKind::Punct(Punct::RBracket) {
                    None
                } else {
                    Some(Box::new(self.assign_expr()?))
                };
                self.expect_punct(Punct::RBracket)?;
                inner_dims.push(dim);
            }
            self.expect_punct(Punct::RParen)?;
            self.expect_punct(Punct::LParen)?;
            let (params, _varargs) = self.param_types()?;
            self.expect_punct(Punct::RParen)?;
            let mut full = TypeName::FnPtr(Box::new(ty), params);
            for dim in inner_dims.into_iter().rev() {
                full = TypeName::Array(Box::new(full), dim);
            }
            return Ok((name, full, start.to(self.prev_span())));
        }

        let name = match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                s
            }
            _ if allow_anon => String::new(),
            other => return Err(self.err(format!("expected a name, found {other}"))),
        };

        // Array suffixes.
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            let dim = if self.peek() == &TokenKind::Punct(Punct::RBracket) {
                None
            } else {
                Some(Box::new(self.assign_expr()?))
            };
            self.expect_punct(Punct::RBracket)?;
            dims.push(dim);
        }
        let mut full = ty;
        for dim in dims.into_iter().rev() {
            full = TypeName::Array(Box::new(full), dim);
        }
        Ok((name, full, start.to(self.prev_span())))
    }

    /// Parses the parameter-type list of a function-pointer declarator or
    /// prototype. Returns (types, varargs).
    fn param_types(&mut self) -> Result<(Vec<TypeName>, bool), CompileError> {
        let mut out = Vec::new();
        if self.peek() == &TokenKind::Punct(Punct::RParen) {
            return Ok((out, false));
        }
        loop {
            if self.at_varargs() {
                self.bump_varargs();
                return Ok((out, true));
            }
            let base = self.base_type()?;
            let (_name, ty, _) = self.declarator(&base, true)?;
            // `void` alone means no parameters.
            if ty == TypeName::Base(BaseType::Void) && out.is_empty() {
                return Ok((out, false));
            }
            out.push(ty);
            if !self.eat_punct(Punct::Comma) {
                return Ok((out, false));
            }
        }
    }

    fn at_varargs(&self) -> bool {
        // `...` lexes as three dots.
        self.peek() == &TokenKind::Punct(Punct::Dot)
    }

    fn bump_varargs(&mut self) {
        while self.eat_punct(Punct::Dot) {}
    }

    /// Parses a cast/sizeof type name: base type + pointers only.
    fn type_name(&mut self) -> Result<TypeName, CompileError> {
        let base = self.base_type()?;
        Ok(self.pointer_suffix(TypeName::Base(base)))
    }

    // ----- items -----

    fn item(&mut self) -> Result<Item, CompileError> {
        // enum definition? `enum [Name] { ... };`
        if self.peek() == &TokenKind::Kw(Keyword::Enum) {
            let next_is_brace = self.peek2() == &TokenKind::Punct(Punct::LBrace);
            let named_def = matches!(self.peek2(), TokenKind::Ident(_)) && {
                let i = (self.pos + 2).min(self.tokens.len() - 1);
                self.tokens[i].kind == TokenKind::Punct(Punct::LBrace)
            };
            if next_is_brace || named_def {
                return self.enum_def().map(Item::Enum);
            }
        }
        // struct definition?
        if self.peek() == &TokenKind::Kw(Keyword::Struct) {
            if let TokenKind::Ident(_) = self.peek2() {
                // Look one further: `{` means a definition.
                let i = (self.pos + 2).min(self.tokens.len() - 1);
                if self.tokens[i].kind == TokenKind::Punct(Punct::LBrace) {
                    return self.struct_def().map(Item::Struct);
                }
            }
        }
        // Otherwise: type, declarator, then function or globals.
        let start = self.span();
        let base = self.base_type()?;
        // `struct x;` forward declaration: tolerate and skip.
        if matches!(base, BaseType::Struct(_)) && self.eat_punct(Punct::Semi) {
            return Ok(Item::Globals(Vec::new()));
        }
        let (name, ty, dspan) = self.declarator(&base, false)?;

        if self.peek() == &TokenKind::Punct(Punct::LParen) && !matches!(ty, TypeName::Array(_, _)) {
            // A function: `ty name ( params ) body-or-;`
            return self.function(name, ty, start).map(Item::Function);
        }

        // Globals.
        let mut decls = Vec::new();
        let init = self.opt_initializer()?;
        decls.push(VarDecl {
            id: self.fresh(),
            span: dspan,
            name,
            ty,
            init,
        });
        while self.eat_punct(Punct::Comma) {
            let (name, ty, dspan) = self.declarator(&base, false)?;
            let init = self.opt_initializer()?;
            decls.push(VarDecl {
                id: self.fresh(),
                span: dspan,
                name,
                ty,
                init,
            });
        }
        self.expect_punct(Punct::Semi)?;
        Ok(Item::Globals(decls))
    }

    fn enum_def(&mut self) -> Result<EnumDecl, CompileError> {
        let start = self.span();
        self.bump(); // enum
        let name = match self.peek().clone() {
            TokenKind::Ident(n) => {
                self.bump();
                n
            }
            _ => String::new(),
        };
        self.expect_punct(Punct::LBrace)?;
        let mut variants = Vec::new();
        while self.peek() != &TokenKind::Punct(Punct::RBrace) {
            let (vname, _) = self.expect_ident()?;
            let value = if self.eat_punct(Punct::Assign) {
                Some(self.cond_expr()?)
            } else {
                None
            };
            variants.push((vname, value));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RBrace)?;
        self.expect_punct(Punct::Semi)?;
        Ok(EnumDecl {
            id: self.fresh(),
            name,
            variants,
            span: start.to(self.prev_span()),
        })
    }

    fn struct_def(&mut self) -> Result<StructDecl, CompileError> {
        let start = self.span();
        self.bump(); // struct
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &TokenKind::Punct(Punct::RBrace) {
            let base = self.base_type()?;
            loop {
                let (fname, fty, _) = self.declarator(&base, false)?;
                fields.push((fname, fty));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::Semi)?;
        }
        self.expect_punct(Punct::RBrace)?;
        self.expect_punct(Punct::Semi)?;
        Ok(StructDecl {
            id: self.fresh(),
            name,
            fields,
            span: start.to(self.prev_span()),
        })
    }

    fn function(
        &mut self,
        name: String,
        ret: TypeName,
        start: Span,
    ) -> Result<FunctionDecl, CompileError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::Punct(Punct::RParen) {
            loop {
                if self.at_varargs() {
                    self.bump_varargs();
                    break;
                }
                let pstart = self.span();
                let base = self.base_type()?;
                let (pname, pty, _) = self.declarator(&base, true)?;
                if pty == TypeName::Base(BaseType::Void) && params.is_empty() && pname.is_empty() {
                    break;
                }
                params.push(Param {
                    id: self.fresh(),
                    name: pname,
                    ty: pty,
                    span: pstart.to(self.prev_span()),
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        let body = if self.eat_punct(Punct::Semi) {
            None
        } else {
            Some(self.block()?)
        };
        Ok(FunctionDecl {
            id: self.fresh(),
            name,
            ret,
            params,
            body,
            span: start.to(self.prev_span()),
        })
    }

    // ----- statements -----

    fn block(&mut self) -> Result<Stmt, CompileError> {
        let start = self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::Punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated block".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(Stmt {
            id: self.fresh(),
            span: start.to(self.prev_span()),
            kind: StmtKind::Block(stmts),
        })
    }

    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.span();
        let base = self.base_type()?;
        let mut decls = Vec::new();
        loop {
            let (name, ty, dspan) = self.declarator(&base, false)?;
            let init = self.opt_initializer()?;
            decls.push(VarDecl {
                id: self.fresh(),
                span: dspan,
                name,
                ty,
                init,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt {
            id: self.fresh(),
            span: start.to(self.prev_span()),
            kind: StmtKind::Decl(decls),
        })
    }

    fn opt_initializer(&mut self) -> Result<Option<Initializer>, CompileError> {
        if !self.eat_punct(Punct::Assign) {
            return Ok(None);
        }
        Ok(Some(self.initializer()?))
    }

    fn initializer(&mut self) -> Result<Initializer, CompileError> {
        if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            if self.peek() != &TokenKind::Punct(Punct::RBrace) {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                    // Trailing comma.
                    if self.peek() == &TokenKind::Punct(Punct::RBrace) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RBrace)?;
            Ok(Initializer::List(items))
        } else {
            Ok(Initializer::Expr(self.assign_expr()?))
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.span();
        // Label?
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.peek2() == &TokenKind::Punct(Punct::Colon) {
                self.bump();
                self.bump();
                let inner = self.stmt()?;
                return Ok(Stmt {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: StmtKind::Label(name, Box::new(inner)),
                });
            }
        }
        if self.at_type() {
            return self.decl_stmt();
        }
        match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => self.block(),
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt {
                    id: self.fresh(),
                    span: start,
                    kind: StmtKind::Empty,
                })
            }
            TokenKind::Kw(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: StmtKind::If(cond, then, els),
                })
            }
            TokenKind::Kw(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: StmtKind::While(cond, body),
                })
            }
            TokenKind::Kw(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                if !self.eat_kw(Keyword::While) {
                    return Err(self.err("expected `while` after `do` body".into()));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: StmtKind::DoWhile(body, cond),
                })
            }
            TokenKind::Kw(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else if self.at_type() {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(Box::new(Stmt {
                        id: self.fresh(),
                        span: e.span,
                        kind: StmtKind::Expr(e),
                    }))
                };
                let cond = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek() == &TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: StmtKind::For(init, cond, step, body),
                })
            }
            TokenKind::Kw(Keyword::Switch) => self.switch_stmt(start),
            TokenKind::Kw(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start,
                    kind: StmtKind::Break,
                })
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start,
                    kind: StmtKind::Continue,
                })
            }
            TokenKind::Kw(Keyword::Return) => {
                self.bump();
                let e = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: StmtKind::Return(e),
                })
            }
            TokenKind::Kw(Keyword::Goto) => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: StmtKind::Goto(name),
                })
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: StmtKind::Expr(e),
                })
            }
        }
    }

    fn switch_stmt(&mut self, start: Span) -> Result<Stmt, CompileError> {
        self.bump(); // switch
        self.expect_punct(Punct::LParen)?;
        let scrut = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut sections = Vec::new();
        while self.peek() != &TokenKind::Punct(Punct::RBrace) {
            // A section: one or more labels, then statements.
            let mut labels = Vec::new();
            let mut is_default = false;
            loop {
                if self.eat_kw(Keyword::Case) {
                    labels.push(self.expr_no_comma_colon()?);
                    self.expect_punct(Punct::Colon)?;
                } else if self.eat_kw(Keyword::Default) {
                    is_default = true;
                    self.expect_punct(Punct::Colon)?;
                } else {
                    break;
                }
            }
            if labels.is_empty() && !is_default {
                return Err(self.err("expected `case` or `default` in switch body".into()));
            }
            let mut body = Vec::new();
            while !matches!(
                self.peek(),
                TokenKind::Kw(Keyword::Case)
                    | TokenKind::Kw(Keyword::Default)
                    | TokenKind::Punct(Punct::RBrace)
            ) {
                if self.at_eof() {
                    return Err(self.err("unterminated switch body".into()));
                }
                body.push(self.stmt()?);
            }
            sections.push(SwitchSection {
                labels,
                is_default,
                body,
            });
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(Stmt {
            id: self.fresh(),
            span: start.to(self.prev_span()),
            kind: StmtKind::Switch(scrut, sections),
        })
    }

    /// Case labels use conditional-expression precedence (no comma, and
    /// the `:` belongs to the label, not a ternary).
    fn expr_no_comma_colon(&mut self) -> Result<Expr, CompileError> {
        // Ternaries in case labels would be bizarre; parse at binary level.
        self.binary_expr(0)
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.assign_expr()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.assign_expr()?;
            let span = e.span.to(rhs.span);
            e = Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Comma(Box::new(e), Box::new(rhs)),
            };
        }
        Ok(e)
    }

    fn assign_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.cond_expr()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(None),
            TokenKind::Punct(Punct::PlusEq) => Some(Some(BinOp::Add)),
            TokenKind::Punct(Punct::MinusEq) => Some(Some(BinOp::Sub)),
            TokenKind::Punct(Punct::StarEq) => Some(Some(BinOp::Mul)),
            TokenKind::Punct(Punct::SlashEq) => Some(Some(BinOp::Div)),
            TokenKind::Punct(Punct::PercentEq) => Some(Some(BinOp::Rem)),
            TokenKind::Punct(Punct::AmpEq) => Some(Some(BinOp::BitAnd)),
            TokenKind::Punct(Punct::PipeEq) => Some(Some(BinOp::BitOr)),
            TokenKind::Punct(Punct::CaretEq) => Some(Some(BinOp::BitXor)),
            TokenKind::Punct(Punct::ShlEq) => Some(Some(BinOp::Shl)),
            TokenKind::Punct(Punct::ShrEq) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assign_expr()?;
            let span = lhs.span.to(rhs.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            });
        }
        Ok(lhs)
    }

    fn cond_expr(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.assign_expr()?;
            self.expect_punct(Punct::Colon)?;
            let els = self.cond_expr()?;
            let span = cond.span.to(els.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Cond(Box::new(cond), Box::new(then), Box::new(els)),
            });
        }
        Ok(cond)
    }

    /// Precedence-climbing over binary operators. Level 0 = `||`.
    fn binary_expr(&mut self, min_level: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (level, kind) = match self.peek() {
                TokenKind::Punct(Punct::PipePipe) => (0, OpKind::Or),
                TokenKind::Punct(Punct::AmpAmp) => (1, OpKind::And),
                TokenKind::Punct(Punct::Pipe) => (2, OpKind::Bin(BinOp::BitOr)),
                TokenKind::Punct(Punct::Caret) => (3, OpKind::Bin(BinOp::BitXor)),
                TokenKind::Punct(Punct::Amp) => (4, OpKind::Bin(BinOp::BitAnd)),
                TokenKind::Punct(Punct::EqEq) => (5, OpKind::Bin(BinOp::Eq)),
                TokenKind::Punct(Punct::Ne) => (5, OpKind::Bin(BinOp::Ne)),
                TokenKind::Punct(Punct::Lt) => (6, OpKind::Bin(BinOp::Lt)),
                TokenKind::Punct(Punct::Le) => (6, OpKind::Bin(BinOp::Le)),
                TokenKind::Punct(Punct::Gt) => (6, OpKind::Bin(BinOp::Gt)),
                TokenKind::Punct(Punct::Ge) => (6, OpKind::Bin(BinOp::Ge)),
                TokenKind::Punct(Punct::Shl) => (7, OpKind::Bin(BinOp::Shl)),
                TokenKind::Punct(Punct::Shr) => (7, OpKind::Bin(BinOp::Shr)),
                TokenKind::Punct(Punct::Plus) => (8, OpKind::Bin(BinOp::Add)),
                TokenKind::Punct(Punct::Minus) => (8, OpKind::Bin(BinOp::Sub)),
                TokenKind::Punct(Punct::Star) => (9, OpKind::Bin(BinOp::Mul)),
                TokenKind::Punct(Punct::Slash) => (9, OpKind::Bin(BinOp::Div)),
                TokenKind::Punct(Punct::Percent) => (9, OpKind::Bin(BinOp::Rem)),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let span = lhs.span.to(rhs.span);
            let kind = match kind {
                OpKind::Or => ExprKind::LogOr(Box::new(lhs), Box::new(rhs)),
                OpKind::And => ExprKind::LogAnd(Box::new(lhs), Box::new(rhs)),
                OpKind::Bin(op) => ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
            lhs = Expr {
                id: self.fresh(),
                span,
                kind,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::Punct(Punct::Bang) => Some(UnOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnOp::Addr),
            TokenKind::Punct(Punct::PlusPlus) => Some(UnOp::PreInc),
            TokenKind::Punct(Punct::MinusMinus) => Some(UnOp::PreDec),
            TokenKind::Punct(Punct::Plus) => {
                // Unary plus: skip it.
                self.bump();
                return self.unary_expr();
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary_expr()?;
            let span = start.to(e.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Unary(op, Box::new(e)),
            });
        }
        if self.peek() == &TokenKind::Kw(Keyword::Sizeof) {
            self.bump();
            if self.peek() == &TokenKind::Punct(Punct::LParen) && self.peek2_is_type() {
                self.bump();
                let ty = self.type_name()?;
                self.expect_punct(Punct::RParen)?;
                return Ok(Expr {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: ExprKind::SizeofType(ty),
                });
            }
            let e = self.unary_expr()?;
            let span = start.to(e.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::SizeofExpr(Box::new(e)),
            });
        }
        // Cast?
        if self.peek() == &TokenKind::Punct(Punct::LParen) && self.peek2_is_type() {
            self.bump();
            let ty = self.type_name()?;
            self.expect_punct(Punct::RParen)?;
            let e = self.unary_expr()?;
            let span = start.to(e.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Cast(ty, Box::new(e)),
            });
        }
        self.postfix_expr()
    }

    fn peek2_is_type(&self) -> bool {
        matches!(
            self.peek2(),
            TokenKind::Kw(
                Keyword::Int
                    | Keyword::Char
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Long
                    | Keyword::Unsigned
                    | Keyword::Void
                    | Keyword::Struct
                    | Keyword::Const
            )
        )
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek().clone() {
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::Punct(Punct::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Call(Box::new(e), args),
                    };
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    };
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (name, sp) = self.expect_ident()?;
                    let span = e.span.to(sp);
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Member(Box::new(e), name, false),
                    };
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (name, sp) = self.expect_ident()?;
                    let span = e.span.to(sp);
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Member(Box::new(e), name, true),
                    };
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Unary(UnOp::PostInc, Box::new(e)),
                    };
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Unary(UnOp::PostDec, Box::new(e)),
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: start,
                    kind: ExprKind::IntLit(v),
                })
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: start,
                    kind: ExprKind::FloatLit(v),
                })
            }
            TokenKind::Str(s) => {
                self.bump();
                // Adjacent string literals concatenate.
                let mut s = s;
                while let TokenKind::Str(next) = self.peek().clone() {
                    self.bump();
                    s.push_str(&next);
                }
                Ok(Expr {
                    id: self.fresh(),
                    span: start.to(self.prev_span()),
                    kind: ExprKind::StrLit(s),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: start,
                    kind: ExprKind::Ident(name),
                })
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

enum OpKind {
    Or,
    And,
    Bin(BinOp),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Unit {
        match parse(src) {
            Ok(u) => u,
            Err(e) => panic!("parse failed: {}", e.render(src)),
        }
    }

    fn only_fn(unit: &Unit) -> &FunctionDecl {
        for item in &unit.items {
            if let Item::Function(f) = item {
                return f;
            }
        }
        panic!("no function found");
    }

    #[test]
    fn parses_strchr() {
        let unit = parse_ok(
            r#"
            char *strchr(char *str, int c) {
                while (*str) {
                    if (*str == c) return str;
                    str++;
                }
                return 0;
            }
            "#,
        );
        let f = only_fn(&unit);
        assert_eq!(f.name, "strchr");
        assert_eq!(f.params.len(), 2);
        assert!(f.body.is_some());
    }

    #[test]
    fn parses_struct_and_globals() {
        let unit = parse_ok(
            r#"
            struct node { int value; struct node *next; };
            int counts[100];
            struct node *head = 0;
            char *msg = "hi";
            int table[3] = {1, 2, 3};
            "#,
        );
        assert_eq!(unit.items.len(), 5);
        assert!(matches!(unit.items[0], Item::Struct(_)));
    }

    #[test]
    fn parses_function_pointers() {
        let unit = parse_ok(
            r#"
            int add(int a, int b) { return a + b; }
            int (*op)(int, int) = add;
            int (*table[4])(int, int);
            int apply(int (*f)(int, int), int x) { return f(x, x); }
            "#,
        );
        assert_eq!(unit.items.len(), 4);
    }

    #[test]
    fn parses_control_flow_zoo() {
        parse_ok(
            r#"
            int f(int n) {
                int i, acc = 0;
                for (i = 0; i < n; i++) acc += i;
                do { acc--; } while (acc > 100);
                switch (n) {
                    case 1: acc = 1; break;
                    case 2:
                    case 3: acc = 2; break;
                    default: acc = 0;
                }
                if (n > 0 && acc < 5) goto out;
                while (n--) continue;
            out:
                return acc ? acc : -1;
            }
            "#,
        );
    }

    #[test]
    fn parses_casts_and_sizeof() {
        let unit = parse_ok(
            r#"
            int g(void) {
                char *p;
                int n = sizeof(int);
                int m = sizeof p;
                p = (char *) 0;
                float x = (float) n;
                return n + m + (int) x;
            }
            "#,
        );
        let f = only_fn(&unit);
        assert_eq!(f.params.len(), 0);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let unit = parse_ok("int x = 1 + 2 * 3;");
        let Item::Globals(gs) = &unit.items[0] else {
            panic!()
        };
        let Some(Initializer::Expr(e)) = &gs[0].init else {
            panic!()
        };
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("expected + at top, got {:?}", e.kind)
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let unit = parse_ok("int f(int a, int b, int c) { a = b = c; return a; }");
        let f = only_fn(&unit);
        let Some(Stmt {
            kind: StmtKind::Block(stmts),
            ..
        }) = &f.body
        else {
            panic!()
        };
        let StmtKind::Expr(e) = &stmts[0].kind else {
            panic!()
        };
        let ExprKind::Assign(None, _, rhs) = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Assign(None, _, _)));
    }

    #[test]
    fn dangling_else_binds_to_nearest_if() {
        let unit =
            parse_ok("int f(int a, int b) { if (a) if (b) return 1; else return 2; return 0; }");
        let f = only_fn(&unit);
        let Some(Stmt {
            kind: StmtKind::Block(stmts),
            ..
        }) = &f.body
        else {
            panic!()
        };
        let StmtKind::If(_, inner, outer_else) = &stmts[0].kind else {
            panic!()
        };
        assert!(outer_else.is_none());
        assert!(matches!(inner.kind, StmtKind::If(_, _, Some(_))));
    }

    #[test]
    fn adjacent_strings_concatenate() {
        let unit = parse_ok(r#"char *s = "ab" "cd";"#);
        let Item::Globals(gs) = &unit.items[0] else {
            panic!()
        };
        let Some(Initializer::Expr(e)) = &gs[0].init else {
            panic!()
        };
        assert_eq!(e.kind, ExprKind::StrLit("abcd".into()));
    }

    #[test]
    fn prototypes_have_no_body() {
        let unit = parse_ok("int helper(int x);");
        let f = only_fn(&unit);
        assert!(f.body.is_none());
    }

    #[test]
    fn comma_expression_in_for() {
        parse_ok("int f(int n) { int i, j; for (i = 0, j = n; i < j; i++, j--) ; return 0; }");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("int f( { }").is_err());
        assert!(parse("int 3x;").is_err());
        assert!(parse("int f(void) { return }").is_err());
        assert!(parse("int f(void) { switch (1) { int x; } }").is_err());
    }

    #[test]
    fn node_ids_are_unique() {
        let unit = parse_ok("int f(int a) { return a + 1; }");
        let f = only_fn(&unit);
        let mut seen = std::collections::HashSet::new();
        f.body.as_ref().unwrap().walk_exprs(&mut |e| {
            assert!(seen.insert(e.id), "duplicate node id {:?}", e.id);
        });
        assert!(unit.node_count >= seen.len());
    }
}
