//! Pretty-printing MiniC ASTs back to source text.
//!
//! Used for diagnostics, for dumping analysis results next to the code
//! they describe, and to test the parser: `print ∘ parse` is idempotent
//! (printing a parsed program and re-parsing yields the same printed
//! form), which the round-trip tests over the whole benchmark suite
//! verify.

use crate::ast::*;
use std::fmt::Write as _;

/// Pretty-prints a whole translation unit.
pub fn print_unit(unit: &Unit) -> String {
    let mut p = Printer::new();
    for item in &unit.items {
        match item {
            Item::Struct(sd) => p.struct_decl(sd),
            Item::Enum(ed) => p.enum_decl(ed),
            Item::Globals(decls) => p.globals(decls),
            Item::Function(fd) => p.function(fd),
        }
    }
    p.out
}

/// Pretty-prints one top-level item. The serve database fingerprints
/// declarations with this: two parses whose items print identically
/// (at the same ordinal) are guaranteed to carry identical node ids,
/// so the canonical text is a sound content key for per-declaration
/// derived artifacts.
pub fn print_item(item: &Item) -> String {
    let mut p = Printer::new();
    match item {
        Item::Struct(sd) => p.struct_decl(sd),
        Item::Enum(ed) => p.enum_decl(ed),
        Item::Globals(decls) => p.globals(decls),
        Item::Function(fd) => p.function(fd),
    }
    p.out
}

/// Pretty-prints a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e, 0);
    p.out
}

/// Pretty-prints a single statement at the given indent level.
pub fn print_stmt(s: &Stmt, indent: usize) -> String {
    let mut p = Printer::new();
    p.indent = indent;
    p.stmt(s);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn type_name(&mut self, ty: &TypeName, name: &str) {
        // Rebuild a C declarator: base, pointers, arrays, fn pointers.
        match ty {
            TypeName::Base(b) => {
                let base = match b {
                    BaseType::Void => "void".to_string(),
                    BaseType::Int => "int".to_string(),
                    BaseType::Char => "char".to_string(),
                    BaseType::Float => "float".to_string(),
                    BaseType::Struct(s) => format!("struct {s}"),
                };
                self.out.push_str(&base);
                if !name.is_empty() {
                    let _ = write!(self.out, " {name}");
                }
            }
            TypeName::Ptr(inner) => {
                self.type_name(inner, &format!("*{name}"));
            }
            TypeName::Array(inner, dim) => {
                let dim_text = dim.as_ref().map(|e| print_expr(e)).unwrap_or_default();
                // Arrays bind tighter than pointers: parenthesize a
                // pointer declarator.
                let decl = if name.starts_with('*') {
                    format!("({name})[{dim_text}]")
                } else {
                    format!("{name}[{dim_text}]")
                };
                self.type_name(inner, &decl);
            }
            TypeName::FnPtr(ret, params) => {
                let mut plist = String::new();
                for (i, pt) in params.iter().enumerate() {
                    if i > 0 {
                        plist.push_str(", ");
                    }
                    let mut sub = Printer::new();
                    sub.type_name(pt, "");
                    plist.push_str(&sub.out);
                }
                if plist.is_empty() {
                    plist.push_str("void");
                }
                self.type_name(ret, &format!("(*{name})({plist})"));
            }
        }
    }

    fn struct_decl(&mut self, sd: &StructDecl) {
        let _ = writeln!(self.out, "struct {} {{", sd.name);
        for (fname, fty) in &sd.fields {
            self.out.push_str("    ");
            self.type_name(fty, fname);
            self.out.push_str(";\n");
        }
        self.out.push_str("};\n\n");
    }

    fn enum_decl(&mut self, ed: &EnumDecl) {
        if ed.name.is_empty() {
            self.out.push_str("enum {\n");
        } else {
            let _ = writeln!(self.out, "enum {} {{", ed.name);
        }
        for (i, (name, value)) in ed.variants.iter().enumerate() {
            self.out.push_str("    ");
            self.out.push_str(name);
            if let Some(v) = value {
                self.out.push_str(" = ");
                self.expr(v, 3);
            }
            if i + 1 < ed.variants.len() {
                self.out.push(',');
            }
            self.out.push('\n');
        }
        self.out.push_str("};\n\n");
    }

    fn initializer(&mut self, init: &Initializer) {
        match init {
            Initializer::Expr(e) => self.expr(e, 0),
            Initializer::List(items) => {
                self.out.push_str("{ ");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.initializer(item);
                }
                self.out.push_str(" }");
            }
        }
    }

    fn globals(&mut self, decls: &[VarDecl]) {
        for d in decls {
            self.type_name(&d.ty, &d.name);
            if let Some(init) = &d.init {
                self.out.push_str(" = ");
                self.initializer(init);
            }
            self.out.push_str(";\n\n");
        }
    }

    fn function(&mut self, fd: &FunctionDecl) {
        let mut params = String::new();
        for (i, p) in fd.params.iter().enumerate() {
            if i > 0 {
                params.push_str(", ");
            }
            let mut sub = Printer::new();
            sub.type_name(&p.ty, &p.name);
            params.push_str(&sub.out);
        }
        if params.is_empty() {
            params.push_str("void");
        }
        self.type_name(&fd.ret, &format!("{}({params})", fd.name));
        match &fd.body {
            None => self.out.push_str(";\n\n"),
            Some(body) => {
                self.out.push(' ');
                self.stmt(body);
                self.out.push('\n');
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                self.pad();
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            StmtKind::Decl(decls) => {
                for d in decls {
                    self.pad();
                    self.type_name(&d.ty, &d.name);
                    if let Some(init) = &d.init {
                        self.out.push_str(" = ");
                        self.initializer(init);
                    }
                    self.out.push_str(";\n");
                }
            }
            StmtKind::If(cond, then_s, else_s) => {
                self.pad();
                self.out.push_str("if (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                // An else-less `if` at the tail of the then-branch
                // would capture our `else` on reparse; brace the
                // then-branch to keep the association.
                if else_s.is_some() && dangles(then_s) {
                    self.pad();
                    self.out.push_str("{\n");
                    self.indent += 1;
                    self.stmt(then_s);
                    self.indent -= 1;
                    self.pad();
                    self.out.push_str("}\n");
                } else {
                    self.nested(then_s);
                }
                if let Some(e) = else_s {
                    self.pad();
                    self.out.push_str("else\n");
                    self.nested(e);
                }
            }
            StmtKind::While(cond, body) => {
                self.pad();
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                self.nested(body);
            }
            StmtKind::DoWhile(body, cond) => {
                self.pad();
                self.out.push_str("do\n");
                self.nested(body);
                self.pad();
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(");\n");
            }
            StmtKind::For(init, cond, step, body) => {
                self.pad();
                self.out.push_str("for (");
                match init {
                    Some(i) => match &i.kind {
                        StmtKind::Expr(e) => {
                            self.expr(e, 0);
                            self.out.push_str("; ");
                        }
                        StmtKind::Decl(decls) => {
                            for (k, d) in decls.iter().enumerate() {
                                if k > 0 {
                                    self.out.push_str(", ");
                                }
                                self.type_name(&d.ty, &d.name);
                                if let Some(init) = &d.init {
                                    self.out.push_str(" = ");
                                    self.initializer(init);
                                }
                            }
                            self.out.push_str("; ");
                        }
                        _ => self.out.push_str("; "),
                    },
                    None => self.out.push_str("; "),
                }
                if let Some(c) = cond {
                    self.expr(c, 0);
                }
                self.out.push_str("; ");
                if let Some(st) = step {
                    self.expr(st, 0);
                }
                self.out.push_str(")\n");
                self.nested(body);
            }
            StmtKind::Switch(scrut, sections) => {
                self.pad();
                self.out.push_str("switch (");
                self.expr(scrut, 0);
                self.out.push_str(") {\n");
                for sec in sections {
                    for l in &sec.labels {
                        self.pad();
                        self.out.push_str("case ");
                        self.expr(l, 0);
                        self.out.push_str(":\n");
                    }
                    if sec.is_default {
                        self.pad();
                        self.out.push_str("default:\n");
                    }
                    self.indent += 1;
                    for st in &sec.body {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.pad();
                self.out.push_str("}\n");
            }
            StmtKind::Break => {
                self.pad();
                self.out.push_str("break;\n");
            }
            StmtKind::Continue => {
                self.pad();
                self.out.push_str("continue;\n");
            }
            StmtKind::Return(e) => {
                self.pad();
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e, 0);
                }
                self.out.push_str(";\n");
            }
            StmtKind::Goto(label) => {
                self.pad();
                let _ = writeln!(self.out, "goto {label};");
            }
            StmtKind::Label(label, inner) => {
                let _ = writeln!(self.out, "{label}:");
                self.stmt(inner);
            }
            StmtKind::Block(stmts) => {
                self.pad();
                self.out.push_str("{\n");
                self.indent += 1;
                for st in stmts {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.pad();
                self.out.push_str("}\n");
            }
            StmtKind::Empty => {
                self.pad();
                self.out.push_str(";\n");
            }
        }
    }

    /// Prints a nested (body) statement, indenting non-blocks.
    fn nested(&mut self, s: &Stmt) {
        if matches!(s.kind, StmtKind::Block(_)) {
            self.stmt(s);
        } else {
            self.indent += 1;
            self.stmt(s);
            self.indent -= 1;
        }
    }

    /// Prints an expression; `prec` is the minimum precedence of the
    /// surrounding context (parenthesize when ours is lower).
    fn expr(&mut self, e: &Expr, prec: u8) {
        let my_prec = expr_precedence(e);
        let need_parens = my_prec < prec;
        if need_parens {
            self.out.push('(');
        }
        match &e.kind {
            ExprKind::IntLit(v) => {
                if *v < 0 {
                    let _ = write!(self.out, "({v})");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::FloatLit(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::StrLit(s) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\r' => self.out.push_str("\\r"),
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\0' => self.out.push_str("\\0"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            ExprKind::Ident(name) => self.out.push_str(name),
            ExprKind::Unary(op, inner) => match op {
                UnOp::PostInc => {
                    self.expr(inner, 15);
                    self.out.push_str("++");
                }
                UnOp::PostDec => {
                    self.expr(inner, 15);
                    self.out.push_str("--");
                }
                _ => {
                    let sym = match op {
                        UnOp::Neg => "-",
                        UnOp::Not => "!",
                        UnOp::BitNot => "~",
                        UnOp::Deref => "*",
                        UnOp::Addr => "&",
                        UnOp::PreInc => "++",
                        UnOp::PreDec => "--",
                        UnOp::PostInc | UnOp::PostDec => unreachable!(),
                    };
                    self.out.push_str(sym);
                    // `-` before `-x`/`--x` would lex back as the
                    // single `--` token (and `&` before `&x` as `&&`),
                    // turning `-(-x)` into a pre-decrement of `-x`;
                    // parenthesize to keep the tokens apart.
                    let glues = matches!(
                        (op, &inner.kind),
                        (UnOp::Neg, ExprKind::Unary(UnOp::Neg | UnOp::PreDec, _))
                            | (UnOp::Addr, ExprKind::Unary(UnOp::Addr, _))
                    );
                    if glues {
                        self.out.push('(');
                        self.expr(inner, 0);
                        self.out.push(')');
                    } else {
                        self.expr(inner, 14);
                    }
                }
            },
            ExprKind::Binary(op, a, b) => {
                let sym = binop_str(*op);
                self.expr(a, my_prec);
                let _ = write!(self.out, " {sym} ");
                self.expr(b, my_prec + 1);
            }
            ExprKind::LogAnd(a, b) => {
                self.expr(a, my_prec);
                self.out.push_str(" && ");
                self.expr(b, my_prec + 1);
            }
            ExprKind::LogOr(a, b) => {
                self.expr(a, my_prec);
                self.out.push_str(" || ");
                self.expr(b, my_prec + 1);
            }
            ExprKind::Assign(op, lhs, rhs) => {
                self.expr(lhs, 14);
                let sym = match op {
                    None => "=".to_string(),
                    Some(op) => format!("{}=", binop_str(*op)),
                };
                let _ = write!(self.out, " {sym} ");
                self.expr(rhs, 2);
            }
            ExprKind::Call(callee, args) => {
                self.expr(callee, 15);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 3);
                }
                self.out.push(')');
            }
            ExprKind::Index(base, idx) => {
                self.expr(base, 15);
                self.out.push('[');
                self.expr(idx, 0);
                self.out.push(']');
            }
            ExprKind::Member(base, field, arrow) => {
                self.expr(base, 15);
                self.out.push_str(if *arrow { "->" } else { "." });
                self.out.push_str(field);
            }
            ExprKind::Cond(c, t, f) => {
                self.expr(c, 4);
                self.out.push_str(" ? ");
                self.expr(t, 3);
                self.out.push_str(" : ");
                self.expr(f, 3);
            }
            ExprKind::Cast(ty, inner) => {
                self.out.push('(');
                self.type_name(ty, "");
                self.out.push_str(") ");
                self.expr(inner, 14);
            }
            ExprKind::SizeofType(ty) => {
                self.out.push_str("sizeof(");
                self.type_name(ty, "");
                self.out.push(')');
            }
            ExprKind::SizeofExpr(inner) => {
                self.out.push_str("sizeof ");
                self.expr(inner, 14);
            }
            ExprKind::Comma(a, b) => {
                self.expr(a, 1);
                self.out.push_str(", ");
                self.expr(b, 2);
            }
        }
        if need_parens {
            self.out.push(')');
        }
    }
}

/// Whether `s` ends (possibly through nested tail statements) in an
/// `if` without an `else` that an outer `else` would bind to.
fn dangles(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::If(_, _, None) => true,
        StmtKind::If(_, _, Some(e)) => dangles(e),
        StmtKind::While(_, body) | StmtKind::For(_, _, _, body) | StmtKind::Label(_, body) => {
            dangles(body)
        }
        _ => false,
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
    }
}

/// C precedence levels, higher binds tighter.
fn expr_precedence(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Comma(_, _) => 1,
        ExprKind::Assign(_, _, _) => 2,
        ExprKind::Cond(_, _, _) => 3,
        ExprKind::LogOr(_, _) => 4,
        ExprKind::LogAnd(_, _) => 5,
        ExprKind::Binary(op, _, _) => match op {
            BinOp::BitOr => 6,
            BinOp::BitXor => 7,
            BinOp::BitAnd => 8,
            BinOp::Eq | BinOp::Ne => 9,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 10,
            BinOp::Shl | BinOp::Shr => 11,
            BinOp::Add | BinOp::Sub => 12,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 13,
        },
        ExprKind::Unary(UnOp::PostInc | UnOp::PostDec, _) => 15,
        ExprKind::Unary(_, _) | ExprKind::Cast(_, _) | ExprKind::SizeofExpr(_) => 14,
        ExprKind::Call(_, _) | ExprKind::Index(_, _) | ExprKind::Member(_, _, _) => 15,
        _ => 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::token::Span;

    fn round_trip(src: &str) -> (String, String) {
        let unit1 = parse(src).expect("first parse");
        let printed1 = print_unit(&unit1);
        let unit2 = parse(&printed1)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n---\n{printed1}", e.render(&printed1)));
        let printed2 = print_unit(&unit2);
        (printed1, printed2)
    }

    #[test]
    fn print_parse_is_idempotent_on_basics() {
        let (a, b) = round_trip(
            r#"
            struct point { int x; int y; };
            int counts[10] = {1, 2, 3};
            char *msg = "hi\n";
            int add(int a, int b) { return a + b; }
            int main(void) {
                int i, total = 0;
                for (i = 0; i < 10; i++) {
                    if (i % 2 == 0) total += add(i, counts[i % 3]);
                    else total--;
                }
                while (total > 100) total /= 2;
                return total;
            }
            "#,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn precedence_is_preserved() {
        // (1 + 2) * 3 must not print as 1 + 2 * 3.
        let src = "int x = (1 + 2) * 3; int y = 1 + 2 * 3;";
        let unit = parse(src).unwrap();
        let printed = print_unit(&unit);
        assert!(printed.contains("(1 + 2) * 3"), "{printed}");
        assert!(printed.contains("1 + 2 * 3"), "{printed}");
        let (a, b) = round_trip(src);
        assert_eq!(a, b);
    }

    #[test]
    fn function_pointers_round_trip() {
        let (a, b) = round_trip(
            r#"
            int pick(int x) { return x; }
            int (*handler)(int) = pick;
            int (*table[4])(int);
            int use(int (*f)(int)) { return f(3); }
            "#,
        );
        assert_eq!(a, b);
        assert!(a.contains("(*handler)(int)"), "{a}");
    }

    #[test]
    fn control_flow_round_trips() {
        let (a, b) = round_trip(
            r#"
            int f(int n) {
                int s = 0;
                switch (n) {
                    case 1: s = 1; break;
                    case 2:
                    case 3: s = 2; /* merged */ break;
                    default: s = -1;
                }
                do { s++; } while (s < 3);
                if (n) goto out;
                s = n ? s + 1 : s - 1;
            out:
                return s;
            }
            "#,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn nested_negation_does_not_glue_into_decrement() {
        // `-(-x)` must not print as `--x` (found by fuzzgen seed 27).
        let (a, b) = round_trip("int f(int x) { return -(-x); }");
        assert_eq!(a, b);
        assert!(a.contains("-(-x)"), "{a}");
        let m = crate::compile(&a).expect("reprinted form still compiles");
        assert_eq!(m.functions.len(), 1);
    }

    #[test]
    fn negated_predecrement_does_not_glue() {
        // `-(--x)` must not print as `---x`, which re-lexes as
        // `--(-x)` — a pre-decrement of a non-lvalue.
        let (a, b) = round_trip("int f(int x) { return -(--x); }");
        assert_eq!(a, b);
        assert!(a.contains("-(--x)"), "{a}");
        crate::compile(&a).expect("reprinted form still compiles");
    }

    #[test]
    fn address_of_address_does_not_glue_into_logical_and() {
        // Parse-level only (sema rejects `&&x` anyway): the printed
        // form must keep the two `&` tokens apart.
        let (a, b) = round_trip("int f(int x) { return &(&x); }");
        assert_eq!(a, b);
        assert!(a.contains("&(&x)"), "{a}");
    }

    #[test]
    fn dangling_else_keeps_association() {
        // A constructed AST where the outer `if` owns the `else` and
        // the then-branch is an else-less `if`: printing without
        // braces would rebind the `else` to the inner `if` on reparse.
        let mut g = NodeIdGen::new();
        let mut e = |kind: ExprKind| Expr {
            id: g.fresh(),
            span: Span::default(),
            kind,
        };
        let ret = |p: &mut dyn FnMut(ExprKind) -> Expr, v: i64| Stmt {
            id: NodeId(900 + v as u32),
            span: Span::default(),
            kind: StmtKind::Return(Some(p(ExprKind::IntLit(v)))),
        };
        let inner_if = Stmt {
            id: NodeId(800),
            span: Span::default(),
            kind: StmtKind::If(
                e(ExprKind::Ident("b".to_string())),
                Box::new(ret(&mut e, 1)),
                None,
            ),
        };
        let outer_if = Stmt {
            id: NodeId(801),
            span: Span::default(),
            kind: StmtKind::If(
                e(ExprKind::Ident("a".to_string())),
                Box::new(inner_if),
                Some(Box::new(ret(&mut e, 2))),
            ),
        };
        let printed = print_stmt(&outer_if, 0);
        // Reparse inside a function and verify the else still belongs
        // to the outer if.
        let src = format!("int f(int a, int b) {{\n{printed}return 0;\n}}");
        let unit = parse(&src).expect("printed dangling-else candidate parses");
        let reprinted = print_unit(&unit);
        let occurrences = reprinted.matches("else").count();
        assert_eq!(occurrences, 1, "{reprinted}");
        // The outer if must keep its else: behaviorally, a=0 must hit
        // `return 2`, not fall through to `return 0`.
        let module = crate::compile(&src).expect("dangling-else source compiles");
        assert_eq!(module.functions.len(), 1);
        let unit2 = parse(&reprinted).expect("reprint parses");
        assert_eq!(reprinted, print_unit(&unit2));
        assert!(
            reprinted.contains('{'),
            "then-branch must be braced: {reprinted}"
        );
    }

    #[test]
    fn for_init_declaration_with_list_initializer_round_trips() {
        let src = "int f(void) { int s = 0; for (int a[2] = { 1, 2 }; a[0] < 9; a[0]++) s += a[1]; return s; }";
        if parse(src).is_err() {
            // The grammar may not allow declarations in for-inits at
            // all; nothing to print then.
            return;
        }
        let (a, b) = round_trip(src);
        assert_eq!(a, b);
        assert!(a.contains("{ 1, 2 }"), "list initializer dropped: {a}");
    }

    #[test]
    fn whole_suite_round_trips() {
        for bench in suite_sources() {
            let unit1 = parse(bench).expect("suite parses");
            let printed1 = print_unit(&unit1);
            let unit2 = parse(&printed1)
                .unwrap_or_else(|e| panic!("suite reparse failed: {}", e.render(&printed1)));
            let printed2 = print_unit(&unit2);
            assert_eq!(printed1, printed2);
        }
    }

    // A couple of representative suite-style sources embedded here to
    // avoid a circular dev-dependency on the suite crate.
    fn suite_sources() -> Vec<&'static str> {
        vec![
            r#"
            #define N 16
            int tab[N];
            int hash(int x) { return ((x << 3) ^ (x >> 2)) & (N - 1); }
            int main(void) {
                int i;
                for (i = 0; i < 100; i++) tab[hash(i)]++;
                return tab[0];
            }
            "#,
            r#"
            struct node { int v; struct node *next; };
            struct node *head;
            void push(int v) {
                struct node *n = (struct node *) malloc(sizeof(struct node));
                n->v = v;
                n->next = head;
                head = n;
            }
            int main(void) {
                int i, s = 0;
                for (i = 0; i < 5; i++) push(i * i);
                while (head) { s += head->v; head = head->next; }
                return s;
            }
            "#,
        ]
    }
}
