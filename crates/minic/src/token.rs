//! Tokens and source spans for MiniC.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `lo..hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        Span { lo, hi }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Computes the 1-based line number of this span's start in `src`.
    pub fn line(&self, src: &str) -> usize {
        let lo = (self.lo as usize).min(src.len());
        1 + src.as_bytes()[..lo].iter().filter(|&&b| b == b'\n').count()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// Reserved words of MiniC (a C subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants *are* their documentation
pub enum Keyword {
    Int,
    Char,
    Float,
    Double,
    Long,
    Unsigned,
    Void,
    Struct,
    If,
    Else,
    While,
    For,
    Do,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Goto,
    Sizeof,
    Static,
    Extern,
    Const,
    Enum,
}

impl Keyword {
    /// Parses an identifier-like string into a keyword, if it is one.
    /// (Not `FromStr`: lookup failure is ordinary, not an error.)
    pub fn lookup(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "char" => Keyword::Char,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "long" => Keyword::Long,
            "unsigned" => Keyword::Unsigned,
            "void" => Keyword::Void,
            "struct" => Keyword::Struct,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "do" => Keyword::Do,
            "switch" => Keyword::Switch,
            "case" => Keyword::Case,
            "default" => Keyword::Default,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "return" => Keyword::Return,
            "goto" => Keyword::Goto,
            "sizeof" => Keyword::Sizeof,
            "static" => Keyword::Static,
            "extern" => Keyword::Extern,
            "const" => Keyword::Const,
            "enum" => Keyword::Enum,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::Char => "char",
            Keyword::Float => "float",
            Keyword::Double => "double",
            Keyword::Long => "long",
            Keyword::Unsigned => "unsigned",
            Keyword::Void => "void",
            Keyword::Struct => "struct",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Do => "do",
            Keyword::Switch => "switch",
            Keyword::Case => "case",
            Keyword::Default => "default",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Return => "return",
            Keyword::Goto => "goto",
            Keyword::Sizeof => "sizeof",
            Keyword::Static => "static",
            Keyword::Extern => "extern",
            Keyword::Const => "const",
            Keyword::Enum => "enum",
        }
    }
}

/// The lexical categories of MiniC.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier that is not a keyword.
    Ident(String),
    /// A reserved word.
    Kw(Keyword),
    /// An integer literal (decimal, hex `0x`, octal `0`, or char constant).
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal with escapes already processed.
    Str(String),
    /// Punctuation or an operator, e.g. `+=`, `->`, `;`.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
    Arrow,
    Dot,
}

impl Punct {
    /// The source spelling of the punctuation.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Question => "?",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Shl => "<<",
            Shr => ">>",
            Assign => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            PlusPlus => "++",
            MinusMinus => "--",
            Arrow => "->",
            Dot => ".",
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Kw(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Punct(p) => write!(f, "`{}`", p.as_str()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_and_line() {
        let a = Span::new(0, 2);
        let b = Span::new(5, 9);
        assert_eq!(a.to(b), Span::new(0, 9));
        assert_eq!(Span::new(6, 7).line("ab\ncd\nef"), 3);
    }

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Int,
            Keyword::Switch,
            Keyword::Sizeof,
            Keyword::Goto,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("banana"), None);
    }

    #[test]
    fn token_display_nonempty() {
        assert!(!format!("{}", TokenKind::Punct(Punct::Arrow)).is_empty());
        assert!(!format!("{}", TokenKind::Eof).is_empty());
    }
}
